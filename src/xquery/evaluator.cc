#include "xquery/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "base/strings.h"
#include "xquery/fulltext.h"
#include "xquery/profiler.h"
#include "xquery/update.h"

namespace xqib::xquery {

using xdm::AtomicType;
using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;

namespace {

bool IsReverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPrecedingSibling:
    case Axis::kPreceding:
      return true;
    default:
      return false;
  }
}

bool MatchesNodeTest(const NodeTest& test, const xml::Node* node,
                     Axis axis) {
  using Kind = NodeTest::Kind;
  switch (test.kind) {
    case Kind::kAnyKind:
      return true;
    case Kind::kText:
      return node->kind() == xml::NodeKind::kText;
    case Kind::kComment:
      return node->kind() == xml::NodeKind::kComment;
    case Kind::kDocument:
      return node->kind() == xml::NodeKind::kDocument;
    case Kind::kPI:
      if (node->kind() != xml::NodeKind::kProcessingInstruction) return false;
      return test.any_name || test.name.local.empty() ||
             node->name().local == test.name.local;
    case Kind::kElement:
      if (!node->is_element()) return false;
      return test.any_name || node->name() == test.name;
    case Kind::kAttribute:
      if (!node->is_attribute()) return false;
      return test.any_name || node->name() == test.name;
    case Kind::kName: {
      // A name test selects the principal node kind of the axis:
      // attributes on the attribute axis, elements elsewhere.
      bool want_attr = axis == Axis::kAttribute;
      if (want_attr != node->is_attribute()) return false;
      if (!want_attr && !node->is_element()) return false;
      if (test.any_name) return true;
      if (test.any_ns) return node->name().local == test.name.local;
      if (test.any_local) return node->name().ns == test.name.ns;
      return node->name() == test.name;
    }
  }
  return false;
}

void CollectDescendants(xml::Node* node, std::vector<xml::Node*>* out) {
  for (xml::Node* c : node->children()) {
    out->push_back(c);
    CollectDescendants(c, out);
  }
}

// Nodes of the axis from `node`, in axis order (reverse axes reversed).
void AxisNodes(Axis axis, xml::Node* node, std::vector<xml::Node*>* out) {
  switch (axis) {
    case Axis::kChild:
      out->assign(node->children().begin(), node->children().end());
      break;
    case Axis::kAttribute:
      out->assign(node->attributes().begin(), node->attributes().end());
      break;
    case Axis::kSelf:
      out->push_back(node);
      break;
    case Axis::kDescendant:
      CollectDescendants(node, out);
      break;
    case Axis::kDescendantOrSelf:
      out->push_back(node);
      CollectDescendants(node, out);
      break;
    case Axis::kParent:
      if (node->parent() != nullptr) out->push_back(node->parent());
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (axis == Axis::kAncestorOrSelf) out->push_back(node);
      xml::Node* p = node->parent();
      while (p != nullptr) {
        out->push_back(p);
        p = p->parent();
      }
      break;
    }
    case Axis::kFollowingSibling: {
      xml::Node* parent = node->parent();
      if (parent == nullptr || node->is_attribute()) break;
      size_t idx = parent->ChildIndex(node);
      for (size_t i = idx + 1; i < parent->children().size(); ++i) {
        out->push_back(parent->children()[i]);
      }
      break;
    }
    case Axis::kPrecedingSibling: {
      xml::Node* parent = node->parent();
      if (parent == nullptr || node->is_attribute()) break;
      size_t idx = parent->ChildIndex(node);
      for (size_t i = idx; i > 0; --i) {
        out->push_back(parent->children()[i - 1]);
      }
      break;
    }
    case Axis::kFollowing: {
      // All nodes after this one in document order, minus descendants.
      xml::Node* n = node;
      while (n != nullptr) {
        xml::Node* parent = n->parent();
        if (parent != nullptr && !n->is_attribute()) {
          size_t idx = parent->ChildIndex(n);
          for (size_t i = idx + 1; i < parent->children().size(); ++i) {
            out->push_back(parent->children()[i]);
            CollectDescendants(parent->children()[i], out);
          }
        }
        n = parent;
      }
      break;
    }
    case Axis::kPreceding: {
      // All nodes before this one, minus ancestors; reverse doc order.
      std::vector<xml::Node*> forward;
      xml::Node* n = node;
      while (n != nullptr) {
        xml::Node* parent = n->parent();
        if (parent != nullptr && !n->is_attribute()) {
          size_t idx = parent->ChildIndex(n);
          std::vector<xml::Node*> level;
          for (size_t i = 0; i < idx; ++i) {
            level.push_back(parent->children()[i]);
            CollectDescendants(parent->children()[i], &level);
          }
          forward.insert(forward.begin(), level.begin(), level.end());
        }
        n = parent;
      }
      out->assign(forward.rbegin(), forward.rend());
      break;
    }
  }
}

// Streams the matching nodes of a forward axis from `node` without
// materializing the full axis: `fn` is invoked per match in document
// order (`reverse` false) or reverse document order (`reverse` true) and
// returns false to stop the walk. Returns false when the axis cannot be
// streamed (reverse axes, following/preceding); the caller then falls
// back to the materializing EvalStep.
bool StreamAxis(Axis axis, bool reverse, xml::Node* node,
                const NodeTest& test,
                const std::function<bool(xml::Node*)>& fn) {
  if (IsReverseAxis(axis)) return false;
  auto emit = [&](xml::Node* n) {
    return !MatchesNodeTest(test, n, axis) || fn(n);
  };
  // Early-stopping subtree walk; emits strictly in (reverse) doc order.
  std::function<bool(xml::Node*)> walk = [&](xml::Node* n) {
    if (!reverse) {
      for (xml::Node* c : n->children()) {
        if (!emit(c) || !walk(c)) return false;
      }
    } else {
      const std::vector<xml::Node*>& kids = n->children();
      for (size_t i = kids.size(); i > 0; --i) {
        if (!walk(kids[i - 1]) || !emit(kids[i - 1])) return false;
      }
    }
    return true;
  };
  switch (axis) {
    case Axis::kSelf:
      emit(node);
      return true;
    case Axis::kChild: {
      const std::vector<xml::Node*>& kids = node->children();
      if (!reverse) {
        for (xml::Node* c : kids) {
          if (!emit(c)) break;
        }
      } else {
        for (size_t i = kids.size(); i > 0; --i) {
          if (!emit(kids[i - 1])) break;
        }
      }
      return true;
    }
    case Axis::kAttribute: {
      const std::vector<xml::Node*>& attrs = node->attributes();
      if (!reverse) {
        for (xml::Node* a : attrs) {
          if (!emit(a)) break;
        }
      } else {
        for (size_t i = attrs.size(); i > 0; --i) {
          if (!emit(attrs[i - 1])) break;
        }
      }
      return true;
    }
    case Axis::kDescendant:
      walk(node);
      return true;
    case Axis::kDescendantOrSelf:
      if (!reverse) {
        if (emit(node)) walk(node);
      } else {
        if (walk(node)) emit(node);
      }
      return true;
    case Axis::kFollowingSibling: {
      xml::Node* parent = node->parent();
      if (parent == nullptr || node->is_attribute()) return true;
      size_t idx = parent->ChildIndex(node);
      const std::vector<xml::Node*>& sibs = parent->children();
      if (!reverse) {
        for (size_t i = idx + 1; i < sibs.size(); ++i) {
          if (!emit(sibs[i])) break;
        }
      } else {
        for (size_t i = sibs.size(); i > idx + 1; --i) {
          if (!emit(sibs[i - 1])) break;
        }
      }
      return true;
    }
    default:
      return false;  // following/preceding: materialize
  }
}

Result<AtomicValue> RequireSingleAtomic(const Sequence& seq,
                                        std::string_view what) {
  Sequence data = xdm::Atomize(seq);
  if (data.size() != 1) {
    return Status::TypeError(std::string(what) +
                             " requires a single atomic value, got a "
                             "sequence of " +
                             std::to_string(data.size()));
  }
  return data[0].atomic();
}

// Untyped promotion for general comparisons: untyped vs numeric compares
// numerically, untyped vs anything else compares as string.
Result<int> GeneralCompareAtoms(const AtomicValue& a, const AtomicValue& b) {
  if (a.is_untyped() && b.is_numeric()) {
    XQ_ASSIGN_OR_RETURN(AtomicValue pa, a.CastTo(AtomicType::kDouble));
    return pa.Compare(b);
  }
  if (b.is_untyped() && a.is_numeric()) {
    XQ_ASSIGN_OR_RETURN(AtomicValue pb, b.CastTo(AtomicType::kDouble));
    return a.Compare(pb);
  }
  return a.Compare(b);
}

bool CompareSatisfies(int cmp, CompOp op) {
  switch (op) {
    case CompOp::kGenEq: case CompOp::kValEq: return cmp == 0;
    case CompOp::kGenNe: case CompOp::kValNe: return cmp != 0 && cmp != 2;
    case CompOp::kGenLt: case CompOp::kValLt: return cmp == -1;
    case CompOp::kGenLe: case CompOp::kValLe: return cmp == -1 || cmp == 0;
    case CompOp::kGenGt: case CompOp::kValGt: return cmp == 1;
    case CompOp::kGenGe: case CompOp::kValGe: return cmp == 1 || cmp == 0;
    default: return false;
  }
}

}  // namespace

// -------------------------------------------------------------- Eval ---

Result<Sequence> Evaluator::Eval(const Expr& e, DynamicContext& ctx) {
  if (ctx.profiler == nullptr) return EvalImpl(e, ctx);
  // Profiled evaluation: inclusive time via a clock, self time via a
  // running child-time accumulator threaded through the recursion.
  double* slot = ctx.profiler->child_time_slot();
  double saved = *slot;
  *slot = 0;
  auto t0 = std::chrono::steady_clock::now();
  Result<Sequence> result = EvalImpl(e, ctx);
  double inclusive_us =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count()) /
      1000.0;
  ctx.profiler->Record(&e, inclusive_us, *slot);
  *slot = saved + inclusive_us;
  return result;
}

Result<Sequence> Evaluator::EvalImpl(const Expr& e, DynamicContext& ctx) {
  // Consume any armed bounded-evaluation limit: it applies to exactly
  // this expression (paths honor it; every other kind evaluates fully),
  // so nested evaluations can never observe a stale limit.
  DynamicContext::EvalLimit limit = ctx.TakeEvalLimit();
  if (exit_flag_) return Sequence{};
  switch (e.kind) {
    case ExprKind::kLiteral:
      return Sequence{Item::Atomic(e.atom)};
    case ExprKind::kVarRef:
      return ctx.env().Lookup(e.qname);
    case ExprKind::kContextItem: {
      if (!ctx.focus().has_item) {
        return Status::Error("XPDY0002", "context item is undefined");
      }
      return Sequence{ctx.focus().item};
    }
    case ExprKind::kSequence: {
      Sequence out;
      for (const ExprPtr& kid : e.kids) {
        XQ_ASSIGN_OR_RETURN(Sequence part, Eval(*kid, ctx));
        out.insert(out.end(), part.begin(), part.end());
        if (exit_flag_) break;
      }
      return out;
    }
    case ExprKind::kRange: {
      XQ_ASSIGN_OR_RETURN(Sequence lo_seq, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence hi_seq, Eval(*e.kids[1], ctx));
      if (lo_seq.empty() || hi_seq.empty()) return Sequence{};
      XQ_ASSIGN_OR_RETURN(AtomicValue lo_a,
                          RequireSingleAtomic(lo_seq, "range"));
      XQ_ASSIGN_OR_RETURN(AtomicValue hi_a,
                          RequireSingleAtomic(hi_seq, "range"));
      XQ_ASSIGN_OR_RETURN(int64_t lo, lo_a.ToInteger());
      XQ_ASSIGN_OR_RETURN(int64_t hi, hi_a.ToInteger());
      Sequence out;
      if (hi >= lo) out.reserve(static_cast<size_t>(hi - lo + 1));
      for (int64_t v = lo; v <= hi; ++v) out.push_back(Item::Integer(v));
      return out;
    }
    case ExprKind::kArith:
    case ExprKind::kUnary:
      return EvalArith(e, ctx);
    case ExprKind::kComparison:
      return EvalComparison(e, ctx);
    case ExprKind::kLogical: {
      XQ_ASSIGN_OR_RETURN(bool lv, EvalBool(*e.kids[0], ctx));
      if (e.logical_and && !lv) return Sequence{Item::Boolean(false)};
      if (!e.logical_and && lv) return Sequence{Item::Boolean(true)};
      XQ_ASSIGN_OR_RETURN(bool rv, EvalBool(*e.kids[1], ctx));
      return Sequence{Item::Boolean(rv)};
    }
    case ExprKind::kPath:
      return EvalPath(e, ctx, limit);
    case ExprKind::kFilter: {
      // Positional shortcut: E[1] / E[last()] over a path primary needs
      // only the first / last item, so arm an ordered limit. The path
      // only honors it when its steps prove document order, and the
      // predicate below still runs either way, so semantics never change.
      if (options_.bounded_eval && e.predicates.size() == 1 &&
          e.kids[0]->kind == ExprKind::kPath) {
        const Expr& pred = *e.predicates[0];
        bool is_one = pred.kind == ExprKind::kLiteral &&
                      pred.atom.type() == AtomicType::kInteger &&
                      pred.atom.int_value() == 1;
        bool is_last = pred.kind == ExprKind::kFunctionCall &&
                       pred.kids.empty() &&
                       pred.qname.ns == xml::kFnNamespace &&
                       pred.qname.local == "last" &&
                       sctx_.FindFunction(pred.qname, 0) == nullptr &&
                       ctx.FindExternal(pred.qname, 0) == nullptr;
        if (is_one) {
          ctx.ArmEvalLimit({1, /*ordered=*/true, /*from_end=*/false});
        } else if (is_last) {
          ctx.ArmEvalLimit({1, /*ordered=*/true, /*from_end=*/true});
        }
      }
      XQ_ASSIGN_OR_RETURN(Sequence input, Eval(*e.kids[0], ctx));
      return ApplyPredicates(e.predicates, std::move(input), ctx);
    }
    case ExprKind::kFLWOR:
      return EvalFLWOR(e, ctx);
    case ExprKind::kQuantified:
      return EvalQuantified(e, ctx);
    case ExprKind::kIf: {
      XQ_ASSIGN_OR_RETURN(bool b, EvalBool(*e.kids[0], ctx));
      return Eval(b ? *e.kids[1] : *e.kids[2], ctx);
    }
    case ExprKind::kFunctionCall:
      return EvalFunctionCall(e, ctx);
    case ExprKind::kCast:
      return EvalCast(e, ctx);
    case ExprKind::kTypeswitch: {
      XQ_ASSIGN_OR_RETURN(Sequence operand, Eval(*e.kids[0], ctx));
      for (size_t i = 0; i < e.clauses.size(); ++i) {
        XQ_ASSIGN_OR_RETURN(bool match,
                            MatchesSequenceType(operand, e.case_types[i]));
        if (!match) continue;
        const Clause& clause = e.clauses[i];
        ctx.env().PushScope();
        if (!clause.var.local.empty()) {
          ctx.env().Bind(clause.var, operand);
        }
        Result<Sequence> r = Eval(*clause.expr, ctx);
        ctx.env().PopScope();
        return r;
      }
      ctx.env().PushScope();
      if (!e.qname.local.empty()) ctx.env().Bind(e.qname, operand);
      Result<Sequence> r = Eval(*e.kids[1], ctx);
      ctx.env().PopScope();
      return r;
    }
    case ExprKind::kSetOp:
      return EvalSetOp(e, ctx);
    case ExprKind::kFtContains:
      return EvalFtContains(e, ctx);
    case ExprKind::kDirectElement:
      return EvalDirectElement(e, ctx);
    case ExprKind::kComputedElement:
    case ExprKind::kComputedAttribute:
    case ExprKind::kComputedText:
    case ExprKind::kComputedComment:
    case ExprKind::kComputedPI:
      return EvalComputedConstructor(e, ctx);
    case ExprKind::kEnclosed:
      return Eval(*e.kids[0], ctx);
    case ExprKind::kInsert:
      return EvalInsert(e, ctx);
    case ExprKind::kDelete:
      return EvalDelete(e, ctx);
    case ExprKind::kReplace:
      return EvalReplace(e, ctx);
    case ExprKind::kRename:
      return EvalRename(e, ctx);
    case ExprKind::kTransform:
      return EvalTransform(e, ctx);
    case ExprKind::kBlock:
      return EvalBlock(e, ctx);
    case ExprKind::kVarDecl: {
      Sequence init;
      if (!e.kids.empty()) {
        XQ_ASSIGN_OR_RETURN(init, Eval(*e.kids[0], ctx));
      }
      ctx.env().Bind(e.qname, std::move(init));
      return Sequence{};
    }
    case ExprKind::kAssign: {
      XQ_ASSIGN_OR_RETURN(Sequence value, Eval(*e.kids[0], ctx));
      XQ_RETURN_NOT_OK(ctx.env().Assign(e.qname, std::move(value)));
      return Sequence{};
    }
    case ExprKind::kWhile:
      return EvalWhile(e, ctx);
    case ExprKind::kExitWith: {
      XQ_ASSIGN_OR_RETURN(Sequence value, Eval(*e.kids[0], ctx));
      exit_value_ = std::move(value);
      exit_flag_ = true;
      return Sequence{};
    }
    case ExprKind::kEventAttach:
    case ExprKind::kEventDetach:
    case ExprKind::kEventTrigger:
    case ExprKind::kSetStyle:
    case ExprKind::kGetStyle:
      return EvalBrowserExtension(e, ctx);
  }
  return Status::NotImplemented("unhandled expression kind");
}

// -------------------------------------------------------------- paths ---

Result<Sequence> Evaluator::EvalPath(const Expr& e, DynamicContext& ctx,
                                     DynamicContext::EvalLimit limit) {
  Sequence current;
  if (!e.kids.empty()) {
    XQ_ASSIGN_OR_RETURN(current, Eval(*e.kids[0], ctx));
  } else if (e.root_anchored) {
    if (!ctx.focus().has_item || !ctx.focus().item.is_node()) {
      return Status::Error("XPDY0002",
                           "no context node for a root-anchored path");
    }
    current = {Item::Node(ctx.focus().item.node()->Root())};
  } else {
    if (!ctx.focus().has_item) {
      return Status::Error("XPDY0002",
                           "no context item for a relative path");
    }
    current = {ctx.focus().item};
  }
  if (e.steps.empty()) return current;
  if (!options_.bounded_eval) limit = DynamicContext::EvalLimit{};

  for (size_t si = 0; si < e.steps.size(); ++si) {
    const Step& step = e.steps[si];
    const bool last_step = si + 1 == e.steps.size();
    // Steps annotated by the optimizer's ordering pass need no per-step
    // sort: their raw output is already in doc order, duplicate-free.
    const bool elide = options_.honor_sort_elision && step.preserves_order &&
                       step.no_duplicates;
    // Bounded modes (final step only). Existence needs any `count`
    // witnesses; first/last need the true first/last items, which is only
    // sound when this step's raw output order is proven (elide).
    const bool exist_mode = last_step && limit.count > 0 && !limit.ordered;
    const bool first_mode = last_step && limit.count > 0 && limit.ordered &&
                            !limit.from_end && elide;
    const bool last_mode = last_step && limit.count > 0 && limit.ordered &&
                           limit.from_end && elide;
    // Per-node axis streaming is only possible without predicates (they
    // need the full per-node sequence for positions).
    const bool can_stream = step.predicates.empty();

    Sequence next;
    bool indexed = false;
    bool exited_early = false;

    if (options_.use_name_index && TryIndexedStep(step, current, &next)) {
      indexed = true;
      ++stats_.name_index_hits;
      if (ctx.profiler != nullptr) {
        ++ctx.profiler->fast_path().name_index_hits;
      }
      if (!step.predicates.empty()) {
        XQ_ASSIGN_OR_RETURN(
            next, ApplyPredicates(step.predicates, std::move(next), ctx));
      } else if ((exist_mode || first_mode) && next.size() > limit.count) {
        next.resize(limit.count);
        exited_early = true;
      } else if (last_mode && next.size() > limit.count) {
        next.erase(next.begin(),
                   next.end() - static_cast<ptrdiff_t>(limit.count));
        exited_early = true;
      }
    } else if (last_mode) {
      // Collect a doc-order suffix holding at least the last `count`
      // items: context nodes are walked back to front, each node's axis
      // in reverse document order, stopping at `count` matches.
      Sequence rev;  // reverse document order
      for (size_t i = current.size();
           i > 0 && rev.size() < limit.count; --i) {
        const Item& item = current[i - 1];
        if (!item.is_node()) {
          return Status::Error("XPTY0019",
                               "path step applied to an atomic value");
        }
        bool streamed =
            can_stream &&
            StreamAxis(step.axis, /*reverse=*/true, item.node(), step.test,
                       [&](xml::Node* n) {
                         rev.push_back(Item::Node(n));
                         return rev.size() < limit.count;
                       });
        if (!streamed) {
          XQ_ASSIGN_OR_RETURN(Sequence part,
                              EvalStep(step, item.node(), ctx));
          for (size_t j = part.size(); j > 0; --j) {
            rev.push_back(part[j - 1]);
          }
        }
      }
      exited_early = true;
      next.assign(rev.rbegin(), rev.rend());
    } else {
      for (const Item& item : current) {
        if (!item.is_node()) {
          return Status::Error("XPTY0019",
                               "path step applied to an atomic value");
        }
        bool streamed = false;
        if ((exist_mode || first_mode) && can_stream) {
          streamed = StreamAxis(step.axis, /*reverse=*/false, item.node(),
                                step.test, [&](xml::Node* n) {
                                  next.push_back(Item::Node(n));
                                  return next.size() < limit.count;
                                });
        }
        if (!streamed) {
          XQ_ASSIGN_OR_RETURN(Sequence part,
                              EvalStep(step, item.node(), ctx));
          next.insert(next.end(), part.begin(), part.end());
        }
        if ((exist_mode || first_mode) && next.size() >= limit.count) {
          exited_early = true;
          break;
        }
      }
    }

    if (exited_early) {
      ++stats_.early_exits;
      if (ctx.profiler != nullptr) ++ctx.profiler->fast_path().early_exits;
    }
    // Existence consumers only observe emptiness, so their (possibly
    // unordered) witnesses skip the sort even without an elision proof.
    if (indexed || elide || exist_mode) {
      ++stats_.sorts_elided;
      if (ctx.profiler != nullptr) ++ctx.profiler->fast_path().sorts_elided;
    } else {
      ++stats_.sorts_performed;
      if (ctx.profiler != nullptr) {
        ++ctx.profiler->fast_path().sorts_performed;
      }
      XQ_RETURN_NOT_OK(xdm::SortDocumentOrderDedup(&next));
    }
    current = std::move(next);
  }
  return current;
}

bool Evaluator::TryIndexedStep(const Step& step, const Sequence& current,
                               Sequence* out) {
  if (step.axis != Axis::kDescendant &&
      step.axis != Axis::kDescendantOrSelf) {
    return false;
  }
  // Exact element-name tests only (wildcards would need the full walk).
  const NodeTest& t = step.test;
  bool exact_name = (t.kind == NodeTest::Kind::kName ||
                     t.kind == NodeTest::Kind::kElement) &&
                    !t.any_name && !t.any_ns && !t.any_local &&
                    !t.name.local.empty();
  if (!exact_name) return false;
  if (current.size() != 1 || !current[0].is_node()) return false;
  xml::Node* n = current[0].node();
  xml::Document* doc = n->document();
  // Whole-tree steps only: from the document node, or from the document
  // element when it is the root's only element child (then its
  // descendants are every other attached element).
  bool from_doc = n == doc->root();
  bool from_doc_elem = false;
  if (!from_doc && n->is_element() && n->parent() == doc->root()) {
    from_doc_elem = true;
    for (const xml::Node* c : doc->root()->children()) {
      if (c->is_element() && c != n) {
        from_doc_elem = false;
        break;
      }
    }
  }
  if (!from_doc && !from_doc_elem) return false;
  const std::vector<xml::Node*>& hits = doc->ElementsByName(t.name);
  out->clear();
  out->reserve(hits.size());
  for (xml::Node* h : hits) {
    // descendant:: excludes the context node itself; descendant-or-self
    // keeps it (the document node is never in the element index).
    if (h == n && step.axis == Axis::kDescendant) continue;
    out->push_back(Item::Node(h));
  }
  return true;
}

Result<Sequence> Evaluator::EvalStep(const Step& step, xml::Node* node,
                                     DynamicContext& ctx) {
  std::vector<xml::Node*> axis_nodes;
  AxisNodes(step.axis, node, &axis_nodes);
  Sequence result;
  result.reserve(axis_nodes.size());
  for (xml::Node* n : axis_nodes) {
    if (MatchesNodeTest(step.test, n, step.axis)) {
      result.push_back(Item::Node(n));
    }
  }
  if (step.predicates.empty()) return result;
  // Predicates see axis order, which AxisNodes already provides: reverse
  // axes are emitted nearest-first, so position 1 is the nearest node.
  return ApplyPredicates(step.predicates, std::move(result), ctx);
}

Result<bool> Evaluator::EvalBool(const Expr& e, DynamicContext& ctx) {
  // Paths produce only nodes, so their effective boolean value is pure
  // non-emptiness: one witness suffices (XQuery §2.3.4 allows skipping
  // the rest of the evaluation).
  if (options_.bounded_eval && e.kind == ExprKind::kPath) {
    ctx.ArmEvalLimit({1, /*ordered=*/false, /*from_end=*/false});
  }
  XQ_ASSIGN_OR_RETURN(Sequence v, Eval(e, ctx));
  return xdm::EffectiveBooleanValue(v);
}

Result<Sequence> Evaluator::ApplyPredicates(
    const std::vector<ExprPtr>& predicates, Sequence input,
    DynamicContext& ctx) {
  for (const ExprPtr& pred : predicates) {
    Sequence output;
    int64_t size = static_cast<int64_t>(input.size());
    DynamicContext::Focus saved = ctx.focus();
    for (int64_t i = 0; i < size; ++i) {
      DynamicContext::Focus f;
      f.item = input[static_cast<size_t>(i)];
      f.position = i + 1;
      f.size = size;
      f.has_item = true;
      ctx.set_focus(f);
      // A path predicate is an existence test (its value can only be
      // nodes, so the numeric-predicate branch below cannot apply): one
      // witness suffices.
      if (options_.bounded_eval && pred->kind == ExprKind::kPath) {
        ctx.ArmEvalLimit({1, /*ordered=*/false, /*from_end=*/false});
      }
      Result<Sequence> value = Eval(*pred, ctx);
      if (!value.ok()) {
        ctx.set_focus(saved);
        return value.status();
      }
      // Numeric predicate: positional selection.
      bool keep = false;
      const Sequence& v = *value;
      if (v.size() == 1 && !v[0].is_node() && v[0].atomic().is_numeric()) {
        Result<double> d = v[0].atomic().ToDouble();
        if (!d.ok()) {
          ctx.set_focus(saved);
          return d.status();
        }
        keep = (*d == static_cast<double>(i + 1));
      } else {
        Result<bool> b = xdm::EffectiveBooleanValue(v);
        if (!b.ok()) {
          ctx.set_focus(saved);
          return b.status();
        }
        keep = *b;
      }
      if (keep) output.push_back(input[static_cast<size_t>(i)]);
    }
    ctx.set_focus(saved);
    input = std::move(output);
  }
  return input;
}

// -------------------------------------------------------------- FLWOR ---

Result<Sequence> Evaluator::EvalFLWOR(const Expr& e, DynamicContext& ctx) {
  struct Tuple {
    std::vector<AtomicValue> keys;
    std::vector<bool> key_empty;
    Sequence value;
  };
  std::vector<Tuple> tuples;
  Status error;

  ctx.env().PushScope();

  // Recursive expansion of for/let clauses.
  std::function<Status(size_t)> expand = [&](size_t ci) -> Status {
    if (exit_flag_) return Status();
    if (ci == e.clauses.size()) {
      if (e.where != nullptr) {
        XQ_ASSIGN_OR_RETURN(bool keep, EvalBool(*e.where, ctx));
        if (!keep) return Status();
      }
      Tuple t;
      for (const OrderSpec& spec : e.order_specs) {
        XQ_ASSIGN_OR_RETURN(Sequence key_seq, Eval(*spec.key, ctx));
        if (key_seq.empty()) {
          t.keys.push_back(AtomicValue());
          t.key_empty.push_back(true);
        } else {
          XQ_ASSIGN_OR_RETURN(AtomicValue key,
                              RequireSingleAtomic(key_seq, "order by key"));
          t.keys.push_back(std::move(key));
          t.key_empty.push_back(false);
        }
      }
      XQ_ASSIGN_OR_RETURN(t.value, Eval(*e.kids[0], ctx));
      tuples.push_back(std::move(t));
      return Status();
    }
    const Clause& clause = e.clauses[ci];
    XQ_ASSIGN_OR_RETURN(Sequence binding_seq, Eval(*clause.expr, ctx));
    if (clause.kind == Clause::Kind::kLet) {
      ctx.env().Bind(clause.var, std::move(binding_seq));
      return expand(ci + 1);
    }
    for (size_t i = 0; i < binding_seq.size(); ++i) {
      ctx.env().Bind(clause.var, Sequence{binding_seq[i]});
      if (!clause.pos_var.local.empty()) {
        ctx.env().Bind(clause.pos_var,
                       Sequence{Item::Integer(static_cast<int64_t>(i + 1))});
      }
      XQ_RETURN_NOT_OK(expand(ci + 1));
      if (exit_flag_) break;
    }
    return Status();
  };
  Status st = expand(0);
  ctx.env().PopScope();
  XQ_RETURN_NOT_OK(st);

  if (!e.order_specs.empty()) {
    bool cmp_error = false;
    Status cmp_status;
    std::stable_sort(
        tuples.begin(), tuples.end(), [&](const Tuple& a, const Tuple& b) {
          if (cmp_error) return false;
          for (size_t k = 0; k < e.order_specs.size(); ++k) {
            const OrderSpec& spec = e.order_specs[k];
            if (a.key_empty[k] || b.key_empty[k]) {
              if (a.key_empty[k] == b.key_empty[k]) continue;
              bool a_first = a.key_empty[k] != spec.empty_greatest;
              return spec.descending ? !a_first : a_first;
            }
            Result<int> cmp = a.keys[k].Compare(b.keys[k]);
            if (!cmp.ok()) {
              cmp_error = true;
              cmp_status = cmp.status();
              return false;
            }
            if (*cmp == 2) continue;  // unordered (NaN)
            if (*cmp != 0) return spec.descending ? *cmp > 0 : *cmp < 0;
          }
          return false;
        });
    if (cmp_error) return cmp_status;
  }

  Sequence out;
  for (Tuple& t : tuples) {
    out.insert(out.end(), t.value.begin(), t.value.end());
  }
  return out;
}

Result<Sequence> Evaluator::EvalQuantified(const Expr& e,
                                           DynamicContext& ctx) {
  bool every = e.quant_every;
  bool result = every;
  Status error;
  ctx.env().PushScope();
  std::function<Status(size_t)> expand = [&](size_t ci) -> Status {
    if (ci == e.clauses.size()) {
      XQ_ASSIGN_OR_RETURN(bool b, EvalBool(*e.kids[0], ctx));
      if (every && !b) result = false;
      if (!every && b) result = true;
      return Status();
    }
    XQ_ASSIGN_OR_RETURN(Sequence seq, Eval(*e.clauses[ci].expr, ctx));
    for (const Item& item : seq) {
      ctx.env().Bind(e.clauses[ci].var, Sequence{item});
      XQ_RETURN_NOT_OK(expand(ci + 1));
      if (result != every) return Status();  // early exit
    }
    return Status();
  };
  Status st = expand(0);
  ctx.env().PopScope();
  XQ_RETURN_NOT_OK(st);
  return Sequence{Item::Boolean(result)};
}

// -------------------------------------------------- comparisons, arith ---

Result<Sequence> Evaluator::EvalComparison(const Expr& e,
                                           DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.kids[1], ctx));

  if (e.comp_op == CompOp::kIs || e.comp_op == CompOp::kPrecedes ||
      e.comp_op == CompOp::kFollows) {
    if (lhs.empty() || rhs.empty()) return Sequence{};
    if (lhs.size() != 1 || rhs.size() != 1 || !lhs[0].is_node() ||
        !rhs[0].is_node()) {
      return Status::TypeError("node comparison requires single nodes");
    }
    int cmp = lhs[0].node()->CompareDocumentOrder(rhs[0].node());
    bool v = e.comp_op == CompOp::kIs        ? lhs[0].node() == rhs[0].node()
             : e.comp_op == CompOp::kPrecedes ? cmp < 0
                                              : cmp > 0;
    return Sequence{Item::Boolean(v)};
  }

  bool general = e.comp_op >= CompOp::kGenEq && e.comp_op <= CompOp::kGenGe;
  Sequence la = xdm::Atomize(lhs);
  Sequence ra = xdm::Atomize(rhs);
  if (general) {
    for (const Item& a : la) {
      for (const Item& b : ra) {
        XQ_ASSIGN_OR_RETURN(int cmp,
                            GeneralCompareAtoms(a.atomic(), b.atomic()));
        if (CompareSatisfies(cmp, e.comp_op)) {
          return Sequence{Item::Boolean(true)};
        }
      }
    }
    return Sequence{Item::Boolean(false)};
  }
  // Value comparison: empty operand -> empty result.
  if (la.empty() || ra.empty()) return Sequence{};
  if (la.size() != 1 || ra.size() != 1) {
    return Status::TypeError("value comparison requires singletons");
  }
  AtomicValue a = la[0].atomic();
  AtomicValue b = ra[0].atomic();
  // Untyped operands in value comparisons are treated as strings.
  if (a.is_untyped()) a = AtomicValue::String(a.ToXPathString());
  if (b.is_untyped()) b = AtomicValue::String(b.ToXPathString());
  XQ_ASSIGN_OR_RETURN(int cmp, a.Compare(b));
  return Sequence{Item::Boolean(CompareSatisfies(cmp, e.comp_op))};
}

Result<Sequence> Evaluator::EvalArith(const Expr& e, DynamicContext& ctx) {
  if (e.kind == ExprKind::kUnary) {
    XQ_ASSIGN_OR_RETURN(Sequence v, Eval(*e.kids[0], ctx));
    if (v.empty()) return Sequence{};
    XQ_ASSIGN_OR_RETURN(AtomicValue a, RequireSingleAtomic(v, "unary"));
    if (e.arith_op == ArithOp::kAdd) {
      XQ_ASSIGN_OR_RETURN(double d, a.ToDouble());
      if (a.type() == AtomicType::kInteger) {
        return Sequence{Item::Integer(a.int_value())};
      }
      return Sequence{Item::Double(d)};
    }
    if (a.type() == AtomicType::kInteger) {
      return Sequence{Item::Integer(-a.int_value())};
    }
    XQ_ASSIGN_OR_RETURN(double d, a.ToDouble());
    return Sequence{Item::Double(-d)};
  }

  XQ_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.kids[1], ctx));
  if (lhs.empty() || rhs.empty()) return Sequence{};
  XQ_ASSIGN_OR_RETURN(AtomicValue a, RequireSingleAtomic(lhs, "arithmetic"));
  XQ_ASSIGN_OR_RETURN(AtomicValue b, RequireSingleAtomic(rhs, "arithmetic"));

  bool int_op = a.type() == AtomicType::kInteger &&
                b.type() == AtomicType::kInteger;
  if (int_op) {
    int64_t x = a.int_value(), y = b.int_value();
    switch (e.arith_op) {
      case ArithOp::kAdd: return Sequence{Item::Integer(x + y)};
      case ArithOp::kSub: return Sequence{Item::Integer(x - y)};
      case ArithOp::kMul: return Sequence{Item::Integer(x * y)};
      case ArithOp::kDiv: {
        if (y == 0) {
          return Status::Error("FOAR0001", "integer division by zero");
        }
        if (x % y == 0) return Sequence{Item::Integer(x / y)};
        return Sequence{
            Item::Atomic(AtomicValue::Decimal(static_cast<double>(x) /
                                              static_cast<double>(y)))};
      }
      case ArithOp::kIDiv:
        if (y == 0) {
          return Status::Error("FOAR0001", "integer division by zero");
        }
        return Sequence{Item::Integer(x / y)};
      case ArithOp::kMod:
        if (y == 0) {
          return Status::Error("FOAR0001", "integer modulo by zero");
        }
        return Sequence{Item::Integer(x % y)};
    }
  }
  XQ_ASSIGN_OR_RETURN(double x, a.ToDouble());
  XQ_ASSIGN_OR_RETURN(double y, b.ToDouble());
  double r = 0;
  switch (e.arith_op) {
    case ArithOp::kAdd: r = x + y; break;
    case ArithOp::kSub: r = x - y; break;
    case ArithOp::kMul: r = x * y; break;
    case ArithOp::kDiv: r = x / y; break;
    case ArithOp::kIDiv: {
      if (y == 0) return Status::Error("FOAR0001", "idiv by zero");
      return Sequence{Item::Integer(static_cast<int64_t>(x / y))};
    }
    case ArithOp::kMod: r = std::fmod(x, y); break;
  }
  return Sequence{Item::Double(r)};
}

Result<Sequence> Evaluator::EvalSetOp(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.kids[1], ctx));
  if (!xdm::AllNodes(lhs) || !xdm::AllNodes(rhs)) {
    return Status::TypeError("set operations require node sequences");
  }
  Sequence out;
  if (e.str == "union") {
    out = std::move(lhs);
    out.insert(out.end(), rhs.begin(), rhs.end());
  } else {
    std::unordered_map<const xml::Node*, bool> in_rhs;
    for (const Item& i : rhs) in_rhs[i.node()] = true;
    bool keep_if_present = e.str == "intersect";
    for (const Item& i : lhs) {
      if (in_rhs.count(i.node()) == static_cast<size_t>(keep_if_present)) {
        out.push_back(i);
      }
    }
  }
  XQ_RETURN_NOT_OK(xdm::SortDocumentOrderDedup(&out));
  return out;
}

// ----------------------------------------------------------- functions ---

Result<Sequence> Evaluator::EvalFunctionCall(const Expr& e,
                                             DynamicContext& ctx) {
  // fn:exists / fn:empty / fn:not / fn:boolean over a path argument only
  // observe (non-)emptiness — one witness node decides them — so the
  // path may stop at its first hit. Guarded against user-declared or
  // host-external functions shadowing the fn: names.
  if (options_.bounded_eval && e.kids.size() == 1 &&
      e.kids[0]->kind == ExprKind::kPath &&
      e.qname.ns == xml::kFnNamespace &&
      (e.qname.local == "exists" || e.qname.local == "empty" ||
       e.qname.local == "not" || e.qname.local == "boolean") &&
      sctx_.FindFunction(e.qname, 1) == nullptr &&
      ctx.FindExternal(e.qname, 1) == nullptr) {
    ctx.ArmEvalLimit({1, /*ordered=*/false, /*from_end=*/false});
  }
  std::vector<Sequence> args;
  args.reserve(e.kids.size());
  for (const ExprPtr& kid : e.kids) {
    XQ_ASSIGN_OR_RETURN(Sequence arg, Eval(*kid, ctx));
    args.push_back(std::move(arg));
  }
  return CallFunction(e.qname, std::move(args), ctx);
}

Result<Sequence> Evaluator::CallFunction(const xml::QName& name,
                                         std::vector<Sequence> args,
                                         DynamicContext& ctx) {
  // 1. user-declared functions
  if (const FunctionDecl* fn = sctx_.FindFunction(name, args.size())) {
    if (fn->external) {
      const ExternalFunction* ext = ctx.FindExternal(name, args.size());
      if (ext == nullptr) {
        return Status::Error("XPDY0002",
                             "external function " + name.Lexical() +
                                 " has no implementation");
      }
      return (*ext)(args, ctx);
    }
    if (++ctx.call_depth > DynamicContext::kMaxCallDepth) {
      --ctx.call_depth;
      return Status::DynamicError("XQIB0002",
                                  "maximum recursion depth exceeded in " +
                                      name.Lexical());
    }
    ctx.env().PushScope(/*barrier=*/true);
    for (size_t i = 0; i < fn->params.size(); ++i) {
      ctx.env().Bind(fn->params[i].name, std::move(args[i]));
    }
    // XQIB deviation from strict XQuery: the page document stays the
    // context item inside function bodies (the paper's listeners run
    // //div[...] paths directly, §4.4), so the focus is inherited.
    Result<Sequence> result = Eval(*fn->body, ctx);
    ctx.env().PopScope();
    --ctx.call_depth;
    if (!result.ok()) return result;
    // "exit with" terminates the function, yielding the exit value.
    if (exit_flag_) return TakeExitValue();
    return result;
  }
  // 2. host externals (browser:*, http:*, imported service stubs)
  if (const ExternalFunction* ext = ctx.FindExternal(name, args.size())) {
    return (*ext)(args, ctx);
  }
  // 3. built-in library
  bool handled = false;
  Result<Sequence> r = CallBuiltinFunction(name, args, *this, ctx, &handled);
  if (handled) return r;
  return Status::Error("XPST0017",
                       "unknown function " + name.Clark() + "#" +
                           std::to_string(args.size()));
}

// ---------------------------------------------------------------- cast ---

Result<bool> Evaluator::MatchesSequenceType(const Sequence& value,
                                            const SequenceType& st) {
  using IK = SequenceType::ItemKind;
  if (st.item == IK::kEmptySequence) return value.empty();
  switch (st.occ) {
    case SequenceType::Occurrence::kOne:
      if (value.size() != 1) return false;
      break;
    case SequenceType::Occurrence::kOptional:
      if (value.size() > 1) return false;
      break;
    case SequenceType::Occurrence::kPlus:
      if (value.empty()) return false;
      break;
    case SequenceType::Occurrence::kStar:
      break;
  }
  for (const Item& item : value) {
    switch (st.item) {
      case IK::kAnyItem:
        break;
      case IK::kAnyNode:
        if (!item.is_node()) return false;
        break;
      case IK::kElement:
        if (!item.is_node() || !item.node()->is_element()) return false;
        break;
      case IK::kAttribute:
        if (!item.is_node() || !item.node()->is_attribute()) return false;
        break;
      case IK::kText:
        if (!item.is_node() || !item.node()->is_text()) return false;
        break;
      case IK::kDocument:
        if (!item.is_node() ||
            item.node()->kind() != xml::NodeKind::kDocument) {
          return false;
        }
        break;
      case IK::kAtomic: {
        if (item.is_node()) return false;
        AtomicType t = item.atomic().type();
        if (st.atomic == AtomicType::kUntypedAtomic) break;  // anyAtomic
        if (t != st.atomic &&
            !(st.atomic == AtomicType::kDouble && item.atomic().is_numeric()) &&
            !(st.atomic == AtomicType::kDecimal &&
              (t == AtomicType::kInteger || t == AtomicType::kDecimal))) {
          return false;
        }
        break;
      }
      case IK::kEmptySequence:
        return false;
    }
  }
  return true;
}

Result<Sequence> Evaluator::EvalCast(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence value, Eval(*e.kids[0], ctx));
  if (e.cast_op == "instance") {
    XQ_ASSIGN_OR_RETURN(bool ok, MatchesSequenceType(value, e.seq_type));
    return Sequence{Item::Boolean(ok)};
  }
  if (e.cast_op == "treat") {
    XQ_ASSIGN_OR_RETURN(bool ok, MatchesSequenceType(value, e.seq_type));
    if (!ok) {
      return Status::Error("XPDY0050", "treat as: value does not match type");
    }
    return value;
  }
  // cast / castable: target must be atomic.
  if (e.seq_type.item != SequenceType::ItemKind::kAtomic) {
    return Status::SyntaxError("cast target must be an atomic type");
  }
  Sequence data = xdm::Atomize(value);
  if (data.empty()) {
    bool optional = e.seq_type.occ == SequenceType::Occurrence::kOptional;
    if (e.cast_op == "castable") {
      return Sequence{Item::Boolean(optional)};
    }
    if (optional) return Sequence{};
    return Status::TypeError("cast of an empty sequence to a non-optional "
                             "type");
  }
  if (data.size() > 1) {
    if (e.cast_op == "castable") return Sequence{Item::Boolean(false)};
    return Status::TypeError("cast applied to a sequence of several items");
  }
  Result<AtomicValue> cast = data[0].atomic().CastTo(e.seq_type.atomic);
  if (e.cast_op == "castable") {
    return Sequence{Item::Boolean(cast.ok())};
  }
  if (!cast.ok()) return cast.status();
  return Sequence{Item::Atomic(std::move(cast).value())};
}

// ------------------------------------------------------------ fulltext ---

Result<Sequence> Evaluator::EvalFtContains(const Expr& e,
                                           DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence searched, Eval(*e.kids[0], ctx));
  // ftcontains is true if any item in the searched sequence matches.
  for (const Item& item : searched) {
    std::vector<std::string> tokens = TokenizeWords(item.StringValue());
    XQ_ASSIGN_OR_RETURN(bool match, EvalFtSelection(*e.ft, tokens, ctx));
    if (match) return Sequence{Item::Boolean(true)};
  }
  return Sequence{Item::Boolean(false)};
}

Result<bool> Evaluator::EvalFtSelection(const FtSelection& sel,
                                        const std::vector<std::string>& tokens,
                                        DynamicContext& ctx) {
  switch (sel.kind) {
    case FtSelection::Kind::kWords: {
      XQ_ASSIGN_OR_RETURN(Sequence words, Eval(*sel.words, ctx));
      // Any of the word items matching satisfies the selection ("any" is
      // the XQFT default for a sequence of search strings).
      for (const Item& w : words) {
        if (ContainsPhrase(tokens, w.StringValue(), sel.with_stemming)) {
          return true;
        }
      }
      return false;
    }
    case FtSelection::Kind::kAnd: {
      for (const auto& kid : sel.kids) {
        XQ_ASSIGN_OR_RETURN(bool b, EvalFtSelection(*kid, tokens, ctx));
        if (!b) return false;
      }
      return true;
    }
    case FtSelection::Kind::kOr: {
      for (const auto& kid : sel.kids) {
        XQ_ASSIGN_OR_RETURN(bool b, EvalFtSelection(*kid, tokens, ctx));
        if (b) return true;
      }
      return false;
    }
    case FtSelection::Kind::kNot: {
      XQ_ASSIGN_OR_RETURN(bool b, EvalFtSelection(*sel.kids[0], tokens, ctx));
      return !b;
    }
  }
  return false;
}

// --------------------------------------------------------- constructors ---

Status Evaluator::AppendContent(const Sequence& content, xml::Node* parent,
                                xml::Document* doc) {
  // XQuery content semantics: adjacent atomic values join with a space
  // into one text node; nodes are deep-copied; attributes attach to the
  // element (only allowed before other content, relaxed here).
  std::string pending_text;
  bool have_pending = false;
  auto flush = [&]() {
    if (have_pending) {
      parent->AppendChild(doc->CreateText(pending_text));
      pending_text.clear();
      have_pending = false;
    }
  };
  for (const Item& item : content) {
    if (item.is_node()) {
      xml::Node* n = item.node();
      if (n->is_attribute()) {
        flush();
        if (!parent->is_element()) {
          return Status::TypeError(
              "attribute node in non-element content");
        }
        parent->SetAttribute(n->name(), n->value());
        continue;
      }
      if (n->kind() == xml::NodeKind::kDocument) {
        flush();
        for (xml::Node* c : n->children()) {
          parent->AppendChild(doc->ImportCopy(c));
        }
        continue;
      }
      flush();
      parent->AppendChild(doc->ImportCopy(n));
    } else {
      if (have_pending) pending_text += " ";
      pending_text += item.atomic().ToXPathString();
      have_pending = true;
    }
  }
  flush();
  return Status();
}

Result<xml::Node*> Evaluator::BuildDirectNode(const DirectNode& d,
                                              xml::Document* doc,
                                              DynamicContext& ctx) {
  switch (d.kind) {
    case DirectNode::Kind::kText:
      return doc->CreateText(d.text);
    case DirectNode::Kind::kComment:
      return doc->CreateComment(d.text);
    case DirectNode::Kind::kPI:
      return doc->CreateProcessingInstruction(d.name.local, d.text);
    case DirectNode::Kind::kEnclosedExpr:
      // Handled by the caller (expands to a sequence).
      return Status::NotImplemented("enclosed expr outside element content");
    case DirectNode::Kind::kElement: {
      xml::Node* element = doc->CreateElement(d.name);
      for (const DirectNode::Attr& attr : d.attrs) {
        std::string value;
        for (const DirectNode::AttrPart& part : attr.parts) {
          if (part.expr != nullptr) {
            XQ_ASSIGN_OR_RETURN(Sequence v, Eval(*part.expr, ctx));
            Sequence data = xdm::Atomize(v);
            for (size_t i = 0; i < data.size(); ++i) {
              if (i > 0) value += " ";
              value += data[i].atomic().ToXPathString();
            }
          } else {
            value += part.literal;
          }
        }
        element->SetAttribute(attr.name, std::move(value));
      }
      for (const auto& child : d.children) {
        if (child->kind == DirectNode::Kind::kEnclosedExpr) {
          XQ_ASSIGN_OR_RETURN(Sequence content, Eval(*child->expr, ctx));
          XQ_RETURN_NOT_OK(AppendContent(content, element, doc));
        } else {
          XQ_ASSIGN_OR_RETURN(xml::Node* n,
                              BuildDirectNode(*child, doc, ctx));
          element->AppendChild(n);
        }
      }
      return element;
    }
  }
  return Status::NotImplemented("unknown direct node kind");
}

Result<Sequence> Evaluator::EvalDirectElement(const Expr& e,
                                              DynamicContext& ctx) {
  xml::Document* doc = ctx.scratch_document();
  XQ_ASSIGN_OR_RETURN(xml::Node* node, BuildDirectNode(*e.direct, doc, ctx));
  return Sequence{Item::Node(node)};
}

Result<Sequence> Evaluator::EvalComputedConstructor(const Expr& e,
                                                    DynamicContext& ctx) {
  xml::Document* doc = ctx.scratch_document();
  size_t content_idx = 0;
  xml::QName name = e.qname;
  if (e.str == "computed-name") {
    XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[0], ctx));
    XQ_ASSIGN_OR_RETURN(AtomicValue nv,
                        RequireSingleAtomic(name_seq, "computed name"));
    if (nv.type() == AtomicType::kQName) {
      name = nv.qname_value();
    } else {
      name = xml::QName(nv.ToXPathString());
    }
    content_idx = 1;
  }
  Sequence content;
  if (e.kids.size() > content_idx) {
    XQ_ASSIGN_OR_RETURN(content, Eval(*e.kids[content_idx], ctx));
  }
  switch (e.kind) {
    case ExprKind::kComputedElement: {
      xml::Node* element = doc->CreateElement(name);
      XQ_RETURN_NOT_OK(AppendContent(content, element, doc));
      return Sequence{Item::Node(element)};
    }
    case ExprKind::kComputedAttribute: {
      Sequence data = xdm::Atomize(content);
      std::string value;
      for (size_t i = 0; i < data.size(); ++i) {
        if (i > 0) value += " ";
        value += data[i].atomic().ToXPathString();
      }
      return Sequence{Item::Node(doc->CreateAttribute(name, value))};
    }
    case ExprKind::kComputedText: {
      Sequence data = xdm::Atomize(content);
      std::string value;
      for (size_t i = 0; i < data.size(); ++i) {
        if (i > 0) value += " ";
        value += data[i].atomic().ToXPathString();
      }
      return Sequence{Item::Node(doc->CreateText(value))};
    }
    case ExprKind::kComputedComment:
      return Sequence{
          Item::Node(doc->CreateComment(xdm::SequenceToString(content)))};
    case ExprKind::kComputedPI:
      return Sequence{Item::Node(doc->CreateProcessingInstruction(
          e.str, xdm::SequenceToString(content)))};
    default:
      return Status::NotImplemented("constructor kind");
  }
}

// -------------------------------------------------------------- update ---

Result<Sequence> Evaluator::EvalInsert(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence source, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence target_seq, Eval(*e.kids[1], ctx));
  if (target_seq.size() != 1 || !target_seq[0].is_node()) {
    return Status::Error("XUTY0008",
                         "insert target must be a single node");
  }
  xml::Node* target = target_seq[0].node();
  bool into = e.insert_mode == InsertMode::kInto ||
              e.insert_mode == InsertMode::kAsFirstInto ||
              e.insert_mode == InsertMode::kAsLastInto;
  if (into && !target->is_element() &&
      target->kind() != xml::NodeKind::kDocument) {
    return Status::Error("XUTY0005",
                         "insert into target must be an element or document");
  }
  if (!into && target->parent() == nullptr) {
    return Status::Error("XUDY0029",
                         "insert before/after target has no parent");
  }
  xml::Document* doc = target->document();
  PendingUpdateList::Primitive prim;
  PendingUpdateList::Primitive attr_prim;
  attr_prim.kind = PendingUpdateList::Kind::kInsertAttributes;
  attr_prim.target = into ? target : target->parent();
  for (const Item& item : source) {
    if (!item.is_node()) {
      // Atomic content becomes a text node (convenience extension).
      prim.content.push_back(
          doc->CreateText(item.atomic().ToXPathString()));
      continue;
    }
    xml::Node* copy = doc->ImportCopy(item.node());
    if (copy->is_attribute()) {
      attr_prim.content.push_back(copy);
    } else {
      prim.content.push_back(copy);
    }
  }
  switch (e.insert_mode) {
    case InsertMode::kInto:
    case InsertMode::kAsLastInto:
      prim.kind = PendingUpdateList::Kind::kInsertLast;
      break;
    case InsertMode::kAsFirstInto:
      prim.kind = PendingUpdateList::Kind::kInsertFirst;
      break;
    case InsertMode::kBefore:
      prim.kind = PendingUpdateList::Kind::kInsertBefore;
      break;
    case InsertMode::kAfter:
      prim.kind = PendingUpdateList::Kind::kInsertAfter;
      break;
  }
  prim.target = target;
  if (!attr_prim.content.empty()) {
    if (!attr_prim.target->is_element()) {
      return Status::Error("XUTY0022",
                           "attribute insertion into a non-element");
    }
    ctx.pul().Add(std::move(attr_prim));
  }
  if (!prim.content.empty()) ctx.pul().Add(std::move(prim));
  return Sequence{};
}

Result<Sequence> Evaluator::EvalDelete(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[0], ctx));
  for (const Item& item : targets) {
    if (!item.is_node()) {
      return Status::Error("XUTY0007", "delete target must be nodes");
    }
    PendingUpdateList::Primitive prim;
    prim.kind = PendingUpdateList::Kind::kDelete;
    prim.target = item.node();
    ctx.pul().Add(std::move(prim));
  }
  return Sequence{};
}

Result<Sequence> Evaluator::EvalReplace(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence target_seq, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence source, Eval(*e.kids[1], ctx));
  if (target_seq.size() != 1 || !target_seq[0].is_node()) {
    return Status::Error("XUTY0008",
                         "replace target must be a single node");
  }
  xml::Node* target = target_seq[0].node();
  PendingUpdateList::Primitive prim;
  prim.target = target;
  if (e.replace_value_of) {
    // replace value of node T with S: S atomizes to the new string value.
    Sequence data = xdm::Atomize(source);
    std::string value;
    for (size_t i = 0; i < data.size(); ++i) {
      if (i > 0) value += " ";
      value += data[i].atomic().ToXPathString();
    }
    prim.kind = target->is_element()
                    ? PendingUpdateList::Kind::kReplaceElementContent
                    : PendingUpdateList::Kind::kReplaceValue;
    prim.value = std::move(value);
  } else {
    if (target->parent() == nullptr) {
      return Status::Error("XUDY0009", "replace target has no parent");
    }
    prim.kind = PendingUpdateList::Kind::kReplaceNode;
    xml::Document* doc = target->document();
    for (const Item& item : source) {
      if (item.is_node()) {
        prim.content.push_back(doc->ImportCopy(item.node()));
      } else {
        prim.content.push_back(
            doc->CreateText(item.atomic().ToXPathString()));
      }
    }
  }
  ctx.pul().Add(std::move(prim));
  return Sequence{};
}

Result<Sequence> Evaluator::EvalRename(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence target_seq, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[1], ctx));
  if (target_seq.size() != 1 || !target_seq[0].is_node()) {
    return Status::Error("XUTY0008", "rename target must be a single node");
  }
  XQ_ASSIGN_OR_RETURN(AtomicValue nv,
                      RequireSingleAtomic(name_seq, "rename name"));
  xml::QName new_name = nv.type() == AtomicType::kQName
                            ? nv.qname_value()
                            : xml::QName(nv.ToXPathString());
  PendingUpdateList::Primitive prim;
  prim.kind = PendingUpdateList::Kind::kRename;
  prim.target = target_seq[0].node();
  prim.name = std::move(new_name);
  ctx.pul().Add(std::move(prim));
  return Sequence{};
}

Result<Sequence> Evaluator::EvalTransform(const Expr& e,
                                          DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence source, Eval(*e.kids[0], ctx));
  if (source.size() != 1 || !source[0].is_node()) {
    return Status::Error("XUTY0013", "copy source must be a single node");
  }
  xml::Document* doc = ctx.scratch_document();
  xml::Node* copy = doc->ImportCopy(source[0].node());
  ctx.env().PushScope();
  ctx.env().Bind(e.qname, Sequence{Item::Node(copy)});
  // The modify clause updates only the copy: evaluate it with a private
  // PUL and apply immediately.
  auto saved = ctx.pul().Take();
  Result<Sequence> modify = Eval(*e.kids[1], ctx);
  Status apply = modify.ok() ? ctx.pul().ApplyAll() : Status();
  ctx.pul().Restore(std::move(saved));
  if (!modify.ok()) {
    ctx.env().PopScope();
    return modify.status();
  }
  if (!apply.ok()) {
    ctx.env().PopScope();
    return apply;
  }
  Result<Sequence> result = Eval(*e.kids[2], ctx);
  ctx.env().PopScope();
  return result;
}

// ----------------------------------------------------------- scripting ---

Result<Sequence> Evaluator::EvalBlock(const Expr& e, DynamicContext& ctx) {
  ctx.env().PushScope();
  Sequence last;
  for (const ExprPtr& stmt : e.kids) {
    Result<Sequence> r = Eval(*stmt, ctx);
    if (!r.ok()) {
      ctx.env().PopScope();
      return r;
    }
    // Scripting semantics (§3.3): updates become visible at every
    // statement boundary.
    Status apply = ctx.pul().ApplyAll();
    if (!apply.ok()) {
      ctx.env().PopScope();
      return apply;
    }
    last = std::move(r).value();
    if (exit_flag_) break;
  }
  ctx.env().PopScope();
  return last;
}

Result<Sequence> Evaluator::EvalWhile(const Expr& e, DynamicContext& ctx) {
  Sequence last;
  while (true) {
    XQ_ASSIGN_OR_RETURN(bool b, EvalBool(*e.kids[0], ctx));
    if (!b) break;
    XQ_ASSIGN_OR_RETURN(last, Eval(*e.kids[1], ctx));
    XQ_RETURN_NOT_OK(ctx.pul().ApplyAll());
    if (exit_flag_) break;
  }
  return last;
}

// ----------------------------------------------- browser grammar ext. ---

Result<Sequence> Evaluator::EvalBrowserExtension(const Expr& e,
                                                 DynamicContext& ctx) {
  if (ctx.browser_binding == nullptr) {
    return Status::Error("BRWS0001",
                         "browser extension used outside a browser context");
  }
  BrowserBinding& bb = *ctx.browser_binding;
  switch (e.kind) {
    case ExprKind::kEventAttach: {
      XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[0], ctx));
      std::string event_name = xdm::SequenceToString(name_seq);
      if (e.behind) {
        XQ_RETURN_NOT_OK(bb.AttachBehind(event_name, *e.kids[1], e.qname,
                                         ctx));
        return Sequence{};
      }
      XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[1], ctx));
      XQ_RETURN_NOT_OK(bb.AttachListener(event_name, targets, e.qname, ctx));
      return Sequence{};
    }
    case ExprKind::kEventDetach: {
      XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[1], ctx));
      XQ_RETURN_NOT_OK(bb.DetachListener(xdm::SequenceToString(name_seq),
                                         targets, e.qname, ctx));
      return Sequence{};
    }
    case ExprKind::kEventTrigger: {
      XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[1], ctx));
      XQ_RETURN_NOT_OK(bb.TriggerEvent(xdm::SequenceToString(name_seq),
                                       targets, ctx));
      return Sequence{};
    }
    case ExprKind::kSetStyle: {
      XQ_ASSIGN_OR_RETURN(Sequence prop, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[1], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence value, Eval(*e.kids[2], ctx));
      XQ_RETURN_NOT_OK(bb.SetStyle(xdm::SequenceToString(prop), targets,
                                   xdm::SequenceToString(value), ctx));
      return Sequence{};
    }
    case ExprKind::kGetStyle: {
      XQ_ASSIGN_OR_RETURN(Sequence prop, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence target, Eval(*e.kids[1], ctx));
      XQ_ASSIGN_OR_RETURN(std::string value,
                          bb.GetStyle(xdm::SequenceToString(prop), target,
                                      ctx));
      return Sequence{Item::String(value)};
    }
    default:
      return Status::NotImplemented("browser extension kind");
  }
}

}  // namespace xqib::xquery
