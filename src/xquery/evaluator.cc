#include "xquery/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "base/strings.h"
#include "xquery/federation.h"
#include "xquery/fulltext.h"
#include "xquery/plan/plan.h"
#include "xquery/profiler.h"
#include "xquery/update.h"
#include "xquery/value_ops.h"

namespace xqib::xquery {

using xdm::AtomicType;
using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;
using valueops::RequireSingleAtomic;

namespace {

bool MatchesNodeTest(const NodeTest& test, const xml::Node* node,
                     Axis axis) {
  using Kind = NodeTest::Kind;
  switch (test.kind) {
    case Kind::kAnyKind:
      return true;
    case Kind::kText:
      return node->kind() == xml::NodeKind::kText;
    case Kind::kComment:
      return node->kind() == xml::NodeKind::kComment;
    case Kind::kDocument:
      return node->kind() == xml::NodeKind::kDocument;
    case Kind::kPI:
      if (node->kind() != xml::NodeKind::kProcessingInstruction) return false;
      return test.any_name || test.name.local().empty() ||
             node->name().local_token() == test.name.local_token();
    case Kind::kElement:
      if (!node->is_element()) return false;
      return test.any_name || node->name() == test.name;
    case Kind::kAttribute:
      if (!node->is_attribute()) return false;
      return test.any_name || node->name() == test.name;
    case Kind::kName: {
      // A name test selects the principal node kind of the axis:
      // attributes on the attribute axis, elements elsewhere.
      bool want_attr = axis == Axis::kAttribute;
      if (want_attr != node->is_attribute()) return false;
      if (!want_attr && !node->is_element()) return false;
      if (test.any_name) return true;
      // Interned tokens: wildcard name tests are pointer compares too.
      if (test.any_ns) {
        return node->name().local_token() == test.name.local_token();
      }
      if (test.any_local) return node->name().ns_token() == test.name.ns_token();
      return node->name() == test.name;
    }
  }
  return false;
}

void CollectDescendants(xml::Node* node, std::vector<xml::Node*>* out) {
  for (xml::Node* c : node->children()) {
    out->push_back(c);
    CollectDescendants(c, out);
  }
}

// Nodes of the axis from `node`, in axis order (reverse axes reversed).
void AxisNodes(Axis axis, xml::Node* node, std::vector<xml::Node*>* out) {
  switch (axis) {
    case Axis::kChild:
      out->assign(node->children().begin(), node->children().end());
      break;
    case Axis::kAttribute:
      out->assign(node->attributes().begin(), node->attributes().end());
      break;
    case Axis::kSelf:
      out->push_back(node);
      break;
    case Axis::kDescendant:
      CollectDescendants(node, out);
      break;
    case Axis::kDescendantOrSelf:
      out->push_back(node);
      CollectDescendants(node, out);
      break;
    case Axis::kParent:
      if (node->parent() != nullptr) out->push_back(node->parent());
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      if (axis == Axis::kAncestorOrSelf) out->push_back(node);
      xml::Node* p = node->parent();
      while (p != nullptr) {
        out->push_back(p);
        p = p->parent();
      }
      break;
    }
    case Axis::kFollowingSibling: {
      xml::Node* parent = node->parent();
      if (parent == nullptr || node->is_attribute()) break;
      size_t idx = parent->ChildIndex(node);
      for (size_t i = idx + 1; i < parent->children().size(); ++i) {
        out->push_back(parent->children()[i]);
      }
      break;
    }
    case Axis::kPrecedingSibling: {
      xml::Node* parent = node->parent();
      if (parent == nullptr || node->is_attribute()) break;
      size_t idx = parent->ChildIndex(node);
      for (size_t i = idx; i > 0; --i) {
        out->push_back(parent->children()[i - 1]);
      }
      break;
    }
    case Axis::kFollowing: {
      // All nodes after this one in document order, minus descendants.
      xml::Node* n = node;
      while (n != nullptr) {
        xml::Node* parent = n->parent();
        if (parent != nullptr && !n->is_attribute()) {
          size_t idx = parent->ChildIndex(n);
          for (size_t i = idx + 1; i < parent->children().size(); ++i) {
            out->push_back(parent->children()[i]);
            CollectDescendants(parent->children()[i], out);
          }
        }
        n = parent;
      }
      break;
    }
    case Axis::kPreceding: {
      // All nodes before this one, minus ancestors; reverse doc order.
      std::vector<xml::Node*> forward;
      xml::Node* n = node;
      while (n != nullptr) {
        xml::Node* parent = n->parent();
        if (parent != nullptr && !n->is_attribute()) {
          size_t idx = parent->ChildIndex(n);
          std::vector<xml::Node*> level;
          for (size_t i = 0; i < idx; ++i) {
            level.push_back(parent->children()[i]);
            CollectDescendants(parent->children()[i], &level);
          }
          forward.insert(forward.begin(), level.begin(), level.end());
        }
        n = parent;
      }
      out->assign(forward.rbegin(), forward.rend());
      break;
    }
  }
}

}  // namespace

// ----------------------------------------------------- stream operators ---

// Private-access forwarders for the stream operator classes below: the
// classes live in an anonymous namespace and cannot be befriended, so
// this struct is the single friend through which they reach the
// evaluator's internals.
struct EvaluatorStreams {
  static Result<Sequence> Step(Evaluator& ev, const Step& step,
                               xml::Node* node, DynamicContext& ctx) {
    return ev.EvalStep(step, node, ctx);
  }
  static Result<bool> Bool(Evaluator& ev, const Expr& e, DynamicContext& ctx) {
    return ev.EvalBool(e, ctx);
  }
  static Result<xdm::StreamPtr> Stream(Evaluator& ev, const Expr& e,
                                       DynamicContext& ctx, bool ordered) {
    return ev.EvalStreamOrdered(e, ctx, ordered);
  }
};

namespace {

using xdm::ItemStream;
using xdm::StreamPtr;

// Pull iterator over one axis from one origin node, in axis order. Only
// the forward axes with cheap incremental state stream; everything else
// (reverse axes, following/preceding) goes through the materializing
// EvalStep per origin.
class AxisCursor {
 public:
  static bool CanStream(Axis axis) {
    switch (axis) {
      case Axis::kSelf:
      case Axis::kChild:
      case Axis::kAttribute:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
      case Axis::kFollowingSibling:
        return true;
      default:
        return false;
    }
  }

  void Reset(Axis axis, xml::Node* origin) {
    axis_ = axis;
    origin_ = origin;
    list_ = nullptr;
    idx_ = 0;
    pending_self_ = false;
    stack_.clear();
    switch (axis) {
      case Axis::kSelf:
      case Axis::kDescendantOrSelf:
        pending_self_ = true;
        break;
      case Axis::kChild:
        list_ = &origin->children();
        break;
      case Axis::kAttribute:
        list_ = &origin->attributes();
        break;
      case Axis::kFollowingSibling: {
        xml::Node* parent = origin->parent();
        if (parent != nullptr && !origin->is_attribute()) {
          list_ = &parent->children();
          idx_ = parent->ChildIndex(origin) + 1;
        }
        break;
      }
      case Axis::kDescendant:
        stack_.push_back({origin, 0});
        break;
      default:
        break;  // CanStream excludes the rest
    }
  }

  // Next node of the axis (node test not yet applied); null at end.
  xml::Node* NextNode() {
    if (pending_self_) {
      pending_self_ = false;
      if (axis_ == Axis::kDescendantOrSelf) stack_.push_back({origin_, 0});
      return origin_;
    }
    if (list_ != nullptr) {
      if (idx_ < list_->size()) return (*list_)[idx_++];
      return nullptr;
    }
    // Explicit-stack preorder walk for the descendant axes.
    while (!stack_.empty()) {
      Frame& top = stack_.back();
      const std::vector<xml::Node*>& kids = top.node->children();
      if (top.next_child < kids.size()) {
        xml::Node* c = kids[top.next_child++];
        stack_.push_back({c, 0});
        return c;
      }
      stack_.pop_back();
    }
    return nullptr;
  }

 private:
  struct Frame {
    xml::Node* node;
    size_t next_child;
  };
  Axis axis_ = Axis::kSelf;
  xml::Node* origin_ = nullptr;
  const std::vector<xml::Node*>* list_ = nullptr;
  size_t idx_ = 0;
  bool pending_self_ = false;
  std::vector<Frame> stack_;
};

// One path step as a stream operator: pulls origin nodes from `input`
// and yields the step's output for each. Predicate-free streamable axes
// walk node by node through an AxisCursor; steps with predicates (or
// exotic axes) buffer one origin's output at a time via EvalStep, so
// peak memory is bounded by per-origin fan-out, never total step output
// — and predicate position()/last() semantics match the eager engine
// exactly.
class StepStream : public ItemStream {
 public:
  StepStream(Evaluator* ev, DynamicContext* ctx, const Step* step,
             StreamPtr input)
      : ev_(ev), ctx_(ctx), step_(step), input_(std::move(input)) {}

  Result<bool> Next(Item* out) override {
    while (true) {
      if (walking_) {
        while (xml::Node* n = cursor_.NextNode()) {
          if (MatchesNodeTest(step_->test, n, step_->axis)) {
            *out = Item::Node(n);
            ev_->CountPulled(*ctx_);
            return true;
          }
        }
        walking_ = false;
      }
      if (buf_pos_ < buffered_.size()) {
        *out = buffered_[buf_pos_++];
        ev_->CountPulled(*ctx_);
        return true;
      }
      Item origin;
      XQ_ASSIGN_OR_RETURN(bool more, input_->Next(&origin));
      if (!more) return false;
      if (!origin.is_node()) {
        return Status::Error("XPTY0019",
                             "path step applied to an atomic value");
      }
      if (step_->predicates.empty() && AxisCursor::CanStream(step_->axis)) {
        cursor_.Reset(step_->axis, origin.node());
        walking_ = true;
      } else {
        XQ_ASSIGN_OR_RETURN(
            buffered_, EvaluatorStreams::Step(*ev_, *step_, origin.node(),
                                              *ctx_));
        buf_pos_ = 0;
        ev_->CountMaterialized(*ctx_, buffered_.size());
      }
    }
  }

 private:
  Evaluator* ev_;
  DynamicContext* ctx_;
  const Step* step_;
  StreamPtr input_;
  AxisCursor cursor_;
  bool walking_ = false;
  Sequence buffered_;
  size_t buf_pos_ = 0;
};

// Mandatory materialization boundary: drains the upstream on first pull,
// sorts into document order and dedups, then serves the buffer. Used
// whenever AnnotateOrdering could not prove a step's raw output ordered
// and duplicate-free.
class SortBarrierStream : public ItemStream {
 public:
  SortBarrierStream(Evaluator* ev, DynamicContext* ctx, StreamPtr input)
      : ev_(ev), ctx_(ctx), input_(std::move(input)) {}

  Result<bool> Next(Item* out) override {
    if (!sorted_) {
      XQ_ASSIGN_OR_RETURN(buf_, xdm::MaterializeStream(*input_, nullptr));
      ev_->CountMaterialized(*ctx_, buf_.size());
      XQ_RETURN_NOT_OK(xdm::SortDocumentOrderDedup(&buf_));
      sorted_ = true;
      input_.reset();
    }
    if (pos_ < buf_.size()) {
      *out = buf_[pos_++];
      return true;
    }
    return false;
  }

 private:
  Evaluator* ev_;
  DynamicContext* ctx_;
  StreamPtr input_;
  Sequence buf_;
  size_t pos_ = 0;
  bool sorted_ = false;
};

// One filter predicate as a stream operator, for predicates that the
// NeedsLast scan proved cannot observe fn:last(): items stream through
// with an incremental position in the focus (size stays 0 — nothing
// downstream may read it). Numeric predicate values still select by
// position, exactly like the eager ApplyPredicates.
class PredicateStream : public ItemStream {
 public:
  PredicateStream(Evaluator* ev, DynamicContext* ctx, const Expr* pred,
                  StreamPtr input)
      : ev_(ev), ctx_(ctx), pred_(pred), input_(std::move(input)) {}

  Result<bool> Next(Item* out) override {
    Item item;
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool more, input_->Next(&item));
      if (!more) return false;
      ++pos_;
      DynamicContext::Focus saved = ctx_->focus();
      DynamicContext::Focus f;
      f.item = item;
      f.position = pos_;
      f.size = 0;
      f.has_item = true;
      ctx_->set_focus(f);
      Result<bool> keep = Keep();
      ctx_->set_focus(saved);
      if (!keep.ok()) return keep.status();
      if (*keep) {
        *out = std::move(item);
        ev_->CountPulled(*ctx_);
        return true;
      }
    }
  }

 private:
  Result<bool> Keep() {
    // Paths yield only nodes, so a path predicate is a pure existence
    // test: stream it and stop at the first witness.
    if (pred_->kind == ExprKind::kPath) {
      return EvaluatorStreams::Bool(*ev_, *pred_, *ctx_);
    }
    XQ_ASSIGN_OR_RETURN(Sequence v, ev_->Eval(*pred_, *ctx_));
    if (v.size() == 1 && !v[0].is_node() && v[0].atomic().is_numeric()) {
      XQ_ASSIGN_OR_RETURN(double d, v[0].atomic().ToDouble());
      return d == static_cast<double>(pos_);
    }
    return xdm::EffectiveBooleanValue(v);
  }

  Evaluator* ev_;
  DynamicContext* ctx_;
  const Expr* pred_;
  StreamPtr input_;
  int64_t pos_ = 0;
};

// E[N] for a literal integer N: pull N items, yield the Nth, stop
// pulling — the stream-native successor of PR 2's ordered EvalLimit.
class TakeNthStream : public ItemStream {
 public:
  TakeNthStream(Evaluator* ev, DynamicContext* ctx, int64_t n,
                StreamPtr input)
      : ev_(ev), ctx_(ctx), n_(n), input_(std::move(input)) {}

  Result<bool> Next(Item* out) override {
    if (done_) return false;
    done_ = true;
    if (n_ < 1) return false;
    Item item;
    for (int64_t i = 0; i < n_; ++i) {
      XQ_ASSIGN_OR_RETURN(bool more, input_->Next(&item));
      if (!more) return false;
    }
    input_.reset();
    ev_->CountPulled(*ctx_);
    ev_->CountEarlyExit(*ctx_);
    *out = std::move(item);
    return true;
  }

 private:
  Evaluator* ev_;
  DynamicContext* ctx_;
  int64_t n_;
  StreamPtr input_;
  bool done_ = false;
};

// E[last()]: drains the input keeping a one-item buffer — O(1) memory
// where the eager evaluator buffered the whole sequence.
class TakeLastStream : public ItemStream {
 public:
  TakeLastStream(Evaluator* ev, DynamicContext* ctx, StreamPtr input)
      : ev_(ev), ctx_(ctx), input_(std::move(input)) {}

  Result<bool> Next(Item* out) override {
    if (done_) return false;
    done_ = true;
    Item item;
    Item last;
    bool any = false;
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool more, input_->Next(&item));
      if (!more) break;
      last = std::move(item);
      any = true;
    }
    input_.reset();
    if (!any) return false;
    ev_->CountPulled(*ctx_);
    ev_->CountBuffersAvoided(*ctx_);
    ev_->CountEarlyExit(*ctx_);
    *out = std::move(last);
    return true;
  }

 private:
  Evaluator* ev_;
  DynamicContext* ctx_;
  StreamPtr input_;
  bool done_ = false;
};

// Lazy comma-sequence concatenation: each operand becomes a stream only
// when its turn comes.
class ConcatStream : public ItemStream {
 public:
  ConcatStream(Evaluator* ev, DynamicContext* ctx, const Expr* e,
               bool ordered)
      : ev_(ev), ctx_(ctx), e_(e), ordered_(ordered) {}

  Result<bool> Next(Item* out) override {
    while (true) {
      if (cur_ != nullptr) {
        XQ_ASSIGN_OR_RETURN(bool more, cur_->Next(out));
        if (more) {
          ev_->CountPulled(*ctx_);
          return true;
        }
        cur_.reset();
      }
      if (ev_->exited() || ki_ >= e_->kids.size()) return false;
      XQ_ASSIGN_OR_RETURN(
          cur_, EvaluatorStreams::Stream(*ev_, *e_->kids[ki_++], *ctx_,
                                         ordered_));
    }
  }

 private:
  Evaluator* ev_;
  DynamicContext* ctx_;
  const Expr* e_;
  bool ordered_;
  size_t ki_ = 0;
  StreamPtr cur_;
};

// FLWOR for/let/where/return as one composed stream operator (order by
// stays on the eager path — it is a materialization barrier by nature).
//
// Scope discipline: each bound clause owns one environment scope,
// pushed in clause order. Every Next() call re-establishes the scopes
// of the currently bound clauses on entry and pops them all before
// returning, so (a) the environment looks untouched between pulls, and
// (b) when clause k's lazily evaluated binding stream is pulled, the
// scopes of clauses >= k are popped first — deeper same-named variables
// can never shadow what clause k's expression lexically sees.
//
// With ret == nullptr the stream yields one marker item per qualifying
// tuple ("tuple mode") — that is exactly the engine a quantifier needs:
// some = exists(tuples where test), every = empty(tuples where not
// test) via negate_where.
class FlworStream : public ItemStream {
 public:
  FlworStream(Evaluator* ev, DynamicContext* ctx, const Expr* e,
              const Expr* where, const Expr* ret, bool negate_where)
      : ev_(ev),
        ctx_(ctx),
        e_(e),
        where_(where),
        ret_expr_(ret),
        negate_where_(negate_where),
        states_(e->clauses.size()) {
    // `return $x` — the dominant shape after optimizer rewrites — needs
    // no return-stream machinery at all: the tuple's binding IS the
    // result. NextImpl peeks it in place instead of spinning up an
    // EvalStream (which would copy the sequence and allocate a stream
    // operator per tuple).
    if (ret != nullptr && ret->kind == ExprKind::kVarRef) {
      var_ret_ = &ret->qname;
    }
  }

  Result<bool> Next(Item* out) override {
    if (finished_ || ev_->exited()) return false;
    pushed_ = 0;
    for (size_t i = 0; i < states_.size() && states_[i].bound; ++i) {
      PushClause(i);
    }
    Result<bool> r = NextImpl(out);
    while (pushed_ > 0) {  // unwind only; the bindings stay recorded
      PopClause();
    }
    return r;
  }

 private:
  struct ClauseState {
    StreamPtr stream;  // for-clauses: source of the remaining items
    Sequence value;    // current binding (for: singleton; let: full)
    int64_t pos = 0;   // 1-based "at $i" counter
    bool bound = false;
  };

  // Establishes clause i's scope by MOVING the recorded value into the
  // environment; PopClause moves it back. One tuple's scopes therefore
  // round-trip between states_ and the (flat) environment with zero
  // allocation — this is the per-pull hot path of every FLWOR.
  void PushClause(size_t i) {
    const Clause& c = e_->clauses[i];
    ctx_->env().PushScope();
    ctx_->env().Bind(c.var, std::move(states_[i].value));
    if (c.kind == Clause::Kind::kFor && !c.pos_var.local().empty()) {
      ctx_->env().Bind(c.pos_var, Sequence{Item::Integer(states_[i].pos)});
    }
    ++pushed_;
  }

  // Inverse of PushClause: recovers the binding's buffer into the clause
  // state, then pops the scope.
  void PopClause() {
    --pushed_;
    xdm::Sequence* bound = ctx_->env().TopBinding(e_->clauses[pushed_].var);
    if (bound != nullptr) states_[pushed_].value = std::move(*bound);
    ctx_->env().PopScope();
  }

  // Pops the scopes of clauses >= k and marks them unbound (used while
  // stepping; the end-of-Next unwind must NOT clear bound flags).
  void PopTo(size_t k) {
    while (pushed_ > k) {
      PopClause();
      states_[pushed_].bound = false;
    }
  }

  Result<bool> NextImpl(Item* out) {
    if (var_ret_ != nullptr) return VarRetNext(out);
    while (true) {
      if (ret_ != nullptr) {
        Item item;
        XQ_ASSIGN_OR_RETURN(bool more, ret_->Next(&item));
        if (more) {
          *out = std::move(item);
          ev_->CountPulled(*ctx_);
          return true;
        }
        ret_.reset();
        if (ev_->exited()) {
          finished_ = true;
          return false;
        }
      }
      XQ_ASSIGN_OR_RETURN(bool tuple, AdvanceTuple());
      if (!tuple) {
        finished_ = true;
        return false;
      }
      if (ret_expr_ == nullptr) {  // tuple mode
        *out = Item::Boolean(true);
        ev_->CountPulled(*ctx_);
        return true;
      }
      XQ_ASSIGN_OR_RETURN(ret_, ev_->EvalStream(*ret_expr_, *ctx_));
    }
  }

  // Fast path for `return $x`: emit the bound items straight out of the
  // environment. Singletons (every for-bound variable) copy one Item;
  // larger let-bound values are staged in pending_ because the Peek
  // pointer dies when Next()'s unwind pops the tuple scopes.
  Result<bool> VarRetNext(Item* out) {
    while (true) {
      if (pending_idx_ < pending_.size()) {
        *out = pending_[pending_idx_++];
        ev_->CountPulled(*ctx_);
        return true;
      }
      XQ_ASSIGN_OR_RETURN(bool tuple, AdvanceTuple());
      if (!tuple) {
        finished_ = true;
        return false;
      }
      const Sequence* v = ctx_->env().Peek(*var_ret_);
      if (v == nullptr) {
        // Unbound: route through Lookup for the standard XPDY0002.
        XQ_ASSIGN_OR_RETURN(Sequence unused, ctx_->env().Lookup(*var_ret_));
        (void)unused;
        continue;
      }
      if (v->size() == 1) {
        *out = (*v)[0];
        ev_->CountPulled(*ctx_);
        return true;
      }
      pending_.assign(v->begin(), v->end());
      pending_idx_ = 0;
    }
  }

  // Advances to the next tuple satisfying the where clause; the lazy
  // where short-circuit is what stops deeper clause streams from ever
  // being pulled for rejected prefixes.
  Result<bool> AdvanceTuple() {
    while (true) {
      XQ_ASSIGN_OR_RETURN(bool have, AdvanceBindings());
      if (!have || ev_->exited()) return false;
      if (where_ != nullptr) {
        XQ_ASSIGN_OR_RETURN(bool keep,
                            EvaluatorStreams::Bool(*ev_, *where_, *ctx_));
        if (negate_where_) keep = !keep;
        if (!keep) continue;
      }
      return true;
    }
  }

  // Odometer over the clause streams. Invariant: the bound clauses form
  // a prefix 0..pushed_-1, one scope each.
  Result<bool> AdvanceBindings() {
    const std::vector<Clause>& clauses = e_->clauses;
    size_t ci = 0;
    bool stepping = primed_;
    primed_ = true;
    while (true) {
      if (stepping) {
        // Advance the deepest open for-clause; its own scope and every
        // deeper one are popped first so the binding stream pulls
        // against a clean environment (clauses < s only).
        int s = static_cast<int>(pushed_) - 1;
        while (s >= 0 &&
               clauses[static_cast<size_t>(s)].kind == Clause::Kind::kLet) {
          --s;
        }
        if (s < 0) return false;
        PopTo(static_cast<size_t>(s));
        ClauseState& st = states_[static_cast<size_t>(s)];
        Item item;
        XQ_ASSIGN_OR_RETURN(bool more, st.stream->Next(&item));
        if (!more) {
          st.stream.reset();
          continue;  // keep stepping, one clause shallower
        }
        st.value.clear();  // reuses the round-tripped buffer's capacity
        st.value.push_back(std::move(item));
        ++st.pos;
        st.bound = true;
        PushClause(static_cast<size_t>(s));
        ci = static_cast<size_t>(s) + 1;
        stepping = false;
        continue;
      }
      if (ci == clauses.size()) return true;
      const Clause& c = clauses[ci];
      ClauseState& st = states_[ci];
      if (c.kind == Clause::Kind::kLet) {
        // let binds the full value: an (eager) materialization boundary.
        XQ_ASSIGN_OR_RETURN(st.value, ev_->Eval(*c.expr, *ctx_));
        st.pos = 0;
        st.bound = true;
        PushClause(ci);
        ++ci;
        continue;
      }
      XQ_ASSIGN_OR_RETURN(st.stream, ev_->EvalStream(*c.expr, *ctx_));
      ev_->CountBuffersAvoided(*ctx_);
      Item item;
      XQ_ASSIGN_OR_RETURN(bool more, st.stream->Next(&item));
      if (!more) {
        st.stream.reset();
        st.bound = false;
        stepping = true;  // empty binding: backtrack below ci
        continue;
      }
      st.value.clear();
      st.value.push_back(std::move(item));
      st.pos = 1;
      st.bound = true;
      PushClause(ci);
      ++ci;
    }
  }

  Evaluator* ev_;
  DynamicContext* ctx_;
  const Expr* e_;
  const Expr* where_;
  const Expr* ret_expr_;
  bool negate_where_;
  std::vector<ClauseState> states_;
  size_t pushed_ = 0;
  bool primed_ = false;
  bool finished_ = false;
  StreamPtr ret_;
  const xml::QName* var_ret_ = nullptr;  // set when ret is a bare $x
  Sequence pending_;  // staged multi-item $x values (capacity reused)
  size_t pending_idx_ = 0;
};

// Allocates a stream operator on the context's dispatch arena (or the
// heap under the arena_streams=false ablation), accounting the bytes.
template <typename T, typename... Args>
StreamPtr MakeOp(Evaluator* ev, DynamicContext& ctx, Args&&... args) {
  xdm::Arena* arena = ev->StreamArena(ctx);
  if (arena != nullptr) ev->CountArenaAlloc(ctx, sizeof(T));
  return xdm::MakeStream<T>(arena, std::forward<Args>(args)...);
}

}  // namespace

// -------------------------------------------------------------- Eval ---

Result<Sequence> Evaluator::Eval(const Expr& e, DynamicContext& ctx) {
  if (ctx.profiler == nullptr) return EvalImpl(e, ctx);
  // Profiled evaluation: inclusive time via a clock, self time via a
  // running child-time accumulator threaded through the recursion.
  double* slot = ctx.profiler->child_time_slot();
  double saved = *slot;
  *slot = 0;
  auto t0 = std::chrono::steady_clock::now();
  Result<Sequence> result = EvalImpl(e, ctx);
  double inclusive_us =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count()) /
      1000.0;
  ctx.profiler->Record(&e, inclusive_us, *slot);
  *slot = saved + inclusive_us;
  return result;
}

Result<Sequence> Evaluator::EvalImpl(const Expr& e, DynamicContext& ctx) {
  if (exit_flag_) return Sequence{};
  switch (e.kind) {
    case ExprKind::kLiteral:
      return Sequence{Item::Atomic(e.atom)};
    case ExprKind::kVarRef:
      return ctx.env().Lookup(e.qname);
    case ExprKind::kContextItem: {
      if (!ctx.focus().has_item) {
        return Status::Error("XPDY0002", "context item is undefined");
      }
      return Sequence{ctx.focus().item};
    }
    case ExprKind::kSequence: {
      Sequence out;
      for (const ExprPtr& kid : e.kids) {
        XQ_ASSIGN_OR_RETURN(Sequence part, Eval(*kid, ctx));
        out.insert(out.end(), part.begin(), part.end());
        if (exit_flag_) break;
      }
      return out;
    }
    case ExprKind::kRange: {
      XQ_ASSIGN_OR_RETURN(Sequence lo_seq, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence hi_seq, Eval(*e.kids[1], ctx));
      if (lo_seq.empty() || hi_seq.empty()) return Sequence{};
      XQ_ASSIGN_OR_RETURN(AtomicValue lo_a,
                          RequireSingleAtomic(lo_seq, "range"));
      XQ_ASSIGN_OR_RETURN(AtomicValue hi_a,
                          RequireSingleAtomic(hi_seq, "range"));
      XQ_ASSIGN_OR_RETURN(int64_t lo, lo_a.ToInteger());
      XQ_ASSIGN_OR_RETURN(int64_t hi, hi_a.ToInteger());
      Sequence out;
      if (hi >= lo) out.reserve(static_cast<size_t>(hi - lo + 1));
      for (int64_t v = lo; v <= hi; ++v) out.push_back(Item::Integer(v));
      CountMaterialized(ctx, out.size());
      return out;
    }
    case ExprKind::kArith:
    case ExprKind::kUnary:
      return EvalArith(e, ctx);
    case ExprKind::kComparison:
      return EvalComparison(e, ctx);
    case ExprKind::kLogical: {
      XQ_ASSIGN_OR_RETURN(bool lv, EvalBool(*e.kids[0], ctx));
      if (e.logical_and && !lv) return Sequence{Item::Boolean(false)};
      if (!e.logical_and && lv) return Sequence{Item::Boolean(true)};
      XQ_ASSIGN_OR_RETURN(bool rv, EvalBool(*e.kids[1], ctx));
      return Sequence{Item::Boolean(rv)};
    }
    case ExprKind::kPath: {
      if (options_.stream_pipeline) {
        XQ_ASSIGN_OR_RETURN(
            xdm::StreamPtr s,
            BuildPathStream(e, ctx, /*ordered_required=*/true));
        return MaterializeFrom(std::move(s), ctx);
      }
      return EvalPathEager(e, ctx);
    }
    case ExprKind::kFilter: {
      if (options_.stream_pipeline) {
        XQ_ASSIGN_OR_RETURN(xdm::StreamPtr s, BuildFilterStream(e, ctx));
        return MaterializeFrom(std::move(s), ctx);
      }
      XQ_ASSIGN_OR_RETURN(Sequence input, Eval(*e.kids[0], ctx));
      return ApplyPredicates(e.predicates, std::move(input), ctx);
    }
    case ExprKind::kFLWOR: {
      MaybeScatterFlwor(e, ctx);
      if (options_.stream_pipeline && e.order_specs.empty()) {
        const Expr* where = e.where == nullptr ? nullptr : e.where.get();
        xdm::StreamPtr s =
            MakeOp<FlworStream>(this, ctx, this, &ctx, &e, where,
                                e.kids[0].get(), /*negate_where=*/false);
        return MaterializeFrom(std::move(s), ctx);
      }
      return EvalFLWOR(e, ctx);
    }
    case ExprKind::kQuantified:
      return EvalQuantified(e, ctx);
    case ExprKind::kIf: {
      XQ_ASSIGN_OR_RETURN(bool b, EvalBool(*e.kids[0], ctx));
      return Eval(b ? *e.kids[1] : *e.kids[2], ctx);
    }
    case ExprKind::kFunctionCall:
      return EvalFunctionCall(e, ctx);
    case ExprKind::kCast:
      return EvalCast(e, ctx);
    case ExprKind::kTypeswitch: {
      XQ_ASSIGN_OR_RETURN(Sequence operand, Eval(*e.kids[0], ctx));
      for (size_t i = 0; i < e.clauses.size(); ++i) {
        XQ_ASSIGN_OR_RETURN(bool match,
                            MatchesSequenceType(operand, e.case_types[i]));
        if (!match) continue;
        const Clause& clause = e.clauses[i];
        ctx.env().PushScope();
        if (!clause.var.local().empty()) {
          ctx.env().Bind(clause.var, operand);
        }
        Result<Sequence> r = Eval(*clause.expr, ctx);
        ctx.env().PopScope();
        return r;
      }
      ctx.env().PushScope();
      if (!e.qname.local().empty()) ctx.env().Bind(e.qname, operand);
      Result<Sequence> r = Eval(*e.kids[1], ctx);
      ctx.env().PopScope();
      return r;
    }
    case ExprKind::kSetOp:
      return EvalSetOp(e, ctx);
    case ExprKind::kFtContains:
      return EvalFtContains(e, ctx);
    case ExprKind::kDirectElement:
      return EvalDirectElement(e, ctx);
    case ExprKind::kComputedElement:
    case ExprKind::kComputedAttribute:
    case ExprKind::kComputedText:
    case ExprKind::kComputedComment:
    case ExprKind::kComputedPI:
      return EvalComputedConstructor(e, ctx);
    case ExprKind::kEnclosed:
      return Eval(*e.kids[0], ctx);
    case ExprKind::kInsert:
      return EvalInsert(e, ctx);
    case ExprKind::kDelete:
      return EvalDelete(e, ctx);
    case ExprKind::kReplace:
      return EvalReplace(e, ctx);
    case ExprKind::kRename:
      return EvalRename(e, ctx);
    case ExprKind::kTransform:
      return EvalTransform(e, ctx);
    case ExprKind::kBlock:
      return EvalBlock(e, ctx);
    case ExprKind::kVarDecl: {
      Sequence init;
      if (!e.kids.empty()) {
        XQ_ASSIGN_OR_RETURN(init, Eval(*e.kids[0], ctx));
      }
      ctx.env().Bind(e.qname, std::move(init));
      return Sequence{};
    }
    case ExprKind::kAssign: {
      XQ_ASSIGN_OR_RETURN(Sequence value, Eval(*e.kids[0], ctx));
      XQ_RETURN_NOT_OK(ctx.env().Assign(e.qname, std::move(value)));
      return Sequence{};
    }
    case ExprKind::kWhile:
      return EvalWhile(e, ctx);
    case ExprKind::kExitWith: {
      XQ_ASSIGN_OR_RETURN(Sequence value, Eval(*e.kids[0], ctx));
      exit_value_ = std::move(value);
      exit_flag_ = true;
      return Sequence{};
    }
    case ExprKind::kEventAttach:
    case ExprKind::kEventDetach:
    case ExprKind::kEventTrigger:
    case ExprKind::kSetStyle:
    case ExprKind::kGetStyle:
      return EvalBrowserExtension(e, ctx);
  }
  return Status::NotImplemented("unhandled expression kind");
}

// -------------------------------------------------------------- paths ---

// Counter hooks: every bump mirrors into the profiler's fast-path block
// so per-event reports and plugin EventStats see the same numbers.
void Evaluator::CountPulled(DynamicContext& ctx, uint64_t n) {
  stats_.streams.items_pulled += n;
  if (ctx.profiler != nullptr) {
    ctx.profiler->fast_path().items_pulled += n;
  }
}

void Evaluator::CountMaterialized(DynamicContext& ctx, uint64_t n) {
  stats_.streams.items_materialized += n;
  if (ctx.profiler != nullptr) {
    ctx.profiler->fast_path().items_materialized += n;
  }
}

void Evaluator::CountBuffersAvoided(DynamicContext& ctx, uint64_t n) {
  stats_.streams.buffers_avoided += n;
  if (ctx.profiler != nullptr) {
    ctx.profiler->fast_path().buffers_avoided += n;
  }
}

void Evaluator::CountEarlyExit(DynamicContext& ctx) {
  ++stats_.early_exits;
  if (ctx.profiler != nullptr) ++ctx.profiler->fast_path().early_exits;
}

void Evaluator::CountArenaAlloc(DynamicContext& ctx, uint64_t bytes) {
  stats_.arena_bytes_used += bytes;
  if (ctx.profiler != nullptr) {
    ctx.profiler->fast_path().arena_bytes_used += bytes;
  }
}

void Evaluator::ResetDispatchArena(DynamicContext& ctx) {
  ctx.arena().Reset();
  ++stats_.arena_resets;
  stats_.intern_hits = xml::GetInternStats().hits;
  if (ctx.profiler != nullptr) {
    ++ctx.profiler->fast_path().arena_resets;
    ctx.profiler->fast_path().intern_hits = stats_.intern_hits;
  }
}

void Evaluator::AddStats(const EvalStats& delta) {
  stats_.sorts_performed += delta.sorts_performed;
  stats_.sorts_elided += delta.sorts_elided;
  stats_.name_index_hits += delta.name_index_hits;
  stats_.early_exits += delta.early_exits;
  stats_.count_index_hits += delta.count_index_hits;
  stats_.streams.items_pulled += delta.streams.items_pulled;
  stats_.streams.items_materialized += delta.streams.items_materialized;
  stats_.streams.buffers_avoided += delta.streams.buffers_avoided;
  stats_.arena_bytes_used += delta.arena_bytes_used;
  stats_.arena_resets += delta.arena_resets;
  stats_.parallel_predicate_chunks += delta.parallel_predicate_chunks;
  stats_.plan_compiles += delta.plan_compiles;
  stats_.plan_hits += delta.plan_hits;
  stats_.plan_misses += delta.plan_misses;
  stats_.plan_invalidations += delta.plan_invalidations;
  stats_.plan_bytes += delta.plan_bytes;
  stats_.delta.emitted += delta.delta.emitted;
  stats_.delta.index_splices += delta.delta.index_splices;
  stats_.delta.bucket_rebuilds_avoided += delta.delta.bucket_rebuilds_avoided;
  stats_.delta.listeners_skipped += delta.delta.listeners_skipped;
  stats_.http.cache_hits += delta.http.cache_hits;
  stats_.http.cache_misses += delta.http.cache_misses;
  stats_.http.prefetch_issued += delta.http.prefetch_issued;
  stats_.http.prefetch_hits += delta.http.prefetch_hits;
  stats_.http.scatter_batches += delta.http.scatter_batches;
  // intern_hits is a snapshot of the process-wide pool (see
  // ResetDispatchArena), not a cumulative counter: refresh it rather
  // than add the delta.
  stats_.intern_hits = xml::GetInternStats().hits;
}

void Evaluator::EnsurePlans() {
  uint64_t source_hash = sctx_.plan_source_hash();
  uint64_t fingerprint = sctx_.plan_fingerprint();
  // Warm path: the memoized plans are pinned for as long as the static
  // context keys hold, so a dispatch performs zero cache probes.
  if (plans_ != nullptr && plans_source_hash_ == source_hash &&
      plans_fingerprint_ == fingerprint) {
    return;
  }
  plan::PlanCache& cache = plan::PlanCache::Global();
  bool invalidated = false;
  std::shared_ptr<const plan::ModulePlans> plans =
      cache.Probe(source_hash, fingerprint, &invalidated);
  if (invalidated) {
    ++stats_.plan_invalidations;
  }
  if (plans == nullptr) {
    plans = plan::CompileModulePlans(sctx_, facts_.get());
    stats_.plan_compiles += plans->fns.size();
    stats_.plan_bytes += plans->total_bytes;
    // First insert wins: a racing evaluator that compiled the same key
    // adopts the winner's plans so both execute identical objects.
    plans = cache.Insert(source_hash, fingerprint, std::move(plans));
  }
  plans_ = std::move(plans);
  plans_source_hash_ = source_hash;
  plans_fingerprint_ = fingerprint;
}

Result<Sequence> Evaluator::PathInput(const Expr& e, DynamicContext& ctx) {
  if (!e.kids.empty()) return Eval(*e.kids[0], ctx);
  if (e.root_anchored) {
    if (!ctx.focus().has_item || !ctx.focus().item.is_node()) {
      return Status::Error("XPDY0002",
                           "no context node for a root-anchored path");
    }
    return Sequence{Item::Node(ctx.focus().item.node()->Root())};
  }
  if (!ctx.focus().has_item) {
    return Status::Error("XPDY0002", "no context item for a relative path");
  }
  return Sequence{ctx.focus().item};
}

Result<xdm::StreamPtr> Evaluator::BuildPathStream(const Expr& e,
                                                  DynamicContext& ctx,
                                                  bool ordered_required) {
  // The initial context sequence is small (usually the focus item or a
  // variable) — evaluate it eagerly, then stream the steps off it.
  XQ_ASSIGN_OR_RETURN(Sequence current, PathInput(e, ctx));
  if (e.steps.empty()) return xdm::SequenceStream(std::move(current), StreamArena(ctx));

  size_t start = 0;
  xdm::StreamPtr s;
  // First-step name-index shortcut: //name answers straight from the
  // document's element index — already in doc order, duplicate-free.
  // With a worker pool, //name[pred] also qualifies: the bucket is
  // partitioned across the pool and each slice filters with globally
  // correct position()/last() (ParallelStepStream path).
  if (options_.use_name_index && current.size() == 1 &&
      current[0].is_node()) {
    bool skip_origin = false;
    const std::vector<xml::Node*>* bucket =
        IndexedStepBucket(e.steps[0], current[0].node(), &skip_origin);
    size_t consumed = 1;
    const std::vector<ExprPtr>* preds =
        bucket != nullptr ? &e.steps[0].predicates : nullptr;
    // A collapsed descendant::name step has one origin, so predicate
    // positions over the bucket are the real XPath positions. The
    // uncollapsed `//name[preds]` form below does NOT: there the child
    // step re-positions per parent, so only position-free predicates may
    // run over the bucket (TryParallelPredicate abandons at runtime on a
    // numeric predicate value).
    bool global_positions = true;
    if (bucket == nullptr && e.steps.size() >= 2 &&
        e.steps[0].axis == Axis::kDescendantOrSelf &&
        e.steps[0].test.kind == NodeTest::Kind::kAnyKind &&
        e.steps[0].predicates.empty() && e.steps[1].axis == Axis::kChild) {
      // `//name[preds]`: descendant-or-self::node()/child::name equals
      // descendant::name, and the whole-tree descendant bucket is the
      // element-name index (already doc-ordered, duplicate-free).
      Step synth;
      synth.axis = Axis::kDescendant;
      synth.test = e.steps[1].test;
      bucket = IndexedStepBucket(synth, current[0].node(), &skip_origin);
      if (bucket != nullptr) {
        consumed = 2;
        preds = &e.steps[1].predicates;
        global_positions = false;
      }
    }
    if (bucket != nullptr) {
      xml::Node* origin = current[0].node();
      Sequence hits;
      hits.reserve(bucket->size());
      for (xml::Node* h : *bucket) {
        if (skip_origin && h == origin) continue;
        hits.push_back(Item::Node(h));
      }
      bool handled = preds->empty();
      if (!handled && options_.parallel_streams && pool_ != nullptr &&
          pool_->size() > 0 && hits.size() >= options_.parallel_cutoff) {
        bool safe = true;
        for (const ExprPtr& pred : *preds) {
          if (!ParallelSafePredicate(*pred)) {
            safe = false;
            break;
          }
        }
        if (safe) {
          Sequence work = std::move(hits);
          bool all = true;
          for (const ExprPtr& pred : *preds) {
            Result<Sequence> filtered = Sequence{};
            if (!TryParallelPredicate(*pred, work, ctx, global_positions,
                                      &filtered)) {
              all = false;
              break;
            }
            XQ_RETURN_NOT_OK(filtered.status());
            work = std::move(filtered).value();
          }
          if (all) {
            hits = std::move(work);
            handled = true;
          } else {
            // Rebuild: `hits` was consumed by the abandoned attempt.
            hits.clear();
            for (xml::Node* h : *bucket) {
              if (skip_origin && h == origin) continue;
              hits.push_back(Item::Node(h));
            }
          }
        }
      }
      if (handled) {
        ++stats_.name_index_hits;
        ++stats_.sorts_elided;
        if (ctx.profiler != nullptr) {
          ++ctx.profiler->fast_path().name_index_hits;
          ++ctx.profiler->fast_path().sorts_elided;
        }
        CountMaterialized(ctx, hits.size());
        s = xdm::SequenceStream(std::move(hits), StreamArena(ctx));
        start = consumed;
      }
    }
  }
  if (s == nullptr) s = xdm::SequenceStream(std::move(current), StreamArena(ctx));

  for (size_t si = start; si < e.steps.size(); ++si) {
    const Step& step = e.steps[si];
    const bool last_step = si + 1 == e.steps.size();
    const bool elide = options_.honor_sort_elision && step.preserves_order &&
                       step.no_duplicates;
    s = MakeOp<StepStream>(this, ctx, this, &ctx, &step, std::move(s));
    // Existence consumers only observe emptiness, so the final step may
    // skip its barrier even without an elision proof. Everything that
    // counts, aggregates or positions must see sorted, deduped output.
    if (elide || (last_step && !ordered_required)) {
      ++stats_.sorts_elided;
      if (ctx.profiler != nullptr) ++ctx.profiler->fast_path().sorts_elided;
      if (!elide) CountBuffersAvoided(ctx);
    } else {
      ++stats_.sorts_performed;
      if (ctx.profiler != nullptr) {
        ++ctx.profiler->fast_path().sorts_performed;
      }
      s = MakeOp<SortBarrierStream>(this, ctx, this, &ctx, std::move(s));
    }
  }
  return s;
}

// Eager per-step loop: the stream_pipeline=false ablation baseline.
Result<Sequence> Evaluator::EvalPathEager(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence current, PathInput(e, ctx));
  if (e.steps.empty()) return current;

  for (size_t si = 0; si < e.steps.size(); ++si) {
    const Step& step = e.steps[si];
    const bool elide = options_.honor_sort_elision && step.preserves_order &&
                       step.no_duplicates;
    Sequence next;
    bool indexed = false;

    if (options_.use_name_index && TryIndexedStep(step, current, &next)) {
      indexed = true;
      ++stats_.name_index_hits;
      if (ctx.profiler != nullptr) {
        ++ctx.profiler->fast_path().name_index_hits;
      }
      if (!step.predicates.empty()) {
        XQ_ASSIGN_OR_RETURN(
            next, ApplyPredicates(step.predicates, std::move(next), ctx));
      }
    } else {
      for (const Item& item : current) {
        if (!item.is_node()) {
          return Status::Error("XPTY0019",
                               "path step applied to an atomic value");
        }
        XQ_ASSIGN_OR_RETURN(Sequence part, EvalStep(step, item.node(), ctx));
        next.insert(next.end(), part.begin(), part.end());
      }
    }

    if (indexed || elide) {
      ++stats_.sorts_elided;
      if (ctx.profiler != nullptr) ++ctx.profiler->fast_path().sorts_elided;
    } else {
      ++stats_.sorts_performed;
      if (ctx.profiler != nullptr) {
        ++ctx.profiler->fast_path().sorts_performed;
      }
      XQ_RETURN_NOT_OK(xdm::SortDocumentOrderDedup(&next));
    }
    CountMaterialized(ctx, next.size());
    current = std::move(next);
  }
  return current;
}

const std::vector<xml::Node*>* Evaluator::IndexedStepBucket(
    const Step& step, xml::Node* origin, bool* skip_origin) {
  *skip_origin = false;
  if (step.axis != Axis::kDescendant &&
      step.axis != Axis::kDescendantOrSelf) {
    return nullptr;
  }
  // Exact element-name tests only (wildcards would need the full walk).
  const NodeTest& t = step.test;
  bool exact_name = (t.kind == NodeTest::Kind::kName ||
                     t.kind == NodeTest::Kind::kElement) &&
                    !t.any_name && !t.any_ns && !t.any_local &&
                    !t.name.local().empty();
  if (!exact_name) return nullptr;
  xml::Document* doc = origin->document();
  // Whole-tree steps only: from the document node, or from the document
  // element when it is the root's only element child (then its
  // descendants are every other attached element).
  bool from_doc = origin == doc->root();
  bool from_doc_elem = false;
  if (!from_doc && origin->is_element() && origin->parent() == doc->root()) {
    from_doc_elem = true;
    for (const xml::Node* c : doc->root()->children()) {
      if (c->is_element() && c != origin) {
        from_doc_elem = false;
        break;
      }
    }
  }
  if (!from_doc && !from_doc_elem) return nullptr;
  // descendant:: excludes the context node itself; descendant-or-self
  // keeps it (the document node is never in the element index).
  *skip_origin = step.axis == Axis::kDescendant;
  return &doc->ElementsByName(t.name);
}

bool Evaluator::TryIndexedStep(const Step& step, const Sequence& current,
                               Sequence* out) {
  if (current.size() != 1 || !current[0].is_node()) return false;
  xml::Node* origin = current[0].node();
  bool skip_origin = false;
  const std::vector<xml::Node*>* bucket =
      IndexedStepBucket(step, origin, &skip_origin);
  if (bucket == nullptr) return false;
  out->clear();
  out->reserve(bucket->size());
  for (xml::Node* h : *bucket) {
    if (skip_origin && h == origin) continue;
    out->push_back(Item::Node(h));
  }
  return true;
}

// fn:count(//name): the index bucket's size answers the count without
// instantiating a single item (minus the origin when the descendant
// axis would exclude it).
bool Evaluator::TryFastCount(const Expr& arg, DynamicContext& ctx,
                             int64_t* out) {
  if (arg.kind != ExprKind::kPath || !arg.kids.empty()) return false;
  if (arg.steps.size() != 1 || !arg.steps[0].predicates.empty()) return false;
  if (!ctx.focus().has_item || !ctx.focus().item.is_node()) return false;
  xml::Node* origin = arg.root_anchored ? ctx.focus().item.node()->Root()
                                        : ctx.focus().item.node();
  bool skip_origin = false;
  const std::vector<xml::Node*>* bucket =
      IndexedStepBucket(arg.steps[0], origin, &skip_origin);
  if (bucket == nullptr) return false;
  int64_t n = static_cast<int64_t>(bucket->size());
  if (skip_origin) {
    for (xml::Node* h : *bucket) {
      if (h == origin) {
        --n;
        break;
      }
    }
  }
  *out = n;
  ++stats_.count_index_hits;
  ++stats_.name_index_hits;
  if (ctx.profiler != nullptr) {
    ++ctx.profiler->fast_path().count_index_hits;
    ++ctx.profiler->fast_path().name_index_hits;
  }
  CountBuffersAvoided(ctx);
  return true;
}

// ------------------------------------------------------------ streams ---

Result<xdm::StreamPtr> Evaluator::EvalStream(const Expr& e,
                                             DynamicContext& ctx) {
  return EvalStreamOrdered(e, ctx, /*ordered_required=*/true);
}

Result<xdm::StreamPtr> Evaluator::EvalStreamOrdered(const Expr& e,
                                                    DynamicContext& ctx,
                                                    bool ordered_required) {
  if (!options_.stream_pipeline || exit_flag_) {
    XQ_ASSIGN_OR_RETURN(Sequence v, Eval(e, ctx));
    return xdm::SequenceStream(std::move(v), StreamArena(ctx));
  }
  switch (e.kind) {
    case ExprKind::kPath:
      return BuildPathStream(e, ctx, ordered_required);
    case ExprKind::kFilter:
      return BuildFilterStream(e, ctx);
    case ExprKind::kFLWOR:
      if (e.order_specs.empty()) {
        MaybeScatterFlwor(e, ctx);
        const Expr* where = e.where == nullptr ? nullptr : e.where.get();
        return MakeOp<FlworStream>(this, ctx, this, &ctx, &e, where,
                                   e.kids[0].get(),
                                   /*negate_where=*/false);
      }
      break;
    case ExprKind::kSequence:
      return MakeOp<ConcatStream>(this, ctx, this, &ctx, &e, ordered_required);
    case ExprKind::kRange: {
      XQ_ASSIGN_OR_RETURN(Sequence lo_seq, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence hi_seq, Eval(*e.kids[1], ctx));
      if (lo_seq.empty() || hi_seq.empty()) return xdm::EmptyStream(StreamArena(ctx));
      XQ_ASSIGN_OR_RETURN(AtomicValue lo_a,
                          RequireSingleAtomic(lo_seq, "range"));
      XQ_ASSIGN_OR_RETURN(AtomicValue hi_a,
                          RequireSingleAtomic(hi_seq, "range"));
      XQ_ASSIGN_OR_RETURN(int64_t lo, lo_a.ToInteger());
      XQ_ASSIGN_OR_RETURN(int64_t hi, hi_a.ToInteger());
      CountBuffersAvoided(ctx);
      return xdm::RangeStream(lo, hi, StreamArena(ctx));
    }
    case ExprKind::kIf: {
      XQ_ASSIGN_OR_RETURN(bool b, EvalBool(*e.kids[0], ctx));
      return EvalStreamOrdered(b ? *e.kids[1] : *e.kids[2], ctx,
                               ordered_required);
    }
    case ExprKind::kEnclosed:
      return EvalStreamOrdered(*e.kids[0], ctx, ordered_required);
    case ExprKind::kLiteral:
      return xdm::SingletonStream(Item::Atomic(e.atom), StreamArena(ctx));
    case ExprKind::kContextItem: {
      if (!ctx.focus().has_item) {
        return Status::Error("XPDY0002", "context item is undefined");
      }
      return xdm::SingletonStream(ctx.focus().item, StreamArena(ctx));
    }
    case ExprKind::kVarRef: {
      XQ_ASSIGN_OR_RETURN(Sequence v, ctx.env().Lookup(e.qname));
      return xdm::SequenceStream(std::move(v), StreamArena(ctx));
    }
    default:
      break;
  }
  // Everything else evaluates eagerly and streams the buffer.
  XQ_ASSIGN_OR_RETURN(Sequence v, Eval(e, ctx));
  return xdm::SequenceStream(std::move(v), StreamArena(ctx));
}

Result<Sequence> Evaluator::MaterializeFrom(xdm::StreamPtr s,
                                            DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence out, xdm::MaterializeStream(*s, nullptr));
  CountMaterialized(ctx, out.size());
  return out;
}

Result<bool> Evaluator::StreamEBV(xdm::ItemStream& s, DynamicContext& ctx) {
  Item first;
  XQ_ASSIGN_OR_RETURN(bool any, s.Next(&first));
  if (!any) return false;
  if (first.is_node()) {
    // A node witness decides regardless of what follows (§2.4.3).
    CountEarlyExit(ctx);
    return true;
  }
  // Singleton atomic: the EBV of the item itself. A second item would
  // make the sequence erroneous (FORG0006) — pull once more to tell.
  Item second;
  XQ_ASSIGN_OR_RETURN(bool more, s.Next(&second));
  if (more) {
    Sequence two{std::move(first), std::move(second)};
    return xdm::EffectiveBooleanValue(two);
  }
  Sequence one{std::move(first)};
  return xdm::EffectiveBooleanValue(one);
}

Result<xdm::StreamPtr> Evaluator::BuildFilterStream(const Expr& e,
                                                    DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(
      xdm::StreamPtr s,
      EvalStreamOrdered(*e.kids[0], ctx, /*ordered_required=*/true));
  for (const ExprPtr& pred_ptr : e.predicates) {
    const Expr& pred = *pred_ptr;
    // E[N]: a literal integer predicate over a (sorted) stream needs N
    // pulls, not the full sequence.
    if (options_.bounded_eval && pred.kind == ExprKind::kLiteral &&
        pred.atom.type() == AtomicType::kInteger) {
      s = MakeOp<TakeNthStream>(this, ctx, this, &ctx, pred.atom.int_value(),
                                std::move(s));
      continue;
    }
    // E[last()]: drain with a one-item buffer.
    bool is_last = pred.kind == ExprKind::kFunctionCall &&
                   pred.kids.empty() && pred.qname.ns() == xml::kFnNamespace &&
                   pred.qname.local() == "last" &&
                   sctx_.FindFunction(pred.qname, 0) == nullptr &&
                   ctx.FindExternal(pred.qname, 0) == nullptr;
    if (options_.bounded_eval && is_last) {
      s = MakeOp<TakeLastStream>(this, ctx, this, &ctx, std::move(s));
      continue;
    }
    if (NeedsLast(pred)) {
      // The predicate may observe fn:last(): materialize so the focus
      // carries the true size.
      XQ_ASSIGN_OR_RETURN(Sequence buf, MaterializeFrom(std::move(s), ctx));
      XQ_ASSIGN_OR_RETURN(buf, ApplyOnePredicate(pred, std::move(buf), ctx));
      s = xdm::SequenceStream(std::move(buf), StreamArena(ctx));
      continue;
    }
    s = MakeOp<PredicateStream>(this, ctx, this, &ctx, &pred, std::move(s));
  }
  return s;
}

// Could evaluating `e` observe fn:last()? Conservative: any last() call,
// any call that could reach user/external code (which inherits the focus
// in the XQIB dialect), and opaque subtrees answer yes.
bool Evaluator::NeedsLast(const Expr& e) {
  auto it = needs_last_cache_.find(&e);
  if (it != needs_last_cache_.end()) return it->second;
  bool needs = false;
  if (e.kind == ExprKind::kFunctionCall) {
    if (e.qname.ns() == xml::kFnNamespace && e.qname.local() == "last") {
      needs = true;
    } else if (e.qname.ns() != xml::kFnNamespace &&
               e.qname.ns() != xml::kXsNamespace) {
      needs = true;  // user or external function: inherits the focus
    } else if (sctx_.FindFunction(e.qname, e.kids.size()) != nullptr) {
      needs = true;  // fn:/xs: name shadowed by a user declaration
    }
  } else if (e.kind == ExprKind::kDirectElement ||
             e.kind == ExprKind::kFtContains) {
    needs = true;  // opaque subtrees (direct constructors hide exprs)
  }
  if (!needs) {
    for (const ExprPtr& kid : e.kids) {
      if (kid != nullptr && NeedsLast(*kid)) {
        needs = true;
        break;
      }
    }
  }
  if (!needs) {
    for (const ExprPtr& p : e.predicates) {
      if (p != nullptr && NeedsLast(*p)) {
        needs = true;
        break;
      }
    }
  }
  if (!needs && e.where != nullptr && NeedsLast(*e.where)) needs = true;
  if (!needs) {
    for (const Clause& c : e.clauses) {
      if (c.expr != nullptr && NeedsLast(*c.expr)) {
        needs = true;
        break;
      }
    }
  }
  if (!needs) {
    for (const Step& st : e.steps) {
      for (const ExprPtr& p : st.predicates) {
        if (p != nullptr && NeedsLast(*p)) {
          needs = true;
          break;
        }
      }
      if (needs) break;
    }
  }
  if (!needs) {
    for (const OrderSpec& os : e.order_specs) {
      if (os.key != nullptr && NeedsLast(*os.key)) {
        needs = true;
        break;
      }
    }
  }
  needs_last_cache_[&e] = needs;
  return needs;
}

Result<Sequence> Evaluator::EvalStep(const Step& step, xml::Node* node,
                                     DynamicContext& ctx) {
  std::vector<xml::Node*> axis_nodes;
  AxisNodes(step.axis, node, &axis_nodes);
  Sequence result;
  result.reserve(axis_nodes.size());
  for (xml::Node* n : axis_nodes) {
    if (MatchesNodeTest(step.test, n, step.axis)) {
      result.push_back(Item::Node(n));
    }
  }
  if (step.predicates.empty()) return result;
  // Predicates see axis order, which AxisNodes already provides: reverse
  // axes are emitted nearest-first, so position 1 is the nearest node.
  return ApplyPredicates(step.predicates, std::move(result), ctx);
}

Result<bool> Evaluator::EvalBool(const Expr& e, DynamicContext& ctx) {
  // Lazy kinds stream to their first EBV witness: a path yields only
  // nodes, so one pull decides (XQuery §2.3.4 allows skipping the rest
  // of the evaluation); atomic producers need at most two pulls.
  if (options_.stream_pipeline && options_.bounded_eval) {
    switch (e.kind) {
      case ExprKind::kPath:
      case ExprKind::kFilter:
      case ExprKind::kFLWOR:
      case ExprKind::kSequence:
      case ExprKind::kRange: {
        XQ_ASSIGN_OR_RETURN(
            xdm::StreamPtr s,
            EvalStreamOrdered(e, ctx, /*ordered_required=*/false));
        return StreamEBV(*s, ctx);
      }
      default:
        break;
    }
  }
  XQ_ASSIGN_OR_RETURN(Sequence v, Eval(e, ctx));
  return xdm::EffectiveBooleanValue(v);
}

Result<Sequence> Evaluator::ApplyPredicates(
    const std::vector<ExprPtr>& predicates, Sequence input,
    DynamicContext& ctx) {
  for (const ExprPtr& pred : predicates) {
    XQ_ASSIGN_OR_RETURN(input,
                        ApplyOnePredicate(*pred, std::move(input), ctx));
  }
  return input;
}

Result<Sequence> Evaluator::ApplyOnePredicate(const Expr& pred,
                                              Sequence input,
                                              DynamicContext& ctx) {
  Sequence output;
  int64_t size = static_cast<int64_t>(input.size());
  DynamicContext::Focus saved = ctx.focus();
  for (int64_t i = 0; i < size; ++i) {
    DynamicContext::Focus f;
    f.item = input[static_cast<size_t>(i)];
    f.position = i + 1;
    f.size = size;
    f.has_item = true;
    ctx.set_focus(f);
    // A path predicate is an existence test (its value can only be
    // nodes, so the numeric-predicate branch below cannot apply): one
    // witness suffices.
    bool keep = false;
    if (pred.kind == ExprKind::kPath) {
      Result<bool> b = EvalBool(pred, ctx);
      if (!b.ok()) {
        ctx.set_focus(saved);
        return b.status();
      }
      keep = *b;
    } else {
      Result<Sequence> value = Eval(pred, ctx);
      if (!value.ok()) {
        ctx.set_focus(saved);
        return value.status();
      }
      // Numeric predicate: positional selection.
      const Sequence& v = *value;
      if (v.size() == 1 && !v[0].is_node() && v[0].atomic().is_numeric()) {
        Result<double> d = v[0].atomic().ToDouble();
        if (!d.ok()) {
          ctx.set_focus(saved);
          return d.status();
        }
        keep = (*d == static_cast<double>(i + 1));
      } else {
        Result<bool> b = xdm::EffectiveBooleanValue(v);
        if (!b.ok()) {
          ctx.set_focus(saved);
          return b.status();
        }
        keep = *b;
      }
    }
    if (keep) output.push_back(input[static_cast<size_t>(i)]);
  }
  ctx.set_focus(saved);
  return output;
}

// ------------------------------------------------- parallel predicates ---

bool Evaluator::ParallelSafePredicate(const Expr& e) {
  auto cached = parallel_safe_cache_.find(&e);
  if (cached != parallel_safe_cache_.end()) return cached->second;

  bool safe = true;
  switch (e.kind) {
    // Anything that mutates, constructs persistent state, or leaves the
    // analyzable world keeps the predicate on the caller's thread. Node
    // constructors are excluded too: they are harmless per-chunk (each
    // chunk owns its context), but predicates building elements are rare
    // enough that proving their allocation discipline isn't worth it.
    case ExprKind::kInsert:
    case ExprKind::kDelete:
    case ExprKind::kReplace:
    case ExprKind::kRename:
    case ExprKind::kTransform:
    case ExprKind::kBlock:
    case ExprKind::kVarDecl:
    case ExprKind::kAssign:
    case ExprKind::kWhile:
    case ExprKind::kExitWith:
    case ExprKind::kEventAttach:
    case ExprKind::kEventDetach:
    case ExprKind::kEventTrigger:
    case ExprKind::kSetStyle:
    case ExprKind::kGetStyle:
    case ExprKind::kDirectElement:
    case ExprKind::kComputedElement:
    case ExprKind::kComputedAttribute:
    case ExprKind::kComputedText:
    case ExprKind::kComputedComment:
    case ExprKind::kComputedPI:
    case ExprKind::kFtContains:
      safe = false;
      break;
    case ExprKind::kFunctionCall: {
      const std::string& ns = e.qname.ns();
      if (ns == xml::kFnNamespace) {
        // Builtins minus the document-touching / host-observing /
        // time-dependent ones. fn:position/fn:last are also out: the
        // partitioned scan renumbers the focus with bucket-global
        // positions, which only coincide with the per-parent positions
        // the spec demands for the collapsed single-origin form.
        const std::string& local = e.qname.local();
        if (local == "doc" || local == "doc-available" || local == "put" ||
            local == "trace" || local == "current-dateTime" ||
            local == "current-date" || local == "current-time" ||
            local == "position" || local == "last") {
          safe = false;
        }
      } else if (ns != xml::kXsNamespace) {
        // Declared functions (purity unknown here), browser: dialogs,
        // REST/service stubs, any other external code.
        safe = false;
      }
      break;
    }
    default:
      break;
  }
  if (safe) {
    for (const ExprPtr& kid : e.kids) {
      if (kid != nullptr && !ParallelSafePredicate(*kid)) safe = false;
    }
    for (const Step& step : e.steps) {
      for (const ExprPtr& pred : step.predicates) {
        if (!ParallelSafePredicate(*pred)) safe = false;
      }
    }
    for (const ExprPtr& pred : e.predicates) {
      if (!ParallelSafePredicate(*pred)) safe = false;
    }
    for (const Clause& clause : e.clauses) {
      if (clause.expr != nullptr && !ParallelSafePredicate(*clause.expr)) {
        safe = false;
      }
    }
    if (e.where != nullptr && !ParallelSafePredicate(*e.where)) safe = false;
    for (const OrderSpec& spec : e.order_specs) {
      if (!ParallelSafePredicate(*spec.key)) safe = false;
    }
  }
  parallel_safe_cache_[&e] = safe;
  return safe;
}

bool Evaluator::TryParallelPredicate(const Expr& pred, const Sequence& input,
                                     DynamicContext& ctx,
                                     bool global_positions,
                                     Result<Sequence>* out) {
  if (!options_.parallel_streams || pool_ == nullptr || pool_->size() == 0) {
    return false;
  }
  if (!ParallelSafePredicate(pred)) return false;

  const size_t n = input.size();
  const int64_t size64 = static_cast<int64_t>(n);

  // Evaluates `pred` for input[i] on (eval, cctx). keep/abandon out-params;
  // abandon fires when a numeric predicate value appears without
  // global-position semantics (the uncollapsed //name form, where the
  // real positions are per-parent and this whole fast path is invalid).
  auto eval_one = [&](Evaluator& eval, DynamicContext& cctx, size_t i,
                      bool* keep, bool* abandon) -> Status {
    DynamicContext::Focus f;
    f.item = input[i];
    f.position = static_cast<int64_t>(i) + 1;
    f.size = size64;
    f.has_item = true;
    cctx.set_focus(f);
    *keep = false;
    if (pred.kind == ExprKind::kPath) {
      // Existence test: one witness suffices (mirrors ApplyOnePredicate).
      XQ_ASSIGN_OR_RETURN(*keep, eval.EvalBool(pred, cctx));
      return Status();
    }
    XQ_ASSIGN_OR_RETURN(Sequence v, eval.Eval(pred, cctx));
    if (v.size() == 1 && !v[0].is_node() && v[0].atomic().is_numeric()) {
      if (!global_positions) {
        *abandon = true;
        return Status();
      }
      XQ_ASSIGN_OR_RETURN(double d, v[0].atomic().ToDouble());
      *keep = (d == static_cast<double>(i + 1));
      return Status();
    }
    XQ_ASSIGN_OR_RETURN(*keep, xdm::EffectiveBooleanValue(v));
    return Status();
  };

  // Chained predicates shrink the input; below the cutoff the fork/join
  // overhead dominates, so finish serially (same semantics either way).
  if (n < options_.parallel_cutoff) {
    if (global_positions) {
      *out = ApplyOnePredicate(pred, input, ctx);
      return true;
    }
    DynamicContext::Focus saved = ctx.focus();
    Sequence result;
    bool abandon = false;
    Status st;
    for (size_t i = 0; i < n && st.ok() && !abandon; ++i) {
      bool keep = false;
      st = eval_one(*this, ctx, i, &keep, &abandon);
      if (st.ok() && keep) result.push_back(input[i]);
    }
    ctx.set_focus(saved);
    if (abandon) return false;
    if (!st.ok()) {
      *out = st;
      return true;
    }
    *out = std::move(result);
    return true;
  }

  const size_t nchunks = std::min(n, (pool_->size() + 1) * 2);
  const size_t chunk = (n + nchunks - 1) / nchunks;
  struct ChunkResult {
    std::vector<char> keep;
    Status error;
    bool failed = false;
    bool abandoned = false;
    EvalStats stats;
  };
  std::vector<ChunkResult> chunks(nchunks);

  pool_->ParallelFor(nchunks, [&](size_t c) {
    const size_t lo = c * chunk;
    const size_t hi = std::min(n, lo + chunk);
    ChunkResult& res = chunks[c];
    res.keep.assign(hi - lo, 0);
    // Private evaluator + context per chunk: copied environment, own
    // arena/scratch space, no pool (no nested parallelism), no
    // profiler. The shared document is read-only for the whole scan —
    // lazy index/order rebuilds synchronize internally (xml::Document).
    Evaluator eval(sctx_);
    EvalOptions opts = options_;
    opts.parallel_streams = false;
    eval.set_options(opts);
    DynamicContext cctx;
    cctx.env() = ctx.env();
    cctx.browser_profile = ctx.browser_profile;
    cctx.clock = ctx.clock;
    for (size_t i = lo; i < hi; ++i) {
      bool keep = false;
      bool abandon = false;
      Status st = eval_one(eval, cctx, i, &keep, &abandon);
      if (abandon) {
        res.abandoned = true;
        break;
      }
      if (!st.ok()) {
        res.error = std::move(st);
        res.failed = true;
        break;
      }
      if (keep) res.keep[i - lo] = 1;
    }
    res.stats = eval.stats();
  });

  // A positional abandon anywhere invalidates the whole attempt: the
  // caller re-runs the sequential stream, which also restores the
  // first-error-in-document-order guarantee for that case.
  for (const ChunkResult& res : chunks) {
    if (res.abandoned) return false;
  }

  // Merge on the caller's thread. Chunks are contiguous slices, so the
  // first failed chunk holds the first error in input order (the
  // predicate is pure: evaluating past a would-be-serial error point is
  // unobservable). Kept nodes concatenate back in document order.
  for (const ChunkResult& res : chunks) AddStats(res.stats);
  stats_.parallel_predicate_chunks += nchunks;
  for (const ChunkResult& res : chunks) {
    if (res.failed) {
      *out = res.error;
      return true;
    }
  }
  Sequence result;
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t lo = c * chunk;
    for (size_t k = 0; k < chunks[c].keep.size(); ++k) {
      if (chunks[c].keep[k]) result.push_back(input[lo + k]);
    }
  }
  *out = std::move(result);
  return true;
}

// -------------------------------------------------------------- FLWOR ---

void Evaluator::MaybeScatterFlwor(const Expr& e, DynamicContext& ctx) {
  if (!options_.async_federation || ctx.prefetcher == nullptr) return;
  auto it = scatter_plan_cache_.find(&e);
  if (it == scatter_plan_cache_.end()) {
    auto plan = std::make_shared<federation::FlworScatterPlan>(
        federation::AnalyzeFlworScatter(e, sctx_));
    // The scatter pre-evaluates the binding (the tuple loop evaluates it
    // again), so it must be provably free of effects and focus tricks.
    if (plan->applicable && !ParallelSafePredicate(*plan->binding)) {
      plan->applicable = false;
    }
    it = scatter_plan_cache_.emplace(&e, std::move(plan)).first;
  }
  const federation::FlworScatterPlan& plan = *it->second;
  if (!plan.applicable) return;
  Result<Sequence> binding = Eval(*plan.binding, ctx);
  // Errors (and oversized batches) just skip the scatter; the real
  // evaluation reports them with identical semantics.
  constexpr size_t kMaxScatter = 256;
  if (!binding.ok() || binding->empty() || binding->size() > kMaxScatter) {
    return;
  }
  for (const Item& item : *binding) {
    std::string value = item.StringValue();
    for (const federation::UrlTemplate& t : plan.templates) {
      ctx.prefetcher->Prefetch(federation::InstantiateUrl(t, value));
    }
  }
  ++stats_.http.scatter_batches;
}

Result<Sequence> Evaluator::EvalFLWOR(const Expr& e, DynamicContext& ctx) {
  struct Tuple {
    std::vector<AtomicValue> keys;
    std::vector<bool> key_empty;
    Sequence value;
  };
  std::vector<Tuple> tuples;
  Status error;

  ctx.env().PushScope();

  // Recursive expansion of for/let clauses.
  std::function<Status(size_t)> expand = [&](size_t ci) -> Status {
    if (exit_flag_) return Status();
    if (ci == e.clauses.size()) {
      if (e.where != nullptr) {
        XQ_ASSIGN_OR_RETURN(bool keep, EvalBool(*e.where, ctx));
        if (!keep) return Status();
      }
      Tuple t;
      for (const OrderSpec& spec : e.order_specs) {
        XQ_ASSIGN_OR_RETURN(Sequence key_seq, Eval(*spec.key, ctx));
        if (key_seq.empty()) {
          t.keys.push_back(AtomicValue());
          t.key_empty.push_back(true);
        } else {
          XQ_ASSIGN_OR_RETURN(AtomicValue key,
                              RequireSingleAtomic(key_seq, "order by key"));
          t.keys.push_back(std::move(key));
          t.key_empty.push_back(false);
        }
      }
      XQ_ASSIGN_OR_RETURN(t.value, Eval(*e.kids[0], ctx));
      tuples.push_back(std::move(t));
      return Status();
    }
    const Clause& clause = e.clauses[ci];
    XQ_ASSIGN_OR_RETURN(Sequence binding_seq, Eval(*clause.expr, ctx));
    if (clause.kind == Clause::Kind::kLet) {
      ctx.env().Bind(clause.var, std::move(binding_seq));
      return expand(ci + 1);
    }
    for (size_t i = 0; i < binding_seq.size(); ++i) {
      ctx.env().Bind(clause.var, Sequence{binding_seq[i]});
      if (!clause.pos_var.local().empty()) {
        ctx.env().Bind(clause.pos_var,
                       Sequence{Item::Integer(static_cast<int64_t>(i + 1))});
      }
      XQ_RETURN_NOT_OK(expand(ci + 1));
      if (exit_flag_) break;
    }
    return Status();
  };
  Status st = expand(0);
  ctx.env().PopScope();
  XQ_RETURN_NOT_OK(st);

  if (!e.order_specs.empty()) {
    bool cmp_error = false;
    Status cmp_status;
    std::stable_sort(
        tuples.begin(), tuples.end(), [&](const Tuple& a, const Tuple& b) {
          if (cmp_error) return false;
          for (size_t k = 0; k < e.order_specs.size(); ++k) {
            const OrderSpec& spec = e.order_specs[k];
            if (a.key_empty[k] || b.key_empty[k]) {
              if (a.key_empty[k] == b.key_empty[k]) continue;
              bool a_first = a.key_empty[k] != spec.empty_greatest;
              return spec.descending ? !a_first : a_first;
            }
            Result<int> cmp = a.keys[k].Compare(b.keys[k]);
            if (!cmp.ok()) {
              cmp_error = true;
              cmp_status = cmp.status();
              return false;
            }
            if (*cmp == 2) continue;  // unordered (NaN)
            if (*cmp != 0) return spec.descending ? *cmp > 0 : *cmp < 0;
          }
          return false;
        });
    if (cmp_error) return cmp_status;
  }

  Sequence out;
  for (Tuple& t : tuples) {
    out.insert(out.end(), t.value.begin(), t.value.end());
  }
  return out;
}

Result<Sequence> Evaluator::EvalQuantified(const Expr& e,
                                           DynamicContext& ctx) {
  bool every = e.quant_every;
  if (options_.stream_pipeline) {
    // Quantifiers are FLWOR tuple streams: `some` pulls until a tuple
    // passes the test, `every` until one fails it (negate_where). One
    // pull decides either way — the clause streams never run to
    // exhaustion past the witness.
    FlworStream tuples(this, &ctx, &e, /*where=*/e.kids[0].get(),
                       /*ret=*/nullptr, /*negate_where=*/every);
    Item marker;
    XQ_ASSIGN_OR_RETURN(bool witness, tuples.Next(&marker));
    if (witness) CountEarlyExit(ctx);
    return Sequence{Item::Boolean(every ? !witness : witness)};
  }
  bool result = every;
  Status error;
  ctx.env().PushScope();
  std::function<Status(size_t)> expand = [&](size_t ci) -> Status {
    if (ci == e.clauses.size()) {
      XQ_ASSIGN_OR_RETURN(bool b, EvalBool(*e.kids[0], ctx));
      if (every && !b) result = false;
      if (!every && b) result = true;
      return Status();
    }
    XQ_ASSIGN_OR_RETURN(Sequence seq, Eval(*e.clauses[ci].expr, ctx));
    for (const Item& item : seq) {
      ctx.env().Bind(e.clauses[ci].var, Sequence{item});
      XQ_RETURN_NOT_OK(expand(ci + 1));
      if (result != every) return Status();  // early exit
    }
    return Status();
  };
  Status st = expand(0);
  ctx.env().PopScope();
  XQ_RETURN_NOT_OK(st);
  return Sequence{Item::Boolean(result)};
}

// -------------------------------------------------- comparisons, arith ---

Result<Sequence> Evaluator::EvalComparison(const Expr& e,
                                           DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.kids[1], ctx));
  return valueops::CompareSequences(e.comp_op, lhs, rhs);
}

Result<Sequence> Evaluator::EvalArith(const Expr& e, DynamicContext& ctx) {
  if (e.kind == ExprKind::kUnary) {
    XQ_ASSIGN_OR_RETURN(Sequence v, Eval(*e.kids[0], ctx));
    return valueops::ArithUnary(e.arith_op, v);
  }
  XQ_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.kids[1], ctx));
  return valueops::ArithSequences(e.arith_op, lhs, rhs);
}

Result<Sequence> Evaluator::EvalSetOp(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.kids[1], ctx));
  if (!xdm::AllNodes(lhs) || !xdm::AllNodes(rhs)) {
    return Status::TypeError("set operations require node sequences");
  }
  Sequence out;
  if (e.str == "union") {
    out = std::move(lhs);
    out.insert(out.end(), rhs.begin(), rhs.end());
  } else {
    std::unordered_map<const xml::Node*, bool> in_rhs;
    for (const Item& i : rhs) in_rhs[i.node()] = true;
    bool keep_if_present = e.str == "intersect";
    for (const Item& i : lhs) {
      if (in_rhs.count(i.node()) == static_cast<size_t>(keep_if_present)) {
        out.push_back(i);
      }
    }
  }
  XQ_RETURN_NOT_OK(xdm::SortDocumentOrderDedup(&out));
  return out;
}

// ----------------------------------------------------------- functions ---

Result<Sequence> Evaluator::EvalFunctionCall(const Expr& e,
                                             DynamicContext& ctx) {
  // Sequence-valued fn: builtins consume their first argument as a
  // stream: existence tests stop at one witness, aggregates fold item
  // by item without buffering. Guarded against user-declared or
  // host-external functions shadowing the fn: names.
  const bool builtin_unshadowed =
      e.qname.ns() == xml::kFnNamespace && !e.kids.empty() &&
      sctx_.FindFunction(e.qname, e.kids.size()) == nullptr &&
      ctx.FindExternal(e.qname, e.kids.size()) == nullptr;
  if (builtin_unshadowed && options_.use_name_index &&
      e.qname.local() == "count" && e.kids.size() == 1) {
    int64_t n = 0;
    if (TryFastCount(*e.kids[0], ctx, &n)) {
      return Sequence{Item::Integer(n)};
    }
  }
  if (builtin_unshadowed) {
    StreamFnClass cls = ClassifyStreamBuiltin(e.qname, e.kids.size());
    if (options_.stream_pipeline && cls != StreamFnClass::kNone) {
      // Skipping the final sort barrier for existence tests is part of
      // the bounded-evaluation ablation axis, so it stays tied to it.
      const bool ordered = StreamBuiltinNeedsOrderedArg(e.qname.local()) ||
                           !options_.bounded_eval;
      XQ_ASSIGN_OR_RETURN(xdm::StreamPtr arg0,
                          EvalStreamOrdered(*e.kids[0], ctx, ordered));
      std::vector<Sequence> rest;
      rest.reserve(e.kids.size() - 1);
      for (size_t i = 1; i < e.kids.size(); ++i) {
        XQ_ASSIGN_OR_RETURN(Sequence arg, Eval(*e.kids[i], ctx));
        rest.push_back(std::move(arg));
      }
      return CallStreamBuiltin(e.qname, *arg0, rest, *this, ctx);
    }
  }
  std::vector<Sequence> args;
  args.reserve(e.kids.size());
  for (const ExprPtr& kid : e.kids) {
    XQ_ASSIGN_OR_RETURN(Sequence arg, Eval(*kid, ctx));
    args.push_back(std::move(arg));
  }
  return CallFunction(e.qname, std::move(args), ctx);
}

Result<Sequence> Evaluator::CallFunction(const xml::QName& name,
                                         std::vector<Sequence> args,
                                         DynamicContext& ctx) {
  // 1. user-declared functions
  if (const FunctionDecl* fn = sctx_.FindFunction(name, args.size())) {
    if (fn->external) {
      const ExternalFunction* ext = ctx.FindExternal(name, args.size());
      if (ext == nullptr) {
        return Status::Error("XPDY0002",
                             "external function " + name.Lexical() +
                                 " has no implementation");
      }
      return (*ext)(args, ctx);
    }
    if (++ctx.call_depth > DynamicContext::kMaxCallDepth) {
      --ctx.call_depth;
      return Status::DynamicError("XQIB0002",
                                  "maximum recursion depth exceeded in " +
                                      name.Lexical());
    }
    // Compiled-plan dispatch: the body was lowered once (process-wide
    // cache, see EnsurePlans) into flat bytecode — no AST traversal and
    // no name resolution per call. Off (or plan missing), the tree
    // walker below stays the oracle.
    if (options_.compiled_plans) {
      EnsurePlans();
      if (const plan::FunctionPlan* fp =
              plans_->Find(name.token(), args.size())) {
        ++stats_.plan_hits;
        if (ctx.profiler != nullptr) ++ctx.profiler->fast_path().plan_hits;
        Result<Sequence> result =
            plan::ExecutePlan(*fp, *plans_, std::move(args), *this, ctx);
        --ctx.call_depth;
        if (!result.ok()) return result;
        if (exit_flag_) return TakeExitValue();
        return result;
      }
      ++stats_.plan_misses;
      if (ctx.profiler != nullptr) ++ctx.profiler->fast_path().plan_misses;
    }
    ctx.env().PushScope(/*barrier=*/true);
    for (size_t i = 0; i < fn->params.size(); ++i) {
      ctx.env().Bind(fn->params[i].name, std::move(args[i]));
    }
    // XQIB deviation from strict XQuery: the page document stays the
    // context item inside function bodies (the paper's listeners run
    // //div[...] paths directly, §4.4), so the focus is inherited.
    Result<Sequence> result = Eval(*fn->body, ctx);
    ctx.env().PopScope();
    --ctx.call_depth;
    if (!result.ok()) return result;
    // "exit with" terminates the function, yielding the exit value.
    if (exit_flag_) return TakeExitValue();
    return result;
  }
  // 2. host externals (browser:*, http:*, imported service stubs)
  if (const ExternalFunction* ext = ctx.FindExternal(name, args.size())) {
    return (*ext)(args, ctx);
  }
  // 3. built-in library
  bool handled = false;
  Result<Sequence> r = CallBuiltinFunction(name, args, *this, ctx, &handled);
  if (handled) return r;
  return Status::Error("XPST0017",
                       "unknown function " + name.Clark() + "#" +
                           std::to_string(args.size()));
}

// ---------------------------------------------------------------- cast ---

Result<bool> Evaluator::MatchesSequenceType(const Sequence& value,
                                            const SequenceType& st) {
  using IK = SequenceType::ItemKind;
  if (st.item == IK::kEmptySequence) return value.empty();
  switch (st.occ) {
    case SequenceType::Occurrence::kOne:
      if (value.size() != 1) return false;
      break;
    case SequenceType::Occurrence::kOptional:
      if (value.size() > 1) return false;
      break;
    case SequenceType::Occurrence::kPlus:
      if (value.empty()) return false;
      break;
    case SequenceType::Occurrence::kStar:
      break;
  }
  for (const Item& item : value) {
    switch (st.item) {
      case IK::kAnyItem:
        break;
      case IK::kAnyNode:
        if (!item.is_node()) return false;
        break;
      case IK::kElement:
        if (!item.is_node() || !item.node()->is_element()) return false;
        break;
      case IK::kAttribute:
        if (!item.is_node() || !item.node()->is_attribute()) return false;
        break;
      case IK::kText:
        if (!item.is_node() || !item.node()->is_text()) return false;
        break;
      case IK::kDocument:
        if (!item.is_node() ||
            item.node()->kind() != xml::NodeKind::kDocument) {
          return false;
        }
        break;
      case IK::kAtomic: {
        if (item.is_node()) return false;
        AtomicType t = item.atomic().type();
        if (st.atomic == AtomicType::kUntypedAtomic) break;  // anyAtomic
        if (t != st.atomic &&
            !(st.atomic == AtomicType::kDouble && item.atomic().is_numeric()) &&
            !(st.atomic == AtomicType::kDecimal &&
              (t == AtomicType::kInteger || t == AtomicType::kDecimal))) {
          return false;
        }
        break;
      }
      case IK::kEmptySequence:
        return false;
    }
  }
  return true;
}

Result<Sequence> Evaluator::EvalCast(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence value, Eval(*e.kids[0], ctx));
  if (e.cast_op == "instance") {
    XQ_ASSIGN_OR_RETURN(bool ok, MatchesSequenceType(value, e.seq_type));
    return Sequence{Item::Boolean(ok)};
  }
  if (e.cast_op == "treat") {
    XQ_ASSIGN_OR_RETURN(bool ok, MatchesSequenceType(value, e.seq_type));
    if (!ok) {
      return Status::Error("XPDY0050", "treat as: value does not match type");
    }
    return value;
  }
  // cast / castable: target must be atomic.
  if (e.seq_type.item != SequenceType::ItemKind::kAtomic) {
    return Status::SyntaxError("cast target must be an atomic type");
  }
  Sequence data = xdm::Atomize(value);
  if (data.empty()) {
    bool optional = e.seq_type.occ == SequenceType::Occurrence::kOptional;
    if (e.cast_op == "castable") {
      return Sequence{Item::Boolean(optional)};
    }
    if (optional) return Sequence{};
    return Status::TypeError("cast of an empty sequence to a non-optional "
                             "type");
  }
  if (data.size() > 1) {
    if (e.cast_op == "castable") return Sequence{Item::Boolean(false)};
    return Status::TypeError("cast applied to a sequence of several items");
  }
  Result<AtomicValue> cast = data[0].atomic().CastTo(e.seq_type.atomic);
  if (e.cast_op == "castable") {
    return Sequence{Item::Boolean(cast.ok())};
  }
  if (!cast.ok()) return cast.status();
  return Sequence{Item::Atomic(std::move(cast).value())};
}

// ------------------------------------------------------------ fulltext ---

Result<Sequence> Evaluator::EvalFtContains(const Expr& e,
                                           DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence searched, Eval(*e.kids[0], ctx));
  // ftcontains is true if any item in the searched sequence matches.
  for (const Item& item : searched) {
    std::vector<std::string> tokens = TokenizeWords(item.StringValue());
    XQ_ASSIGN_OR_RETURN(bool match, EvalFtSelection(*e.ft, tokens, ctx));
    if (match) return Sequence{Item::Boolean(true)};
  }
  return Sequence{Item::Boolean(false)};
}

Result<bool> Evaluator::EvalFtSelection(const FtSelection& sel,
                                        const std::vector<std::string>& tokens,
                                        DynamicContext& ctx) {
  switch (sel.kind) {
    case FtSelection::Kind::kWords: {
      XQ_ASSIGN_OR_RETURN(Sequence words, Eval(*sel.words, ctx));
      // Any of the word items matching satisfies the selection ("any" is
      // the XQFT default for a sequence of search strings).
      for (const Item& w : words) {
        if (ContainsPhrase(tokens, w.StringValue(), sel.with_stemming)) {
          return true;
        }
      }
      return false;
    }
    case FtSelection::Kind::kAnd: {
      for (const auto& kid : sel.kids) {
        XQ_ASSIGN_OR_RETURN(bool b, EvalFtSelection(*kid, tokens, ctx));
        if (!b) return false;
      }
      return true;
    }
    case FtSelection::Kind::kOr: {
      for (const auto& kid : sel.kids) {
        XQ_ASSIGN_OR_RETURN(bool b, EvalFtSelection(*kid, tokens, ctx));
        if (b) return true;
      }
      return false;
    }
    case FtSelection::Kind::kNot: {
      XQ_ASSIGN_OR_RETURN(bool b, EvalFtSelection(*sel.kids[0], tokens, ctx));
      return !b;
    }
  }
  return false;
}

// --------------------------------------------------------- constructors ---

Status Evaluator::AppendContent(const Sequence& content, xml::Node* parent,
                                xml::Document* doc) {
  // XQuery content semantics: adjacent atomic values join with a space
  // into one text node; nodes are deep-copied; attributes attach to the
  // element (only allowed before other content, relaxed here).
  std::string pending_text;
  bool have_pending = false;
  auto flush = [&]() {
    if (have_pending) {
      parent->AppendChild(doc->CreateText(pending_text));
      pending_text.clear();
      have_pending = false;
    }
  };
  for (const Item& item : content) {
    if (item.is_node()) {
      xml::Node* n = item.node();
      if (n->is_attribute()) {
        flush();
        if (!parent->is_element()) {
          return Status::TypeError(
              "attribute node in non-element content");
        }
        parent->SetAttribute(n->name(), n->value());
        continue;
      }
      if (n->kind() == xml::NodeKind::kDocument) {
        flush();
        for (xml::Node* c : n->children()) {
          parent->AppendChild(doc->ImportCopy(c));
        }
        continue;
      }
      flush();
      parent->AppendChild(doc->ImportCopy(n));
    } else {
      if (have_pending) pending_text += " ";
      pending_text += item.atomic().ToXPathString();
      have_pending = true;
    }
  }
  flush();
  return Status();
}

Result<xml::Node*> Evaluator::BuildDirectNode(const DirectNode& d,
                                              xml::Document* doc,
                                              DynamicContext& ctx) {
  switch (d.kind) {
    case DirectNode::Kind::kText:
      return doc->CreateText(d.text);
    case DirectNode::Kind::kComment:
      return doc->CreateComment(d.text);
    case DirectNode::Kind::kPI:
      return doc->CreateProcessingInstruction(d.name.local(), d.text);
    case DirectNode::Kind::kEnclosedExpr:
      // Handled by the caller (expands to a sequence).
      return Status::NotImplemented("enclosed expr outside element content");
    case DirectNode::Kind::kElement: {
      xml::Node* element = doc->CreateElement(d.name);
      for (const DirectNode::Attr& attr : d.attrs) {
        std::string value;
        for (const DirectNode::AttrPart& part : attr.parts) {
          if (part.expr != nullptr) {
            XQ_ASSIGN_OR_RETURN(Sequence v, Eval(*part.expr, ctx));
            Sequence data = xdm::Atomize(v);
            for (size_t i = 0; i < data.size(); ++i) {
              if (i > 0) value += " ";
              value += data[i].atomic().ToXPathString();
            }
          } else {
            value += part.literal;
          }
        }
        element->SetAttribute(attr.name, std::move(value));
      }
      for (const auto& child : d.children) {
        if (child->kind == DirectNode::Kind::kEnclosedExpr) {
          XQ_ASSIGN_OR_RETURN(Sequence content, Eval(*child->expr, ctx));
          XQ_RETURN_NOT_OK(AppendContent(content, element, doc));
        } else {
          XQ_ASSIGN_OR_RETURN(xml::Node* n,
                              BuildDirectNode(*child, doc, ctx));
          element->AppendChild(n);
        }
      }
      return element;
    }
  }
  return Status::NotImplemented("unknown direct node kind");
}

Result<Sequence> Evaluator::EvalDirectElement(const Expr& e,
                                              DynamicContext& ctx) {
  xml::Document* doc = ctx.scratch_document();
  XQ_ASSIGN_OR_RETURN(xml::Node* node, BuildDirectNode(*e.direct, doc, ctx));
  return Sequence{Item::Node(node)};
}

Result<Sequence> Evaluator::EvalComputedConstructor(const Expr& e,
                                                    DynamicContext& ctx) {
  xml::Document* doc = ctx.scratch_document();
  size_t content_idx = 0;
  xml::QName name = e.qname;
  if (e.str == "computed-name") {
    XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[0], ctx));
    XQ_ASSIGN_OR_RETURN(AtomicValue nv,
                        RequireSingleAtomic(name_seq, "computed name"));
    if (nv.type() == AtomicType::kQName) {
      name = nv.qname_value();
    } else {
      name = xml::QName(nv.ToXPathString());
    }
    content_idx = 1;
  }
  Sequence content;
  if (e.kids.size() > content_idx) {
    XQ_ASSIGN_OR_RETURN(content, Eval(*e.kids[content_idx], ctx));
  }
  switch (e.kind) {
    case ExprKind::kComputedElement: {
      xml::Node* element = doc->CreateElement(name);
      XQ_RETURN_NOT_OK(AppendContent(content, element, doc));
      return Sequence{Item::Node(element)};
    }
    case ExprKind::kComputedAttribute: {
      Sequence data = xdm::Atomize(content);
      std::string value;
      for (size_t i = 0; i < data.size(); ++i) {
        if (i > 0) value += " ";
        value += data[i].atomic().ToXPathString();
      }
      return Sequence{Item::Node(doc->CreateAttribute(name, value))};
    }
    case ExprKind::kComputedText: {
      Sequence data = xdm::Atomize(content);
      std::string value;
      for (size_t i = 0; i < data.size(); ++i) {
        if (i > 0) value += " ";
        value += data[i].atomic().ToXPathString();
      }
      return Sequence{Item::Node(doc->CreateText(value))};
    }
    case ExprKind::kComputedComment:
      return Sequence{
          Item::Node(doc->CreateComment(xdm::SequenceToString(content)))};
    case ExprKind::kComputedPI:
      return Sequence{Item::Node(doc->CreateProcessingInstruction(
          e.str, xdm::SequenceToString(content)))};
    default:
      return Status::NotImplemented("constructor kind");
  }
}

// -------------------------------------------------------------- update ---

Result<Sequence> Evaluator::EvalInsert(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence source, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence target_seq, Eval(*e.kids[1], ctx));
  XQ_RETURN_NOT_OK(
      valueops::BuildInsert(e.insert_mode, source, target_seq, &ctx.pul()));
  return Sequence{};
}

Result<Sequence> Evaluator::EvalDelete(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[0], ctx));
  XQ_RETURN_NOT_OK(valueops::BuildDelete(targets, &ctx.pul()));
  return Sequence{};
}

Result<Sequence> Evaluator::EvalReplace(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence target_seq, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence source, Eval(*e.kids[1], ctx));
  XQ_RETURN_NOT_OK(valueops::BuildReplace(e.replace_value_of, target_seq,
                                            source, &ctx.pul()));
  return Sequence{};
}

Result<Sequence> Evaluator::EvalRename(const Expr& e, DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence target_seq, Eval(*e.kids[0], ctx));
  XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[1], ctx));
  XQ_RETURN_NOT_OK(
      valueops::BuildRename(target_seq, name_seq, &ctx.pul()));
  return Sequence{};
}

Result<Sequence> Evaluator::EvalTransform(const Expr& e,
                                          DynamicContext& ctx) {
  XQ_ASSIGN_OR_RETURN(Sequence source, Eval(*e.kids[0], ctx));
  if (source.size() != 1 || !source[0].is_node()) {
    return Status::Error("XUTY0013", "copy source must be a single node");
  }
  xml::Document* doc = ctx.scratch_document();
  xml::Node* copy = doc->ImportCopy(source[0].node());
  ctx.env().PushScope();
  ctx.env().Bind(e.qname, Sequence{Item::Node(copy)});
  // The modify clause updates only the copy: evaluate it with a private
  // PUL and apply immediately.
  auto saved = ctx.pul().Take();
  Result<Sequence> modify = Eval(*e.kids[1], ctx);
  Status apply = modify.ok() ? ctx.pul().ApplyAll() : Status();
  ctx.pul().Restore(std::move(saved));
  if (!modify.ok()) {
    ctx.env().PopScope();
    return modify.status();
  }
  if (!apply.ok()) {
    ctx.env().PopScope();
    return apply;
  }
  Result<Sequence> result = Eval(*e.kids[2], ctx);
  ctx.env().PopScope();
  return result;
}

// ----------------------------------------------------------- scripting ---

Result<Sequence> Evaluator::EvalBlock(const Expr& e, DynamicContext& ctx) {
  ctx.env().PushScope();
  Sequence last;
  for (const ExprPtr& stmt : e.kids) {
    Result<Sequence> r = Eval(*stmt, ctx);
    if (!r.ok()) {
      ctx.env().PopScope();
      return r;
    }
    // Scripting semantics (§3.3): updates become visible at every
    // statement boundary.
    Status apply = ctx.pul().ApplyAll();
    if (!apply.ok()) {
      ctx.env().PopScope();
      return apply;
    }
    last = std::move(r).value();
    if (exit_flag_) break;
  }
  ctx.env().PopScope();
  return last;
}

Result<Sequence> Evaluator::EvalWhile(const Expr& e, DynamicContext& ctx) {
  Sequence last;
  while (true) {
    XQ_ASSIGN_OR_RETURN(bool b, EvalBool(*e.kids[0], ctx));
    if (!b) break;
    XQ_ASSIGN_OR_RETURN(last, Eval(*e.kids[1], ctx));
    XQ_RETURN_NOT_OK(ctx.pul().ApplyAll());
    if (exit_flag_) break;
  }
  return last;
}

// ----------------------------------------------- browser grammar ext. ---

Result<Sequence> Evaluator::EvalBrowserExtension(const Expr& e,
                                                 DynamicContext& ctx) {
  if (ctx.browser_binding == nullptr) {
    return Status::Error("BRWS0001",
                         "browser extension used outside a browser context");
  }
  BrowserBinding& bb = *ctx.browser_binding;
  switch (e.kind) {
    case ExprKind::kEventAttach: {
      XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[0], ctx));
      std::string event_name = xdm::SequenceToString(name_seq);
      if (e.behind) {
        XQ_RETURN_NOT_OK(bb.AttachBehind(event_name, *e.kids[1], e.qname,
                                         ctx));
        return Sequence{};
      }
      XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[1], ctx));
      XQ_RETURN_NOT_OK(bb.AttachListener(event_name, targets, e.qname, ctx));
      return Sequence{};
    }
    case ExprKind::kEventDetach: {
      XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[1], ctx));
      XQ_RETURN_NOT_OK(bb.DetachListener(xdm::SequenceToString(name_seq),
                                         targets, e.qname, ctx));
      return Sequence{};
    }
    case ExprKind::kEventTrigger: {
      XQ_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[1], ctx));
      XQ_RETURN_NOT_OK(bb.TriggerEvent(xdm::SequenceToString(name_seq),
                                       targets, ctx));
      return Sequence{};
    }
    case ExprKind::kSetStyle: {
      XQ_ASSIGN_OR_RETURN(Sequence prop, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence targets, Eval(*e.kids[1], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence value, Eval(*e.kids[2], ctx));
      XQ_RETURN_NOT_OK(bb.SetStyle(xdm::SequenceToString(prop), targets,
                                   xdm::SequenceToString(value), ctx));
      return Sequence{};
    }
    case ExprKind::kGetStyle: {
      XQ_ASSIGN_OR_RETURN(Sequence prop, Eval(*e.kids[0], ctx));
      XQ_ASSIGN_OR_RETURN(Sequence target, Eval(*e.kids[1], ctx));
      XQ_ASSIGN_OR_RETURN(std::string value,
                          bb.GetStyle(xdm::SequenceToString(prop), target,
                                      ctx));
      return Sequence{Item::String(value)};
    }
    default:
      return Status::NotImplemented("browser extension kind");
  }
}

}  // namespace xqib::xquery
