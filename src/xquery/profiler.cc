#include "xquery/profiler.h"

#include <algorithm>
#include <cstdio>

namespace xqib::xquery {

namespace {

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kLiteral: return "literal";
    case ExprKind::kVarRef: return "variable";
    case ExprKind::kContextItem: return "context-item";
    case ExprKind::kSequence: return "sequence";
    case ExprKind::kRange: return "range";
    case ExprKind::kArith: return "arithmetic";
    case ExprKind::kUnary: return "unary";
    case ExprKind::kComparison: return "comparison";
    case ExprKind::kLogical: return "logical";
    case ExprKind::kPath: return "path";
    case ExprKind::kFilter: return "filter";
    case ExprKind::kFLWOR: return "FLWOR";
    case ExprKind::kQuantified: return "quantified";
    case ExprKind::kIf: return "if";
    case ExprKind::kFunctionCall: return "call";
    case ExprKind::kCast: return "cast";
    case ExprKind::kTypeswitch: return "typeswitch";
    case ExprKind::kSetOp: return "set-op";
    case ExprKind::kFtContains: return "ftcontains";
    case ExprKind::kDirectElement: return "element-constructor";
    case ExprKind::kComputedElement: return "computed-element";
    case ExprKind::kComputedAttribute: return "computed-attribute";
    case ExprKind::kComputedText: return "computed-text";
    case ExprKind::kComputedComment: return "computed-comment";
    case ExprKind::kComputedPI: return "computed-pi";
    case ExprKind::kEnclosed: return "enclosed";
    case ExprKind::kInsert: return "insert";
    case ExprKind::kDelete: return "delete";
    case ExprKind::kReplace: return "replace";
    case ExprKind::kRename: return "rename";
    case ExprKind::kTransform: return "transform";
    case ExprKind::kBlock: return "block";
    case ExprKind::kVarDecl: return "var-decl";
    case ExprKind::kAssign: return "assign";
    case ExprKind::kWhile: return "while";
    case ExprKind::kExitWith: return "exit-with";
    case ExprKind::kEventAttach: return "event-attach";
    case ExprKind::kEventDetach: return "event-detach";
    case ExprKind::kEventTrigger: return "event-trigger";
    case ExprKind::kSetStyle: return "set-style";
    case ExprKind::kGetStyle: return "get-style";
  }
  return "expr";
}

}  // namespace

std::string DescribeExpr(const Expr& expr) {
  std::string out = ExprKindName(expr.kind);
  switch (expr.kind) {
    case ExprKind::kFunctionCall:
      out += " " + expr.qname.Lexical() + "#" +
             std::to_string(expr.kids.size());
      break;
    case ExprKind::kVarRef:
    case ExprKind::kAssign:
    case ExprKind::kVarDecl:
      out += " $" + expr.qname.Lexical();
      break;
    case ExprKind::kPath: {
      out += " ";
      for (const Step& step : expr.steps) {
        if (step.axis == Axis::kDescendantOrSelf &&
            step.test.kind == NodeTest::Kind::kAnyKind) {
          out += "/";  // combined with the next step's '/' prints '//'
          continue;
        }
        out += "/";
        if (step.axis == Axis::kAttribute) out += "@";
        out += step.test.any_name ? "*" : step.test.name.Lexical();
      }
      break;
    }
    case ExprKind::kDirectElement:
      if (expr.direct != nullptr) out += " <" + expr.direct->name.Lexical() + ">";
      break;
    case ExprKind::kLiteral:
      out += " " + expr.atom.ToXPathString().substr(0, 16);
      break;
    default:
      break;
  }
  return out;
}

std::vector<Profiler::Entry> Profiler::HotSpots() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [expr, entry] : entries_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.self_us > b.self_us;
  });
  return out;
}

uint64_t Profiler::total_evaluations() const {
  uint64_t n = 0;
  for (const auto& [expr, entry] : entries_) n += entry.count;
  return n;
}

std::string Profiler::Report(size_t limit) const {
  std::vector<Entry> hot = HotSpots();
  std::string out =
      "    count   self(us)  total(us)  expression\n"
      "  -------  ---------  ---------  --------------------------------\n";
  char line[160];
  for (size_t i = 0; i < hot.size() && i < limit; ++i) {
    const Entry& e = hot[i];
    std::snprintf(line, sizeof(line), "  %7llu  %9.1f  %9.1f  %s\n",
                  static_cast<unsigned long long>(e.count), e.self_us,
                  e.total_us, DescribeExpr(*e.expr).c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  path fast path: %llu sorts elided, %llu performed, "
                "%llu index hits, %llu early exits, %llu count-index hits\n",
                static_cast<unsigned long long>(fast_path_.sorts_elided),
                static_cast<unsigned long long>(fast_path_.sorts_performed),
                static_cast<unsigned long long>(fast_path_.name_index_hits),
                static_cast<unsigned long long>(fast_path_.early_exits),
                static_cast<unsigned long long>(fast_path_.count_index_hits));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "  streaming: %llu items pulled, %llu materialized, "
      "%llu buffers avoided\n",
      static_cast<unsigned long long>(fast_path_.items_pulled),
      static_cast<unsigned long long>(fast_path_.items_materialized),
      static_cast<unsigned long long>(fast_path_.buffers_avoided));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "  memory: %llu arena bytes used, %llu arena resets, "
      "%llu intern hits\n",
      static_cast<unsigned long long>(fast_path_.arena_bytes_used),
      static_cast<unsigned long long>(fast_path_.arena_resets),
      static_cast<unsigned long long>(fast_path_.intern_hits));
  out += line;
  std::snprintf(line, sizeof(line),
                "  plans: %llu plan dispatches, %llu tree fallbacks\n",
                static_cast<unsigned long long>(fast_path_.plan_hits),
                static_cast<unsigned long long>(fast_path_.plan_misses));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "  delta: %llu emitted, %llu index splices, %llu rebuilds avoided, "
      "%llu listeners skipped\n",
      static_cast<unsigned long long>(fast_path_.delta_emitted),
      static_cast<unsigned long long>(fast_path_.delta_index_splices),
      static_cast<unsigned long long>(
          fast_path_.delta_bucket_rebuilds_avoided),
      static_cast<unsigned long long>(fast_path_.delta_listeners_skipped));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "  http: %llu cache hits, %llu cache misses, %llu prefetches issued, "
      "%llu prefetch hits\n",
      static_cast<unsigned long long>(fast_path_.http_cache_hits),
      static_cast<unsigned long long>(fast_path_.http_cache_misses),
      static_cast<unsigned long long>(fast_path_.http_prefetch_issued),
      static_cast<unsigned long long>(fast_path_.http_prefetch_hits));
  out += line;
  return out;
}

}  // namespace xqib::xquery
