#include "xquery/parser.h"

#include <cassert>
#include <vector>

#include "base/strings.h"
#include "xml/xml_parser.h"

namespace xqib::xquery {

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::string_view input) : lex_(input) {
    ns_["xml"] = std::string(xml::kXmlNamespace);
    ns_["xs"] = std::string(xml::kXsNamespace);
    ns_["fn"] = std::string(xml::kFnNamespace);
    ns_["local"] = "http://www.w3.org/2005/xquery-local-functions";
    ns_["browser"] = std::string(xml::kBrowserNamespace);
    ns_["http"] = std::string(xml::kHttpNamespace);
  }

  Result<std::unique_ptr<Module>> ParseModuleAll() {
    auto module = std::make_unique<Module>();
    module_ = module.get();
    module_->source_text = std::string(lex_.input());
    XQ_RETURN_NOT_OK(ParseProlog());
    if (!module_->is_library) {
      XQ_ASSIGN_OR_RETURN(module_->body, ParseStatementsUntilEof());
    } else if (!Peek().IsSymbol("") && Peek().kind != TokKind::kEof) {
      return Err("unexpected content after library module prolog");
    }
    XQ_RETURN_NOT_OK(lex_.status());
    return module;
  }

 private:
  // ------------------------------------------------------------ helpers ---

  const Token& Peek(size_t k = 0) { return lex_.Peek(k); }
  Token Next() { return lex_.Next(); }

  Status Err(std::string_view msg) {
    if (!lex_.status().ok()) return lex_.status();
    return Status::SyntaxError(std::string(msg) + " (at " +
                               FormatLineCol(lex_.input(), Peek().pos) +
                               ", near '" + Peek().text + "')");
  }

  bool AtName(std::string_view s) { return Peek().IsName(s); }
  bool AtSymbol(std::string_view s) { return Peek().IsSymbol(s); }

  bool EatName(std::string_view s) {
    if (AtName(s)) {
      Next();
      return true;
    }
    return false;
  }
  bool EatSymbol(std::string_view s) {
    if (AtSymbol(s)) {
      Next();
      return true;
    }
    return false;
  }
  Status ExpectName(std::string_view s) {
    if (!EatName(s)) return Err("expected '" + std::string(s) + "'");
    return Status();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!EatSymbol(s)) return Err("expected '" + std::string(s) + "'");
    return Status();
  }

  // Resolves a lexical QName. `kind` selects the default namespace rule.
  enum class NameKind { kElement, kFunction, kVariable, kAttribute, kType };
  Result<xml::QName> ResolveLexical(const std::string& raw, NameKind kind) {
    size_t colon = raw.find(':');
    if (colon == std::string::npos) {
      switch (kind) {
        case NameKind::kElement:
          return xml::QName(default_elem_ns_, "", raw);
        case NameKind::kFunction:
        case NameKind::kType:
          // Unprefixed functions live in fn:, unprefixed types in xs:.
          return xml::QName(
              std::string(kind == NameKind::kFunction ? xml::kFnNamespace
                                                      : xml::kXsNamespace),
              "", raw);
        case NameKind::kVariable:
        case NameKind::kAttribute:
          return xml::QName("", "", raw);
      }
    }
    std::string prefix = raw.substr(0, colon);
    std::string local = raw.substr(colon + 1);
    auto it = ns_.find(prefix);
    if (it == ns_.end()) {
      return Status::Error("XPST0081",
                           "undeclared namespace prefix '" + prefix + "'");
    }
    return xml::QName(it->second, prefix, local);
  }

  Result<xml::QName> ParseQName(NameKind kind) {
    if (Peek().kind != TokKind::kName) return Err("expected a name");
    Token t = Next();
    return ResolveLexical(t.text, kind);
  }

  Result<xml::QName> ParseVarName() {
    if (Peek().kind != TokKind::kVariable) {
      return Err("expected a variable reference");
    }
    Token t = Next();
    return ResolveLexical(t.text, NameKind::kVariable);
  }

  // ------------------------------------------------------------- prolog ---

  Status ParseProlog() {
    // xquery version "1.0" [encoding "..."] ;
    if (AtName("xquery") && Peek(1).IsName("version")) {
      Next();
      Next();
      if (Peek().kind != TokKind::kString) return Err("expected version");
      Next();
      if (AtName("encoding")) {
        Next();
        if (Peek().kind != TokKind::kString) return Err("expected encoding");
        Next();
      }
      XQ_RETURN_NOT_OK(ExpectSymbol(";"));
    }
    // module namespace p = "uri" [port:N] ;
    if (AtName("module") && Peek(1).IsName("namespace")) {
      Next();
      Next();
      if (Peek().kind != TokKind::kName) return Err("expected prefix");
      std::string prefix = Next().text;
      XQ_RETURN_NOT_OK(ExpectSymbol("="));
      if (Peek().kind != TokKind::kString) return Err("expected namespace");
      std::string uri = Next().text;
      module_->is_library = true;
      module_->module_prefix = prefix;
      module_->module_ns = uri;
      ns_[prefix] = uri;
      // The paper's web-service port extension (Section 3.4).
      if (EatName("port")) {
        XQ_RETURN_NOT_OK(ExpectSymbol(":"));
        if (Peek().kind != TokKind::kInteger) return Err("expected port");
        module_->service_port = std::stoi(Next().text);
      }
      XQ_RETURN_NOT_OK(ExpectSymbol(";"));
    }

    while (true) {
      if (AtName("declare")) {
        XQ_RETURN_NOT_OK(ParseDeclare());
      } else if (AtName("import") && Peek(1).IsName("module")) {
        XQ_RETURN_NOT_OK(ParseImport());
      } else {
        break;
      }
    }
    return Status();
  }

  Status ParseDeclare() {
    Next();  // declare
    if (EatName("namespace")) {
      if (Peek().kind != TokKind::kName) return Err("expected prefix");
      std::string prefix = Next().text;
      XQ_RETURN_NOT_OK(ExpectSymbol("="));
      if (Peek().kind != TokKind::kString) return Err("expected uri");
      std::string uri = Next().text;
      ns_[prefix] = uri;
      module_->namespaces.emplace_back(prefix, uri);
      return ExpectSymbol(";");
    }
    if (EatName("default")) {
      if (EatName("element")) {
        XQ_RETURN_NOT_OK(ExpectName("namespace"));
        if (Peek().kind != TokKind::kString) return Err("expected uri");
        default_elem_ns_ = Next().text;
        module_->default_element_ns = default_elem_ns_;
      } else if (EatName("function")) {
        XQ_RETURN_NOT_OK(ExpectName("namespace"));
        if (Peek().kind != TokKind::kString) return Err("expected uri");
        Next();  // accepted and ignored: we keep fn: as default
      } else {
        return Err("expected 'element' or 'function'");
      }
      return ExpectSymbol(";");
    }
    if (EatName("option")) {
      XQ_ASSIGN_OR_RETURN(xml::QName name, ParseQName(NameKind::kFunction));
      if (Peek().kind != TokKind::kString) return Err("expected option value");
      module_->options.emplace_back(name.Clark(), Next().text);
      return ExpectSymbol(";");
    }
    if (EatName("variable")) {
      VarDecl decl;
      decl.source_pos = Peek().pos;
      XQ_ASSIGN_OR_RETURN(decl.name, ParseVarName());
      if (EatName("as")) {
        XQ_ASSIGN_OR_RETURN(decl.type, ParseSequenceType());
      }
      if (EatSymbol(":=") || EatSymbol("=")) {
        XQ_ASSIGN_OR_RETURN(decl.init, ParseExprSingle());
      } else if (EatName("external")) {
        decl.external = true;
      } else if (!AtSymbol(";")) {
        return Err("expected ':=' or 'external'");
      }
      module_->variables.push_back(std::move(decl));
      return ExpectSymbol(";");
    }
    // declare [updating|sequential]* function ...
    bool updating = false, sequential = false;
    while (true) {
      if (EatName("updating")) {
        updating = true;
      } else if (EatName("sequential")) {
        sequential = true;
      } else {
        break;
      }
    }
    if (EatName("function")) {
      auto fn = std::make_shared<FunctionDecl>();
      fn->updating = updating;
      fn->sequential = sequential;
      if (Peek().kind != TokKind::kName) return Err("expected function name");
      fn->source_pos = Peek().pos;
      Token name_tok = Next();
      // Function declarations without a prefix default to local:.
      std::string raw = name_tok.text;
      if (raw.find(':') == std::string::npos) raw = "local:" + raw;
      XQ_ASSIGN_OR_RETURN(fn->name, ResolveLexical(raw, NameKind::kFunction));
      XQ_RETURN_NOT_OK(ExpectSymbol("("));
      if (!AtSymbol(")")) {
        while (true) {
          Param p;
          p.source_pos = Peek().pos;
          XQ_ASSIGN_OR_RETURN(p.name, ParseVarName());
          if (EatName("as")) {
            XQ_ASSIGN_OR_RETURN(p.type, ParseSequenceType());
          }
          fn->params.push_back(std::move(p));
          if (!EatSymbol(",")) break;
        }
      }
      XQ_RETURN_NOT_OK(ExpectSymbol(")"));
      if (EatName("as")) {
        XQ_ASSIGN_OR_RETURN(fn->return_type, ParseSequenceType());
      }
      if (EatName("external")) {
        fn->external = true;
      } else {
        XQ_RETURN_NOT_OK(ExpectSymbol("{"));
        XQ_ASSIGN_OR_RETURN(fn->body, ParseStatements("}"));
        XQ_RETURN_NOT_OK(ExpectSymbol("}"));
      }
      module_->functions.push_back(std::move(fn));
      return ExpectSymbol(";");
    }
    return Err("unsupported declaration");
  }

  Status ParseImport() {
    Next();  // import
    Next();  // module
    XQ_RETURN_NOT_OK(ExpectName("namespace"));
    if (Peek().kind != TokKind::kName) return Err("expected prefix");
    Module::Import imp;
    imp.prefix = Next().text;
    XQ_RETURN_NOT_OK(ExpectSymbol("="));
    if (Peek().kind != TokKind::kString) return Err("expected namespace uri");
    imp.ns = Next().text;
    ns_[imp.prefix] = imp.ns;
    if (EatName("at")) {
      if (Peek().kind != TokKind::kString) return Err("expected location");
      imp.location = Next().text;
      while (EatSymbol(",")) {
        if (Peek().kind != TokKind::kString) return Err("expected location");
        Next();  // extra locations accepted, first one used
      }
    }
    module_->imports.push_back(std::move(imp));
    return ExpectSymbol(";");
  }

  // -------------------------------------------------- statements/blocks ---

  // Parses statements separated by ';' until EOF; a single statement
  // stays a plain expression, several become a kBlock (Scripting Ext.).
  Result<ExprPtr> ParseStatementsUntilEof() {
    return ParseStatements("");
  }

  // `terminator`: "}" for blocks, "" for EOF.
  Result<ExprPtr> ParseStatements(std::string_view terminator) {
    std::vector<ExprPtr> stmts;
    while (true) {
      if (terminator.empty() ? Peek().kind == TokKind::kEof
                             : AtSymbol(terminator)) {
        break;
      }
      XQ_ASSIGN_OR_RETURN(ExprPtr stmt, ParseStatement());
      stmts.push_back(std::move(stmt));
      if (!EatSymbol(";")) break;
    }
    if (terminator.empty() && Peek().kind != TokKind::kEof) {
      return Err("unexpected trailing content");
    }
    if (stmts.size() == 1) return std::move(stmts[0]);
    ExprPtr block = MakeExpr(ExprKind::kBlock);
    block->kids = std::move(stmts);
    return block;
  }

  Result<ExprPtr> ParseStatement() {
    size_t start = Peek().pos;
    XQ_ASSIGN_OR_RETURN(ExprPtr e, ParseStatementBare());
    if (e != nullptr && e->source_pos == 0) e->source_pos = start;
    return e;
  }

  Result<ExprPtr> ParseStatementBare() {
    // declare variable $x := expr   (block-local declaration)
    if (AtName("declare") && Peek(1).IsName("variable")) {
      Next();
      Next();
      ExprPtr decl = MakeExpr(ExprKind::kVarDecl);
      decl->source_pos = Peek().pos;
      XQ_ASSIGN_OR_RETURN(decl->qname, ParseVarName());
      if (EatName("as")) {
        XQ_RETURN_NOT_OK(ParseSequenceType().status());
      }
      if (EatSymbol(":=") || EatSymbol("=")) {
        XQ_ASSIGN_OR_RETURN(ExprPtr init, ParseExprSingle());
        decl->kids.push_back(std::move(init));
      }
      return decl;
    }
    // set $x := expr  (the paper's spelling of scripting assignment)
    if (AtName("set") && Peek(1).kind == TokKind::kVariable) {
      Next();
      ExprPtr assign = MakeExpr(ExprKind::kAssign);
      XQ_ASSIGN_OR_RETURN(assign->qname, ParseVarName());
      if (!EatSymbol(":=") && !EatSymbol("=")) return Err("expected ':='");
      XQ_ASSIGN_OR_RETURN(ExprPtr value, ParseExprSingle());
      assign->kids.push_back(std::move(value));
      return assign;
    }
    // $x := expr  (standard scripting assignment)
    if (Peek().kind == TokKind::kVariable && Peek(1).IsSymbol(":=")) {
      ExprPtr assign = MakeExpr(ExprKind::kAssign);
      XQ_ASSIGN_OR_RETURN(assign->qname, ParseVarName());
      Next();  // :=
      XQ_ASSIGN_OR_RETURN(ExprPtr value, ParseExprSingle());
      assign->kids.push_back(std::move(value));
      return assign;
    }
    // while (expr) { statements }
    if (AtName("while") && Peek(1).IsSymbol("(")) {
      Next();
      Next();
      ExprPtr w = MakeExpr(ExprKind::kWhile);
      XQ_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      XQ_RETURN_NOT_OK(ExpectSymbol(")"));
      XQ_RETURN_NOT_OK(ExpectSymbol("{"));
      XQ_ASSIGN_OR_RETURN(ExprPtr body, ParseStatements("}"));
      XQ_RETURN_NOT_OK(ExpectSymbol("}"));
      w->kids.push_back(std::move(cond));
      w->kids.push_back(std::move(body));
      return w;
    }
    // exit with expr
    if (AtName("exit") && Peek(1).IsName("with")) {
      Next();
      Next();
      ExprPtr e = MakeExpr(ExprKind::kExitWith);
      XQ_ASSIGN_OR_RETURN(ExprPtr value, ParseExprSingle());
      e->kids.push_back(std::move(value));
      return e;
    }
    return ParseExpr();
  }

  // ---------------------------------------------------------- operators ---

  // Expr ::= ExprSingle ("," ExprSingle)*
  Result<ExprPtr> ParseExpr() {
    XQ_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (!AtSymbol(",")) return first;
    ExprPtr seq = MakeExpr(ExprKind::kSequence);
    seq->kids.push_back(std::move(first));
    while (EatSymbol(",")) {
      XQ_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->kids.push_back(std::move(next));
    }
    return seq;
  }

  Result<ExprPtr> ParseExprSingle() {
    size_t start = Peek().pos;
    XQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingleBare());
    if (e != nullptr && e->source_pos == 0) e->source_pos = start;
    return e;
  }

  Result<ExprPtr> ParseExprSingleBare() {
    const Token& t = Peek();
    if (t.kind == TokKind::kName) {
      const std::string& kw = t.text;
      if ((kw == "for" || kw == "let") && Peek(1).kind == TokKind::kVariable) {
        return ParseFLWOR();
      }
      if ((kw == "some" || kw == "every") &&
          Peek(1).kind == TokKind::kVariable) {
        return ParseQuantified();
      }
      if (kw == "if" && Peek(1).IsSymbol("(")) return ParseIf();
      if (kw == "typeswitch" && Peek(1).IsSymbol("(")) {
        return ParseTypeswitch();
      }
      // Update Facility, with the optional scripting "do" prefix.
      if (kw == "do") {
        const std::string& nx = Peek(1).text;
        if (nx == "insert" || nx == "delete" || nx == "replace" ||
            nx == "rename") {
          Next();  // do
          return ParseExprSingle();
        }
      }
      if (kw == "insert" &&
          (Peek(1).IsName("node") || Peek(1).IsName("nodes"))) {
        return ParseInsert();
      }
      if (kw == "delete" &&
          (Peek(1).IsName("node") || Peek(1).IsName("nodes"))) {
        return ParseDelete();
      }
      if (kw == "replace" &&
          (Peek(1).IsName("node") || Peek(1).IsName("value"))) {
        return ParseReplace();
      }
      if (kw == "rename" && Peek(1).IsName("node")) return ParseRename();
      if (kw == "copy" && Peek(1).kind == TokKind::kVariable) {
        return ParseTransform();
      }
      // Browser extensions.
      if (kw == "on" && Peek(1).IsName("event")) return ParseEventAttach();
      if (kw == "trigger" && Peek(1).IsName("event")) {
        return ParseEventTrigger();
      }
      if (kw == "set" && Peek(1).IsName("style")) return ParseSetStyle();
      if (kw == "get" && Peek(1).IsName("style")) return ParseGetStyle();
      // Scripting forms usable in expression position too.
      if (kw == "set" && Peek(1).kind == TokKind::kVariable) {
        return ParseStatement();
      }
      if (kw == "while" && Peek(1).IsSymbol("(")) return ParseStatement();
      if (kw == "exit" && Peek(1).IsName("with")) return ParseStatement();
      if (kw == "declare" && Peek(1).IsName("variable")) {
        return ParseStatement();
      }
    }
    if (t.kind == TokKind::kVariable && Peek(1).IsSymbol(":=")) {
      return ParseStatement();
    }
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AtName("or")) {
      Next();
      XQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      ExprPtr e = MakeExpr(ExprKind::kLogical);
      e->logical_and = false;
      e->source_pos = lhs->source_pos;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (AtName("and")) {
      Next();
      XQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      ExprPtr e = MakeExpr(ExprKind::kLogical);
      e->logical_and = true;
      e->source_pos = lhs->source_pos;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFtContains());
    CompOp op;
    if (AtSymbol("=")) op = CompOp::kGenEq;
    else if (AtSymbol("!=")) op = CompOp::kGenNe;
    else if (AtSymbol("<")) op = CompOp::kGenLt;
    else if (AtSymbol("<=")) op = CompOp::kGenLe;
    else if (AtSymbol(">")) op = CompOp::kGenGt;
    else if (AtSymbol(">=")) op = CompOp::kGenGe;
    else if (AtName("eq")) op = CompOp::kValEq;
    else if (AtName("ne")) op = CompOp::kValNe;
    else if (AtName("lt")) op = CompOp::kValLt;
    else if (AtName("le")) op = CompOp::kValLe;
    else if (AtName("gt")) op = CompOp::kValGt;
    else if (AtName("ge")) op = CompOp::kValGe;
    else if (AtName("is")) op = CompOp::kIs;
    else if (AtSymbol("<<")) op = CompOp::kPrecedes;
    else if (AtSymbol(">>")) op = CompOp::kFollows;
    else return lhs;
    Next();
    XQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFtContains());
    ExprPtr e = MakeExpr(ExprKind::kComparison);
    e->comp_op = op;
    e->source_pos = lhs->source_pos;
    e->kids.push_back(std::move(lhs));
    e->kids.push_back(std::move(rhs));
    return e;
  }

  Result<ExprPtr> ParseFtContains() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRange());
    if (!AtName("ftcontains")) return lhs;
    Next();
    ExprPtr e = MakeExpr(ExprKind::kFtContains);
    e->source_pos = lhs->source_pos;
    e->kids.push_back(std::move(lhs));
    XQ_ASSIGN_OR_RETURN(e->ft, ParseFtOr());
    return e;
  }

  Result<std::unique_ptr<FtSelection>> ParseFtOr() {
    XQ_ASSIGN_OR_RETURN(auto lhs, ParseFtAnd());
    while (AtName("ftor")) {
      Next();
      XQ_ASSIGN_OR_RETURN(auto rhs, ParseFtAnd());
      auto node = std::make_unique<FtSelection>();
      node->kind = FtSelection::Kind::kOr;
      node->kids.push_back(std::move(lhs));
      node->kids.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<FtSelection>> ParseFtAnd() {
    XQ_ASSIGN_OR_RETURN(auto lhs, ParseFtPrimary());
    while (AtName("ftand")) {
      Next();
      XQ_ASSIGN_OR_RETURN(auto rhs, ParseFtPrimary());
      auto node = std::make_unique<FtSelection>();
      node->kind = FtSelection::Kind::kAnd;
      node->kids.push_back(std::move(lhs));
      node->kids.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<FtSelection>> ParseFtPrimary() {
    if (AtName("ftnot")) {
      Next();
      XQ_ASSIGN_OR_RETURN(auto inner, ParseFtPrimary());
      auto node = std::make_unique<FtSelection>();
      node->kind = FtSelection::Kind::kNot;
      node->kids.push_back(std::move(inner));
      return node;
    }
    if (AtSymbol("(")) {
      Next();
      XQ_ASSIGN_OR_RETURN(auto inner, ParseFtOr());
      XQ_RETURN_NOT_OK(ExpectSymbol(")"));
      XQ_RETURN_NOT_OK(MaybeFtOptions(inner.get()));
      return inner;
    }
    auto node = std::make_unique<FtSelection>();
    node->kind = FtSelection::Kind::kWords;
    XQ_ASSIGN_OR_RETURN(node->words, ParseUnary());
    XQ_RETURN_NOT_OK(MaybeFtOptions(node.get()));
    return node;
  }

  Status MaybeFtOptions(FtSelection* sel) {
    if (AtName("with") && Peek(1).IsName("stemming")) {
      Next();
      Next();
      sel->with_stemming = true;
    }
    return Status();
  }

  Result<ExprPtr> ParseRange() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (!AtName("to")) return lhs;
    Next();
    XQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    ExprPtr e = MakeExpr(ExprKind::kRange);
    e->source_pos = lhs->source_pos;
    e->kids.push_back(std::move(lhs));
    e->kids.push_back(std::move(rhs));
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (AtSymbol("+") || AtSymbol("-")) {
      ArithOp op = AtSymbol("+") ? ArithOp::kAdd : ArithOp::kSub;
      Next();
      XQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      ExprPtr e = MakeExpr(ExprKind::kArith);
      e->arith_op = op;
      e->source_pos = lhs->source_pos;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnion());
    while (true) {
      ArithOp op;
      if (AtSymbol("*")) op = ArithOp::kMul;
      else if (AtName("div")) op = ArithOp::kDiv;
      else if (AtName("idiv")) op = ArithOp::kIDiv;
      else if (AtName("mod")) op = ArithOp::kMod;
      else break;
      Next();
      XQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
      ExprPtr e = MakeExpr(ExprKind::kArith);
      e->arith_op = op;
      e->source_pos = lhs->source_pos;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnion() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseIntersectExcept());
    while (AtSymbol("|") || AtName("union")) {
      Next();
      XQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseIntersectExcept());
      ExprPtr e = MakeExpr(ExprKind::kSetOp);
      e->str = "union";
      e->source_pos = lhs->source_pos;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseIntersectExcept() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseInstanceOf());
    while (AtName("intersect") || AtName("except")) {
      std::string op = Next().text;
      XQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseInstanceOf());
      ExprPtr e = MakeExpr(ExprKind::kSetOp);
      e->str = op;
      e->source_pos = lhs->source_pos;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseInstanceOf() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTreatCastable());
    if (AtName("instance") && Peek(1).IsName("of")) {
      Next();
      Next();
      ExprPtr e = MakeExpr(ExprKind::kCast);
      e->cast_op = "instance";
      e->source_pos = lhs->source_pos;
      XQ_ASSIGN_OR_RETURN(e->seq_type, ParseSequenceType());
      e->kids.push_back(std::move(lhs));
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseTreatCastable() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCast());
    while (true) {
      std::string op;
      if (AtName("treat") && Peek(1).IsName("as")) op = "treat";
      else if (AtName("castable") && Peek(1).IsName("as")) op = "castable";
      else break;
      Next();
      Next();
      ExprPtr e = MakeExpr(ExprKind::kCast);
      e->cast_op = op;
      e->source_pos = lhs->source_pos;
      XQ_ASSIGN_OR_RETURN(e->seq_type, ParseSequenceType());
      e->kids.push_back(std::move(lhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseCast() {
    XQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    if (AtName("cast") && Peek(1).IsName("as")) {
      Next();
      Next();
      ExprPtr e = MakeExpr(ExprKind::kCast);
      e->cast_op = "cast";
      e->source_pos = lhs->source_pos;
      XQ_ASSIGN_OR_RETURN(e->seq_type, ParseSequenceType());
      e->kids.push_back(std::move(lhs));
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (AtSymbol("-") || AtSymbol("+")) {
      size_t start = Peek().pos;
      ArithOp op = AtSymbol("-") ? ArithOp::kSub : ArithOp::kAdd;
      Next();
      XQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      ExprPtr e = MakeExpr(ExprKind::kUnary);
      e->arith_op = op;
      e->source_pos = start;
      e->kids.push_back(std::move(operand));
      return e;
    }
    return ParsePath();
  }

  // --------------------------------------------------------------- path ---

  Result<ExprPtr> ParsePath() {
    ExprPtr path = MakeExpr(ExprKind::kPath);
    path->source_pos = Peek().pos;
    bool leading_slash = false;
    if (AtSymbol("/")) {
      Next();
      path->root_anchored = true;
      leading_slash = true;
      if (!AtPathStepStart()) {
        // Bare "/": the document root.
        return path;
      }
    } else if (AtSymbol("//")) {
      Next();
      path->root_anchored = true;
      leading_slash = true;
      Step ds;
      ds.axis = Axis::kDescendantOrSelf;
      ds.test.kind = NodeTest::Kind::kAnyKind;
      path->steps.push_back(std::move(ds));
    }

    // First step: either an axis step or a primary (filter) expression.
    if (!leading_slash && !AtAxisStepStart()) {
      XQ_ASSIGN_OR_RETURN(ExprPtr primary, ParseFilter());
      if (!AtSymbol("/") && !AtSymbol("//")) return primary;
      path->kids.push_back(std::move(primary));
    } else {
      XQ_ASSIGN_OR_RETURN(Step step, ParseStep());
      path->steps.push_back(std::move(step));
    }

    while (AtSymbol("/") || AtSymbol("//")) {
      if (AtSymbol("//")) {
        Step ds;
        ds.axis = Axis::kDescendantOrSelf;
        ds.test.kind = NodeTest::Kind::kAnyKind;
        path->steps.push_back(std::move(ds));
      }
      Next();
      XQ_ASSIGN_OR_RETURN(Step step, ParseStep());
      path->steps.push_back(std::move(step));
    }
    return path;
  }

  bool AtPathStepStart() {
    const Token& t = Peek();
    return t.kind == TokKind::kName || t.IsSymbol("@") || t.IsSymbol("*") ||
           t.IsSymbol("..") || t.IsSymbol(".");
  }

  // True when the next token must be an axis step (not a primary expr).
  bool AtAxisStepStart() {
    const Token& t = Peek();
    if (t.IsSymbol("@") || t.IsSymbol("..")) return true;
    if (t.IsSymbol("*")) return true;
    if (t.kind != TokKind::kName) return false;
    const Token& n = Peek(1);
    if (n.IsSymbol("::")) return true;  // explicit axis
    if (n.IsSymbol("(")) {
      // Node tests are steps; anything else with '(' is a function call.
      return IsNodeTestName(t.text);
    }
    // Computed constructors ("element foo {..}", "text {..}") are
    // primaries, not steps.
    if (n.IsSymbol("{") &&
        (t.text == "element" || t.text == "attribute" || t.text == "text" ||
         t.text == "comment" || t.text == "processing-instruction" ||
         t.text == "document" || t.text == "ordered" ||
         t.text == "unordered")) {
      return false;
    }
    if ((t.text == "element" || t.text == "attribute" ||
         t.text == "processing-instruction") &&
        n.kind == TokKind::kName && Peek(2).IsSymbol("{")) {
      return false;
    }
    // Reserved expression keywords never start a step in our dialect when
    // recognized earlier; remaining names are name tests.
    return true;
  }

  static bool IsNodeTestName(const std::string& name) {
    return name == "node" || name == "text" || name == "comment" ||
           name == "processing-instruction" || name == "element" ||
           name == "attribute" || name == "document-node";
  }

  Result<Step> ParseStep() {
    Step step;
    if (AtSymbol("..")) {
      Next();
      step.axis = Axis::kParent;
      step.test.kind = NodeTest::Kind::kAnyKind;
      XQ_RETURN_NOT_OK(ParsePredicates(&step.predicates));
      return step;
    }
    if (AtSymbol("@")) {
      Next();
      step.axis = Axis::kAttribute;
      XQ_ASSIGN_OR_RETURN(step.test, ParseNodeTest(NameKind::kAttribute));
      XQ_RETURN_NOT_OK(ParsePredicates(&step.predicates));
      return step;
    }
    // Explicit axis?
    if (Peek().kind == TokKind::kName && Peek(1).IsSymbol("::")) {
      const std::string& ax = Peek().text;
      bool known = true;
      if (ax == "child") step.axis = Axis::kChild;
      else if (ax == "descendant") step.axis = Axis::kDescendant;
      else if (ax == "descendant-or-self") step.axis = Axis::kDescendantOrSelf;
      else if (ax == "self") step.axis = Axis::kSelf;
      else if (ax == "attribute") step.axis = Axis::kAttribute;
      else if (ax == "parent") step.axis = Axis::kParent;
      else if (ax == "ancestor") step.axis = Axis::kAncestor;
      else if (ax == "ancestor-or-self") step.axis = Axis::kAncestorOrSelf;
      else if (ax == "following-sibling") step.axis = Axis::kFollowingSibling;
      else if (ax == "preceding-sibling") step.axis = Axis::kPrecedingSibling;
      else if (ax == "following") step.axis = Axis::kFollowing;
      else if (ax == "preceding") step.axis = Axis::kPreceding;
      else known = false;
      if (!known) return Err("unknown axis '" + ax + "'");
      Next();
      Next();
    }
    NameKind name_kind = step.axis == Axis::kAttribute ? NameKind::kAttribute
                                                       : NameKind::kElement;
    XQ_ASSIGN_OR_RETURN(step.test, ParseNodeTest(name_kind));
    XQ_RETURN_NOT_OK(ParsePredicates(&step.predicates));
    return step;
  }

  Result<NodeTest> ParseNodeTest(NameKind name_kind) {
    NodeTest test;
    if (AtSymbol("*")) {
      Next();
      test.kind = NodeTest::Kind::kName;
      test.any_name = true;
      return test;
    }
    if (Peek().kind != TokKind::kName) return Err("expected a node test");
    Token t = Next();
    const std::string& raw = t.text;

    if (Peek().IsSymbol("(") && IsNodeTestName(raw)) {
      Next();  // (
      if (raw == "node") test.kind = NodeTest::Kind::kAnyKind;
      else if (raw == "text") test.kind = NodeTest::Kind::kText;
      else if (raw == "comment") test.kind = NodeTest::Kind::kComment;
      else if (raw == "document-node") test.kind = NodeTest::Kind::kDocument;
      else if (raw == "processing-instruction") {
        test.kind = NodeTest::Kind::kPI;
        if (Peek().kind == TokKind::kName ||
            Peek().kind == TokKind::kString) {
          test.name = xml::QName(Next().text);
        } else {
          test.any_name = true;
        }
      } else if (raw == "element") {
        test.kind = NodeTest::Kind::kElement;
        if (Peek().kind == TokKind::kName) {
          XQ_ASSIGN_OR_RETURN(
              test.name, ResolveLexical(Next().text, NameKind::kElement));
        } else {
          test.any_name = true;
        }
      } else if (raw == "attribute") {
        test.kind = NodeTest::Kind::kAttribute;
        if (Peek().kind == TokKind::kName) {
          XQ_ASSIGN_OR_RETURN(
              test.name, ResolveLexical(Next().text, NameKind::kAttribute));
        } else {
          test.any_name = true;
        }
      }
      XQ_RETURN_NOT_OK(ExpectSymbol(")"));
      return test;
    }

    test.kind = NodeTest::Kind::kName;
    if (EndsWith(raw, ":*")) {
      std::string prefix = raw.substr(0, raw.size() - 2);
      auto it = ns_.find(prefix);
      if (it == ns_.end()) {
        return Status::Error("XPST0081",
                             "undeclared namespace prefix '" + prefix + "'");
      }
      test.any_local = true;
      test.name = xml::QName(it->second, prefix, "*");
      return test;
    }
    if (StartsWith(raw, "*:")) {
      test.any_ns = true;
      test.name = xml::QName("", "", raw.substr(2));
      return test;
    }
    XQ_ASSIGN_OR_RETURN(test.name, ResolveLexical(raw, name_kind));
    return test;
  }

  Status ParsePredicates(std::vector<ExprPtr>* preds) {
    while (AtSymbol("[")) {
      Next();
      XQ_ASSIGN_OR_RETURN(ExprPtr p, ParseExpr());
      XQ_RETURN_NOT_OK(ExpectSymbol("]"));
      preds->push_back(std::move(p));
    }
    return Status();
  }

  Result<ExprPtr> ParseFilter() {
    XQ_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimary());
    if (!AtSymbol("[")) return primary;
    ExprPtr filter = MakeExpr(ExprKind::kFilter);
    filter->source_pos = primary->source_pos;
    filter->kids.push_back(std::move(primary));
    XQ_RETURN_NOT_OK(ParsePredicates(&filter->predicates));
    return filter;
  }

  // ------------------------------------------------------------ primary ---

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    size_t start = t.pos;
    switch (t.kind) {
      case TokKind::kString: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->source_pos = start;
        e->atom = xdm::AtomicValue::String(Next().text);
        return e;
      }
      case TokKind::kInteger: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->source_pos = start;
        e->atom = xdm::AtomicValue::Integer(std::stoll(Next().text));
        return e;
      }
      case TokKind::kDecimal: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->source_pos = start;
        e->atom = xdm::AtomicValue::Decimal(std::stod(Next().text));
        return e;
      }
      case TokKind::kDouble: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->source_pos = start;
        e->atom = xdm::AtomicValue::Double(std::stod(Next().text));
        return e;
      }
      case TokKind::kVariable: {
        ExprPtr e = MakeExpr(ExprKind::kVarRef);
        e->source_pos = start;
        XQ_ASSIGN_OR_RETURN(e->qname, ParseVarName());
        return e;
      }
      default:
        break;
    }
    if (AtSymbol("(")) {
      Next();
      if (EatSymbol(")")) return MakeExpr(ExprKind::kSequence);  // empty ()
      XQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      XQ_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (AtSymbol(".")) {
      Next();
      return MakeExpr(ExprKind::kContextItem);
    }
    if (AtSymbol("{")) {
      // Scripting block expression.
      Next();
      XQ_ASSIGN_OR_RETURN(ExprPtr block, ParseStatements("}"));
      XQ_RETURN_NOT_OK(ExpectSymbol("}"));
      if (block->kind != ExprKind::kBlock) {
        ExprPtr wrap = MakeExpr(ExprKind::kBlock);
        wrap->kids.push_back(std::move(block));
        return wrap;
      }
      return block;
    }
    if (AtSymbol("<")) {
      // Direct element constructor if '<' is glued to a name start char.
      size_t p = t.pos;
      std::string_view in = lex_.input();
      if (p + 1 < in.size() && IsNameStartChar(in[p + 1])) {
        return ParseDirectConstructor();
      }
      return Err("unexpected '<'");
    }
    if (t.kind == TokKind::kName) {
      // Computed constructors.
      const std::string& kw = t.text;
      if (kw == "element" || kw == "attribute") {
        if (Peek(1).kind == TokKind::kName || Peek(1).IsSymbol("{")) {
          return ParseComputedNamed(kw == "element"
                                        ? ExprKind::kComputedElement
                                        : ExprKind::kComputedAttribute);
        }
      }
      if (kw == "text" && Peek(1).IsSymbol("{")) {
        return ParseComputedSimple(ExprKind::kComputedText);
      }
      if (kw == "comment" && Peek(1).IsSymbol("{")) {
        return ParseComputedSimple(ExprKind::kComputedComment);
      }
      if (kw == "processing-instruction" &&
          (Peek(1).kind == TokKind::kName || Peek(1).IsSymbol("{"))) {
        return ParseComputedPI();
      }
      if ((kw == "ordered" || kw == "unordered") && Peek(1).IsSymbol("{")) {
        Next();
        Next();
        XQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        XQ_RETURN_NOT_OK(ExpectSymbol("}"));
        return inner;
      }
      // Function call?
      if (Peek(1).IsSymbol("(")) return ParseFunctionCall();
      return Err("unexpected name '" + kw + "' in expression");
    }
    return Err("unexpected token in expression");
  }

  Result<ExprPtr> ParseFunctionCall() {
    Token name_tok = Next();
    ExprPtr call = MakeExpr(ExprKind::kFunctionCall);
    call->source_pos = name_tok.pos;
    XQ_ASSIGN_OR_RETURN(call->qname,
                        ResolveLexical(name_tok.text, NameKind::kFunction));
    XQ_RETURN_NOT_OK(ExpectSymbol("("));
    if (!AtSymbol(")")) {
      while (true) {
        XQ_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
        call->kids.push_back(std::move(arg));
        if (!EatSymbol(",")) break;
      }
    }
    XQ_RETURN_NOT_OK(ExpectSymbol(")"));
    return call;
  }

  Result<ExprPtr> ParseComputedNamed(ExprKind kind) {
    Next();  // element / attribute
    ExprPtr e = MakeExpr(kind);
    if (Peek().kind == TokKind::kName) {
      XQ_ASSIGN_OR_RETURN(
          e->qname,
          ResolveLexical(Next().text, kind == ExprKind::kComputedElement
                                          ? NameKind::kElement
                                          : NameKind::kAttribute));
    } else {
      XQ_RETURN_NOT_OK(ExpectSymbol("{"));
      XQ_ASSIGN_OR_RETURN(ExprPtr name_expr, ParseExpr());
      XQ_RETURN_NOT_OK(ExpectSymbol("}"));
      e->kids.push_back(std::move(name_expr));
      e->str = "computed-name";
    }
    XQ_RETURN_NOT_OK(ExpectSymbol("{"));
    if (!AtSymbol("}")) {
      XQ_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
      e->kids.push_back(std::move(content));
    }
    XQ_RETURN_NOT_OK(ExpectSymbol("}"));
    return e;
  }

  Result<ExprPtr> ParseComputedSimple(ExprKind kind) {
    Next();  // text / comment
    ExprPtr e = MakeExpr(kind);
    XQ_RETURN_NOT_OK(ExpectSymbol("{"));
    if (!AtSymbol("}")) {
      XQ_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
      e->kids.push_back(std::move(content));
    }
    XQ_RETURN_NOT_OK(ExpectSymbol("}"));
    return e;
  }

  Result<ExprPtr> ParseComputedPI() {
    Next();  // processing-instruction
    ExprPtr e = MakeExpr(ExprKind::kComputedPI);
    if (Peek().kind == TokKind::kName) {
      e->str = Next().text;
    } else {
      return Err("computed PI requires a literal target");
    }
    XQ_RETURN_NOT_OK(ExpectSymbol("{"));
    if (!AtSymbol("}")) {
      XQ_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
      e->kids.push_back(std::move(content));
    }
    XQ_RETURN_NOT_OK(ExpectSymbol("}"));
    return e;
  }

  // ------------------------------------------------- direct constructor ---

  // Scans a direct element constructor from raw input. The lexer is
  // re-seeked past the constructor afterwards.
  Result<ExprPtr> ParseDirectConstructor() {
    size_t start = Peek().pos;
    lex_.RawSeek(start);
    raw_ = lex_.input();
    rpos_ = start;
    XQ_ASSIGN_OR_RETURN(auto node, ScanElement());
    lex_.RawSeek(rpos_);
    ExprPtr e = MakeExpr(ExprKind::kDirectElement);
    e->direct = std::move(node);
    return e;
  }

  bool RawEof() const { return rpos_ >= raw_.size(); }
  char RawPeek() const { return raw_[rpos_]; }
  bool RawLookingAt(std::string_view s) const {
    return raw_.size() - rpos_ >= s.size() && raw_.substr(rpos_, s.size()) == s;
  }
  void RawSkipWs() {
    while (!RawEof() && IsXmlWhitespace(RawPeek())) ++rpos_;
  }

  Result<std::string> ScanRawName() {
    if (RawEof() || !IsNameStartChar(RawPeek())) {
      return Status::SyntaxError("expected name in constructor at offset " +
                                 std::to_string(rpos_));
    }
    size_t s = rpos_;
    while (!RawEof() && (IsNameChar(RawPeek()) || RawPeek() == ':')) ++rpos_;
    return std::string(raw_.substr(s, rpos_ - s));
  }

  // Parses an enclosed expression starting at rpos_ (just after '{').
  Result<ExprPtr> ScanEnclosedExpr() {
    lex_.RawSeek(rpos_);
    XQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    if (!AtSymbol("}")) return Err("expected '}' after enclosed expression");
    Token close = Next();
    rpos_ = close.pos + 1;
    return inner;
  }

  Result<std::unique_ptr<DirectNode>> ScanElement() {
    assert(RawPeek() == '<');
    ++rpos_;
    XQ_ASSIGN_OR_RETURN(std::string raw_name, ScanRawName());
    auto node = std::make_unique<DirectNode>();
    node->kind = DirectNode::Kind::kElement;

    // Attributes (may declare namespaces used by this very element).
    std::vector<std::pair<std::string, DirectNode::Attr>> raw_attrs;
    std::vector<std::pair<std::string, std::string>> local_ns;
    while (true) {
      RawSkipWs();
      if (RawEof()) return Status::SyntaxError("unterminated constructor");
      if (RawPeek() == '>' || RawPeek() == '/') break;
      XQ_ASSIGN_OR_RETURN(std::string attr_name, ScanRawName());
      RawSkipWs();
      if (RawEof() || RawPeek() != '=') {
        return Status::SyntaxError("expected '=' in constructor attribute");
      }
      ++rpos_;
      RawSkipWs();
      if (RawEof() || (RawPeek() != '"' && RawPeek() != '\'')) {
        return Status::SyntaxError("expected quoted attribute value");
      }
      char quote = RawPeek();
      ++rpos_;
      DirectNode::Attr attr;
      std::string literal;
      bool is_ns_decl = attr_name == "xmlns" || StartsWith(attr_name, "xmlns:");
      std::string ns_literal;
      while (true) {
        if (RawEof()) return Status::SyntaxError("unterminated attribute");
        char c = RawPeek();
        if (c == quote) {
          if (rpos_ + 1 < raw_.size() && raw_[rpos_ + 1] == quote) {
            literal.push_back(quote);
            rpos_ += 2;
            continue;
          }
          ++rpos_;
          break;
        }
        if (c == '{') {
          if (rpos_ + 1 < raw_.size() && raw_[rpos_ + 1] == '{') {
            literal.push_back('{');
            rpos_ += 2;
            continue;
          }
          ++rpos_;
          if (!literal.empty()) {
            attr.parts.push_back({std::move(literal), nullptr});
            literal.clear();
          }
          XQ_ASSIGN_OR_RETURN(ExprPtr inner, ScanEnclosedExpr());
          attr.parts.push_back({"", std::move(inner)});
          continue;
        }
        if (c == '}') {
          if (rpos_ + 1 < raw_.size() && raw_[rpos_ + 1] == '}') {
            literal.push_back('}');
            rpos_ += 2;
            continue;
          }
          return Status::SyntaxError("'}' must be doubled in attributes");
        }
        if (c == '&') {
          size_t semi = raw_.find(';', rpos_);
          if (semi == std::string_view::npos) {
            return Status::SyntaxError("unterminated entity in attribute");
          }
          XQ_ASSIGN_OR_RETURN(
              std::string decoded,
              xml::DecodeEntities(raw_.substr(rpos_, semi - rpos_ + 1)));
          literal += decoded;
          rpos_ = semi + 1;
          continue;
        }
        literal.push_back(c);
        ++rpos_;
      }
      if (is_ns_decl) {
        ns_literal = literal;
        std::string prefix =
            attr_name == "xmlns" ? "" : attr_name.substr(6);
        local_ns.emplace_back(prefix, ns_literal);
      } else {
        if (!literal.empty()) {
          attr.parts.push_back({std::move(literal), nullptr});
        }
        raw_attrs.emplace_back(attr_name, std::move(attr));
      }
    }

    // Bring local namespace declarations into scope for name resolution.
    std::unordered_map<std::string, std::string> saved_ns = ns_;
    std::string saved_default = default_elem_ns_;
    for (auto& [prefix, uri] : local_ns) {
      if (prefix.empty()) {
        default_elem_ns_ = uri;
      } else {
        ns_[prefix] = uri;
      }
    }
    XQ_ASSIGN_OR_RETURN(node->name,
                        ResolveLexical(raw_name, NameKind::kElement));
    for (auto& [attr_raw, attr] : raw_attrs) {
      XQ_ASSIGN_OR_RETURN(attr.name,
                          ResolveLexical(attr_raw, NameKind::kAttribute));
      node->attrs.push_back(std::move(attr));
    }

    auto restore_ns = [&]() {
      ns_ = saved_ns;
      default_elem_ns_ = saved_default;
    };

    if (RawPeek() == '/') {
      ++rpos_;
      if (RawEof() || RawPeek() != '>') {
        restore_ns();
        return Status::SyntaxError("expected '>' in constructor");
      }
      ++rpos_;
      restore_ns();
      return node;
    }
    ++rpos_;  // '>'

    // Content.
    std::string text;
    auto flush_text = [&]() {
      // Boundary whitespace is stripped (XQuery default).
      if (text.empty()) return;
      if (!TrimWhitespace(text).empty()) {
        auto t = std::make_unique<DirectNode>();
        t->kind = DirectNode::Kind::kText;
        t->text = text;
        node->children.push_back(std::move(t));
      }
      text.clear();
    };

    while (true) {
      if (RawEof()) {
        restore_ns();
        return Status::SyntaxError("unterminated element constructor");
      }
      char c = RawPeek();
      if (c == '<') {
        if (RawLookingAt("</")) {
          flush_text();
          rpos_ += 2;
          XQ_ASSIGN_OR_RETURN(std::string end_name, ScanRawName());
          if (end_name != raw_name) {
            restore_ns();
            return Status::SyntaxError("mismatched constructor end tag </" +
                                       end_name + ">");
          }
          RawSkipWs();
          if (RawEof() || RawPeek() != '>') {
            restore_ns();
            return Status::SyntaxError("expected '>' after end tag");
          }
          ++rpos_;
          restore_ns();
          return node;
        }
        if (RawLookingAt("<!--")) {
          flush_text();
          size_t end = raw_.find("-->", rpos_ + 4);
          if (end == std::string_view::npos) {
            restore_ns();
            return Status::SyntaxError("unterminated comment");
          }
          auto cm = std::make_unique<DirectNode>();
          cm->kind = DirectNode::Kind::kComment;
          cm->text = std::string(raw_.substr(rpos_ + 4, end - rpos_ - 4));
          node->children.push_back(std::move(cm));
          rpos_ = end + 3;
          continue;
        }
        if (RawLookingAt("<![CDATA[")) {
          size_t end = raw_.find("]]>", rpos_ + 9);
          if (end == std::string_view::npos) {
            restore_ns();
            return Status::SyntaxError("unterminated CDATA");
          }
          // CDATA is literal text, never boundary-stripped.
          std::string cdata(raw_.substr(rpos_ + 9, end - rpos_ - 9));
          rpos_ = end + 3;
          if (!cdata.empty()) {
            flush_text();
            auto t = std::make_unique<DirectNode>();
            t->kind = DirectNode::Kind::kText;
            t->text = std::move(cdata);
            node->children.push_back(std::move(t));
          }
          continue;
        }
        if (RawLookingAt("<?")) {
          flush_text();
          size_t end = raw_.find("?>", rpos_ + 2);
          if (end == std::string_view::npos) {
            restore_ns();
            return Status::SyntaxError("unterminated PI");
          }
          auto pi = std::make_unique<DirectNode>();
          pi->kind = DirectNode::Kind::kPI;
          std::string content(raw_.substr(rpos_ + 2, end - rpos_ - 2));
          size_t sp = content.find(' ');
          pi->name = xml::QName(content.substr(0, sp));
          if (sp != std::string::npos) {
            pi->text = std::string(TrimWhitespace(content.substr(sp + 1)));
          }
          node->children.push_back(std::move(pi));
          rpos_ = end + 2;
          continue;
        }
        flush_text();
        XQ_ASSIGN_OR_RETURN(auto child, ScanElement());
        node->children.push_back(std::move(child));
        continue;
      }
      if (c == '{') {
        if (rpos_ + 1 < raw_.size() && raw_[rpos_ + 1] == '{') {
          text.push_back('{');
          rpos_ += 2;
          continue;
        }
        flush_text();
        ++rpos_;
        XQ_ASSIGN_OR_RETURN(ExprPtr inner, ScanEnclosedExpr());
        auto en = std::make_unique<DirectNode>();
        en->kind = DirectNode::Kind::kEnclosedExpr;
        en->expr = std::move(inner);
        node->children.push_back(std::move(en));
        continue;
      }
      if (c == '}') {
        if (rpos_ + 1 < raw_.size() && raw_[rpos_ + 1] == '}') {
          text.push_back('}');
          rpos_ += 2;
          continue;
        }
        restore_ns();
        return Status::SyntaxError("'}' must be escaped as '}}' in content");
      }
      if (c == '&') {
        size_t semi = raw_.find(';', rpos_);
        if (semi == std::string_view::npos) {
          restore_ns();
          return Status::SyntaxError("unterminated entity reference");
        }
        XQ_ASSIGN_OR_RETURN(
            std::string decoded,
            xml::DecodeEntities(raw_.substr(rpos_, semi - rpos_ + 1)));
        text += decoded;
        rpos_ = semi + 1;
        continue;
      }
      text.push_back(c);
      ++rpos_;
    }
  }

  // ---------------------------------------------------- FLWOR & friends ---

  Result<ExprPtr> ParseFLWOR() {
    ExprPtr e = MakeExpr(ExprKind::kFLWOR);
    while (AtName("for") || AtName("let")) {
      bool is_for = AtName("for");
      Next();
      while (true) {
        Clause clause;
        clause.kind = is_for ? Clause::Kind::kFor : Clause::Kind::kLet;
        clause.source_pos = Peek().pos;
        XQ_ASSIGN_OR_RETURN(clause.var, ParseVarName());
        if (EatName("as")) {
          XQ_RETURN_NOT_OK(ParseSequenceType().status());
        }
        if (is_for && EatName("at")) {
          XQ_ASSIGN_OR_RETURN(clause.pos_var, ParseVarName());
        }
        if (is_for) {
          XQ_RETURN_NOT_OK(ExpectName("in"));
        } else if (!EatSymbol(":=") && !EatSymbol("=")) {
          return Err("expected ':=' in let clause");
        }
        XQ_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
        e->clauses.push_back(std::move(clause));
        if (!EatSymbol(",")) break;
      }
    }
    if (EatName("where")) {
      XQ_ASSIGN_OR_RETURN(e->where, ParseExprSingle());
    }
    if (AtName("order") && Peek(1).IsName("by")) {
      Next();
      Next();
      while (true) {
        OrderSpec spec;
        XQ_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
        if (EatName("ascending")) {
        } else if (EatName("descending")) {
          spec.descending = true;
        }
        if (EatName("empty")) {
          if (EatName("greatest")) spec.empty_greatest = true;
          else XQ_RETURN_NOT_OK(ExpectName("least"));
        }
        e->order_specs.push_back(std::move(spec));
        if (!EatSymbol(",")) break;
      }
    } else if (AtName("stable") && Peek(1).IsName("order")) {
      Next();
      Next();
      XQ_RETURN_NOT_OK(ExpectName("by"));
      while (true) {
        OrderSpec spec;
        XQ_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
        if (EatName("descending")) spec.descending = true;
        else EatName("ascending");
        e->order_specs.push_back(std::move(spec));
        if (!EatSymbol(",")) break;
      }
    }
    XQ_RETURN_NOT_OK(ExpectName("return"));
    XQ_ASSIGN_OR_RETURN(ExprPtr ret, ParseExprSingle());
    e->kids.push_back(std::move(ret));
    return e;
  }

  Result<ExprPtr> ParseTypeswitch() {
    Next();  // typeswitch
    XQ_RETURN_NOT_OK(ExpectSymbol("("));
    ExprPtr e = MakeExpr(ExprKind::kTypeswitch);
    XQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    XQ_RETURN_NOT_OK(ExpectSymbol(")"));
    e->kids.push_back(std::move(operand));
    while (AtName("case")) {
      Next();
      Clause clause;
      clause.source_pos = Peek().pos;
      if (Peek().kind == TokKind::kVariable) {
        XQ_ASSIGN_OR_RETURN(clause.var, ParseVarName());
        XQ_RETURN_NOT_OK(ExpectName("as"));
      }
      SequenceType st;
      XQ_ASSIGN_OR_RETURN(st, ParseSequenceType());
      XQ_RETURN_NOT_OK(ExpectName("return"));
      XQ_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
      e->clauses.push_back(std::move(clause));
      e->case_types.push_back(st);
    }
    if (e->clauses.empty()) {
      return Err("typeswitch requires at least one case clause");
    }
    XQ_RETURN_NOT_OK(ExpectName("default"));
    if (Peek().kind == TokKind::kVariable) {
      XQ_ASSIGN_OR_RETURN(e->qname, ParseVarName());
    }
    XQ_RETURN_NOT_OK(ExpectName("return"));
    XQ_ASSIGN_OR_RETURN(ExprPtr dflt, ParseExprSingle());
    e->kids.push_back(std::move(dflt));
    return e;
  }

  Result<ExprPtr> ParseQuantified() {
    ExprPtr e = MakeExpr(ExprKind::kQuantified);
    e->quant_every = AtName("every");
    Next();
    while (true) {
      Clause clause;
      clause.kind = Clause::Kind::kFor;
      clause.source_pos = Peek().pos;
      XQ_ASSIGN_OR_RETURN(clause.var, ParseVarName());
      if (EatName("as")) {
        XQ_RETURN_NOT_OK(ParseSequenceType().status());
      }
      XQ_RETURN_NOT_OK(ExpectName("in"));
      XQ_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
      e->clauses.push_back(std::move(clause));
      if (!EatSymbol(",")) break;
    }
    XQ_RETURN_NOT_OK(ExpectName("satisfies"));
    XQ_ASSIGN_OR_RETURN(ExprPtr test, ParseExprSingle());
    e->kids.push_back(std::move(test));
    return e;
  }

  Result<ExprPtr> ParseIf() {
    Next();  // if
    XQ_RETURN_NOT_OK(ExpectSymbol("("));
    ExprPtr e = MakeExpr(ExprKind::kIf);
    XQ_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    XQ_RETURN_NOT_OK(ExpectSymbol(")"));
    XQ_RETURN_NOT_OK(ExpectName("then"));
    XQ_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExprSingle());
    XQ_RETURN_NOT_OK(ExpectName("else"));
    XQ_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExprSingle());
    e->kids.push_back(std::move(cond));
    e->kids.push_back(std::move(then_e));
    e->kids.push_back(std::move(else_e));
    return e;
  }

  // ------------------------------------------------------------ updates ---

  Result<ExprPtr> ParseInsert() {
    Next();  // insert
    Next();  // node | nodes
    ExprPtr e = MakeExpr(ExprKind::kInsert);
    XQ_ASSIGN_OR_RETURN(ExprPtr source, ParseExprSingle());
    if (EatName("into")) {
      e->insert_mode = InsertMode::kInto;
    } else if (AtName("as")) {
      Next();
      if (EatName("first")) {
        e->insert_mode = InsertMode::kAsFirstInto;
      } else {
        XQ_RETURN_NOT_OK(ExpectName("last"));
        e->insert_mode = InsertMode::kAsLastInto;
      }
      XQ_RETURN_NOT_OK(ExpectName("into"));
    } else if (EatName("before")) {
      e->insert_mode = InsertMode::kBefore;
    } else if (EatName("after")) {
      e->insert_mode = InsertMode::kAfter;
    } else {
      return Err("expected into/before/after in insert expression");
    }
    XQ_ASSIGN_OR_RETURN(ExprPtr target, ParseExprSingle());
    e->kids.push_back(std::move(source));
    e->kids.push_back(std::move(target));
    return e;
  }

  Result<ExprPtr> ParseDelete() {
    Next();  // delete
    Next();  // node | nodes
    ExprPtr e = MakeExpr(ExprKind::kDelete);
    XQ_ASSIGN_OR_RETURN(ExprPtr target, ParseExprSingle());
    e->kids.push_back(std::move(target));
    return e;
  }

  Result<ExprPtr> ParseReplace() {
    Next();  // replace
    ExprPtr e = MakeExpr(ExprKind::kReplace);
    if (EatName("value")) {
      XQ_RETURN_NOT_OK(ExpectName("of"));
      e->replace_value_of = true;
      // The paper's examples write "replace value of //x" without the
      // standard "node" keyword (§4.4); accept both.
      EatName("node");
    } else {
      XQ_RETURN_NOT_OK(ExpectName("node"));
    }
    XQ_ASSIGN_OR_RETURN(ExprPtr target, ParseExprSingle());
    XQ_RETURN_NOT_OK(ExpectName("with"));
    XQ_ASSIGN_OR_RETURN(ExprPtr source, ParseExprSingle());
    e->kids.push_back(std::move(target));
    e->kids.push_back(std::move(source));
    return e;
  }

  Result<ExprPtr> ParseRename() {
    Next();  // rename
    Next();  // node
    ExprPtr e = MakeExpr(ExprKind::kRename);
    XQ_ASSIGN_OR_RETURN(ExprPtr target, ParseExprSingle());
    XQ_RETURN_NOT_OK(ExpectName("as"));
    XQ_ASSIGN_OR_RETURN(ExprPtr name, ParseExprSingle());
    e->kids.push_back(std::move(target));
    e->kids.push_back(std::move(name));
    return e;
  }

  Result<ExprPtr> ParseTransform() {
    Next();  // copy
    ExprPtr e = MakeExpr(ExprKind::kTransform);
    XQ_ASSIGN_OR_RETURN(e->qname, ParseVarName());
    if (!EatSymbol(":=")) return Err("expected ':=' in copy clause");
    XQ_ASSIGN_OR_RETURN(ExprPtr source, ParseExprSingle());
    XQ_RETURN_NOT_OK(ExpectName("modify"));
    XQ_ASSIGN_OR_RETURN(ExprPtr modify, ParseExprSingle());
    XQ_RETURN_NOT_OK(ExpectName("return"));
    XQ_ASSIGN_OR_RETURN(ExprPtr ret, ParseExprSingle());
    e->kids.push_back(std::move(source));
    e->kids.push_back(std::move(modify));
    e->kids.push_back(std::move(ret));
    return e;
  }

  // --------------------------------------------------- browser extension ---

  Result<ExprPtr> ParseEventAttach() {
    Next();  // on
    Next();  // event
    ExprPtr e = MakeExpr(ExprKind::kEventAttach);
    XQ_ASSIGN_OR_RETURN(ExprPtr event_name, ParseExprSingle());
    if (EatName("behind")) {
      e->behind = true;
    } else {
      XQ_RETURN_NOT_OK(ExpectName("at"));
    }
    XQ_ASSIGN_OR_RETURN(ExprPtr target, ParseExprSingle());
    bool detach = false;
    if (EatName("attach")) {
    } else if (EatName("detach")) {
      detach = true;
    } else {
      return Err("expected 'attach' or 'detach'");
    }
    XQ_RETURN_NOT_OK(ExpectName("listener"));
    if (Peek().kind != TokKind::kName) return Err("expected listener name");
    std::string raw = Next().text;
    if (raw.find(':') == std::string::npos) raw = "local:" + raw;
    XQ_ASSIGN_OR_RETURN(e->qname, ResolveLexical(raw, NameKind::kFunction));
    e->kids.push_back(std::move(event_name));
    e->kids.push_back(std::move(target));
    if (detach) e->kind = ExprKind::kEventDetach;
    return e;
  }

  Result<ExprPtr> ParseEventTrigger() {
    Next();  // trigger
    Next();  // event
    ExprPtr e = MakeExpr(ExprKind::kEventTrigger);
    XQ_ASSIGN_OR_RETURN(ExprPtr event_name, ParseExprSingle());
    XQ_RETURN_NOT_OK(ExpectName("at"));
    XQ_ASSIGN_OR_RETURN(ExprPtr target, ParseExprSingle());
    e->kids.push_back(std::move(event_name));
    e->kids.push_back(std::move(target));
    return e;
  }

  Result<ExprPtr> ParseSetStyle() {
    Next();  // set
    Next();  // style
    ExprPtr e = MakeExpr(ExprKind::kSetStyle);
    XQ_ASSIGN_OR_RETURN(ExprPtr property, ParseExprSingle());
    XQ_RETURN_NOT_OK(ExpectName("of"));
    // The target parses below RangeExpr so the "to" keyword of this
    // production is not swallowed as a range operator.
    XQ_ASSIGN_OR_RETURN(ExprPtr target, ParseAdditive());
    XQ_RETURN_NOT_OK(ExpectName("to"));
    XQ_ASSIGN_OR_RETURN(ExprPtr value, ParseExprSingle());
    e->kids.push_back(std::move(property));
    e->kids.push_back(std::move(target));
    e->kids.push_back(std::move(value));
    return e;
  }

  Result<ExprPtr> ParseGetStyle() {
    Next();  // get
    Next();  // style
    ExprPtr e = MakeExpr(ExprKind::kGetStyle);
    XQ_ASSIGN_OR_RETURN(ExprPtr property, ParseExprSingle());
    XQ_RETURN_NOT_OK(ExpectName("of"));
    XQ_ASSIGN_OR_RETURN(ExprPtr target, ParseExprSingle());
    e->kids.push_back(std::move(property));
    e->kids.push_back(std::move(target));
    return e;
  }

  // ------------------------------------------------------ sequence types ---

  Result<SequenceType> ParseSequenceType() {
    SequenceType st;
    st.declared = true;
    if (AtName("empty-sequence") && Peek(1).IsSymbol("(")) {
      Next();
      Next();
      XQ_RETURN_NOT_OK(ExpectSymbol(")"));
      st.item = SequenceType::ItemKind::kEmptySequence;
      return st;
    }
    if (Peek().kind != TokKind::kName) return Err("expected a type name");
    std::string raw = Next().text;
    if (AtSymbol("(")) {
      Next();
      // Generic kind tests; inner name tests accepted and ignored.
      while (!AtSymbol(")") && Peek().kind != TokKind::kEof) Next();
      XQ_RETURN_NOT_OK(ExpectSymbol(")"));
      if (raw == "item") st.item = SequenceType::ItemKind::kAnyItem;
      else if (raw == "node") st.item = SequenceType::ItemKind::kAnyNode;
      else if (raw == "element") st.item = SequenceType::ItemKind::kElement;
      else if (raw == "attribute") st.item = SequenceType::ItemKind::kAttribute;
      else if (raw == "text") st.item = SequenceType::ItemKind::kText;
      else if (raw == "document-node") {
        st.item = SequenceType::ItemKind::kDocument;
      } else {
        return Err("unknown kind test '" + raw + "'");
      }
    } else {
      st.item = SequenceType::ItemKind::kAtomic;
      XQ_ASSIGN_OR_RETURN(xml::QName q, ResolveLexical(raw, NameKind::kType));
      XQ_ASSIGN_OR_RETURN(st.atomic, AtomicTypeFromQName(q));
    }
    if (AtSymbol("?")) {
      Next();
      st.occ = SequenceType::Occurrence::kOptional;
    } else if (AtSymbol("*")) {
      Next();
      st.occ = SequenceType::Occurrence::kStar;
    } else if (AtSymbol("+")) {
      Next();
      st.occ = SequenceType::Occurrence::kPlus;
    }
    return st;
  }

  Result<xdm::AtomicType> AtomicTypeFromQName(const xml::QName& q) {
    if (q.ns() != xml::kXsNamespace) {
      return Err("unknown type " + q.Lexical());
    }
    const std::string& n = q.local();
    using AT = xdm::AtomicType;
    if (n == "string") return AT::kString;
    if (n == "boolean") return AT::kBoolean;
    if (n == "integer" || n == "int" || n == "long" || n == "short") {
      return AT::kInteger;
    }
    if (n == "decimal") return AT::kDecimal;
    if (n == "double" || n == "float") return AT::kDouble;
    if (n == "untypedAtomic") return AT::kUntypedAtomic;
    if (n == "anyURI") return AT::kAnyUri;
    if (n == "QName") return AT::kQName;
    if (n == "dateTime") return AT::kDateTime;
    if (n == "date") return AT::kDate;
    if (n == "time") return AT::kTime;
    if (n == "dayTimeDuration" || n == "duration") return AT::kDayTimeDuration;
    if (n == "anyAtomicType") return AT::kUntypedAtomic;
    return Err("unsupported xs type xs:" + n);
  }

  Lexer lex_;
  Module* module_ = nullptr;
  std::unordered_map<std::string, std::string> ns_;
  std::string default_elem_ns_;
  // Raw-scan state for direct constructors.
  std::string_view raw_;
  size_t rpos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Module>> ParseModule(std::string_view query) {
  ParserImpl parser(query);
  return parser.ParseModuleAll();
}

Result<std::unique_ptr<Module>> ParseExpression(std::string_view expr) {
  return ParseModule(expr);
}

}  // namespace xqib::xquery
