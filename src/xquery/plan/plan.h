// Compiled query plans (ROADMAP open item 2): user-declared function
// bodies are lowered once into a flat, register-addressed bytecode form
// — the algebra-style "compile, then run operators" split of the
// Tout-XML mediation architecture — so a memo-miss listener dispatch
// executes a linear op array instead of tree-walking the AST.
//
// Layering: the compiler consumes the optimizer's annotated AST and the
// analyzer's facts (cardinality/purity) and emits specialized opcodes;
// the executor runs over the same xdm::Sequence values, value_ops
// kernels, and pending-update builders as the tree walker, which is
// what keeps the tree walker a valid oracle (EvalOptions::
// compiled_plans=false). Anything the compiler does not lower natively
// falls back per-subtree to Evaluator::Eval, with plan-held register
// variables re-bound into the environment first — fallbacks are always
// correct, only slower.
//
// Plans are cached process-wide in PlanCache, keyed on the static
// context's plan_source_hash with its plan_fingerprint as validator:
// identical page scripts across pages (or sessions) share one compiled
// plan set, and a same-source probe whose fingerprint differs (changed
// library module, namespaces, options) invalidates the stale entry.

#ifndef XQIB_XQUERY_PLAN_PLAN_H_
#define XQIB_XQUERY_PLAN_PLAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "xdm/item.h"
#include "xquery/ast.h"
#include "xquery/context.h"

namespace xqib::xquery {
class Evaluator;
namespace analysis {
struct AnalysisFacts;
}  // namespace analysis
}  // namespace xqib::xquery

namespace xqib::xquery::plan {

// One flat instruction. Operands address the frame's Sequence registers
// (dst/a/b); imm indexes a side pool (consts/names/exprs/fns), carries
// the jump target, or encodes the operator sub-code.
enum class OpCode : uint8_t {
  kLoadConst,    // regs[dst] = consts[imm]
  kMove,         // regs[dst] = regs[a]
  kLoadGlobal,   // regs[dst] = env.Lookup(names[imm])
  kLoadContext,  // regs[dst] = { focus item } (XPDY0002 when absent)
  kConcat,       // regs[dst] = regs[a] .. regs[a+b-1] concatenated
  kRange,        // regs[dst] = integers regs[a] to regs[b]
  kArith,        // regs[dst] = regs[a] <ArithOp imm> regs[b]
  kArithInt,     // same, singleton-integer specialization (guarded)
  kArithUnary,   // regs[dst] = <ArithOp imm> regs[a]
  kCompare,      // regs[dst] = regs[a] <CompOp imm> regs[b]
  kEbv,          // regs[dst] = { boolean EBV(regs[a]) }
  kJump,         // pc = imm
  kJumpIfFalse,  // if (!EBV(regs[a])) pc = imm
  kJumpIfTrue,   // if (EBV(regs[a]))  pc = imm
  kIterInit,     // iters[dst] = begin(regs[a])   (regs[a] pinned while live)
  kIterNext,     // regs[dst] = next item of iters[a]; exhausted -> pc = imm
  kIterPos,      // regs[dst] = { Integer(1-based position of iters[a]) }
  kAppend,       // regs[dst] += regs[a]
  kClear,        // regs[dst] = ()   (keeps capacity)
  kCallPlan,     // regs[dst] = execute fns[imm](regs[a] .. regs[a+b-1])
  kCallDyn,      // regs[dst] = ev.CallFunction(names[imm], a..a+b-1)
  kPathIndexed,  // regs[dst] = //name via element-name index; exprs[imm]
                 //             is the path for the non-indexed fallback
  kCountIndexed, // regs[dst] = { Integer(|bucket|) }; exprs[imm] is the
                 //             count(...) call for the fallback
  kBindEnv,      // env.Bind(names[imm], regs[a])  (fallback free vars)
  kEvalExpr,     // regs[dst] = ev.Eval(*exprs[imm], ctx)  (tree fallback)
  kInsert,       // BuildInsert(mode=imm, source=regs[a], target=regs[b])
  kDelete,       // BuildDelete(targets=regs[a])
  kReplace,      // BuildReplace(value_of=imm, target=regs[a], src=regs[b])
  kRename,       // BuildRename(target=regs[a], name=regs[b])
  kReturn,       // return regs[a]
};

struct Op {
  OpCode code;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  int32_t imm = 0;
};

// A compiled function body. Holds shared ownership of its declaration:
// exprs/steps fallback pointers live in the decl's AST, so a cached plan
// stays valid after the page (and StaticContext) that compiled it is
// gone — interned QName tokens are process-wide, so identical text in a
// new page resolves to the same tokens and reuses this plan.
struct FunctionPlan {
  std::shared_ptr<const FunctionDecl> decl;
  std::vector<Op> ops;
  std::vector<xdm::Sequence> consts;
  std::vector<xml::QName> names;
  std::vector<const Expr*> exprs;
  uint16_t num_regs = 0;    // params occupy regs [0, num_params)
  uint16_t num_iters = 0;
  uint16_t num_params = 0;
  bool uses_env = false;    // frame pushes a barrier scope for kBindEnv
  bool updating = false;
  size_t bytes = 0;         // approximate code + pool footprint
  // Deterministic per-op listing with specialization annotations,
  // rendered by xq_lint --plan / xq_repl :plan.
  std::vector<std::string> listing;
};

// All plans compiled from one static context, indexed by interned name
// token + arity (kCallPlan binds callees by position in fns).
struct ModulePlans {
  struct Key {
    const xml::InternedName* name;
    size_t arity;
    friend bool operator==(const Key& x, const Key& y) {
      return x.name == y.name && x.arity == y.arity;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept {
      return std::hash<const void*>{}(k.name) * 31 + k.arity;
    }
  };

  std::vector<std::unique_ptr<FunctionPlan>> fns;
  std::unordered_map<Key, size_t, KeyHash> index;
  size_t total_bytes = 0;

  const FunctionPlan* Find(const xml::InternedName* name,
                           size_t arity) const {
    auto it = index.find(Key{name, arity});
    return it == index.end() ? nullptr : fns[it->second].get();
  }
};

// Lowers every non-external user function registered in `sctx`. `facts`
// is optional and only adds specializations (never changes semantics —
// every fact-driven opcode keeps a dynamic guard).
std::shared_ptr<const ModulePlans> CompileModulePlans(
    const StaticContext& sctx, const analysis::AnalysisFacts* facts);

// Executes a compiled function frame: `args` become registers
// [0, num_params). The caller (Evaluator::CallFunction) owns the
// recursion-depth guard and the exit-flag takeover, mirroring the tree
// path exactly.
Result<xdm::Sequence> ExecutePlan(const FunctionPlan& fp,
                                  const ModulePlans& plans,
                                  std::vector<xdm::Sequence> args,
                                  Evaluator& ev, DynamicContext& ctx);

// Deterministic dump of every compiled plan, functions ordered by Clark
// name + arity.
std::string DumpModulePlans(const ModulePlans& plans);

// CLI helper (xq_lint --plan, xq_repl :plan): parse + analyze +
// optimize + compile a standalone module and dump its plans.
Result<std::string> DumpPlansForQuery(const std::string& source);

// Process-wide plan cache. Key: plan_source_hash of the non-library
// module text. Validator: plan_fingerprint. Thread-safe; racing
// compilers may both compile, the first Insert wins and the loser
// adopts the winner's plans.
class PlanCache {
 public:
  static PlanCache& Global();

  // Entry present with matching fingerprint -> its plans. Present with
  // a different fingerprint -> the stale entry is erased, *invalidated
  // is set, and null returns (the caller recompiles). Absent -> null.
  std::shared_ptr<const ModulePlans> Probe(uint64_t source_hash,
                                           uint64_t fingerprint,
                                           bool* invalidated);
  std::shared_ptr<const ModulePlans> Insert(
      uint64_t source_hash, uint64_t fingerprint,
      std::shared_ptr<const ModulePlans> plans);

  size_t size() const;
  void Clear();  // test isolation

  // Cache-level accounting, distinct from the per-evaluator plan
  // counters in EvalStats: with N page sessions sharing this cache the
  // per-evaluator numbers fragment across sessions, while these stay
  // whole-process — the page server's `:sessions` / GET /server/sessions
  // introspection reads them. hits/misses/invalidations are cumulative;
  // resident_bytes tracks live entries only.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  // fingerprint-mismatch evictions
    uint64_t inserts = 0;        // entries actually stored (races adopt)
    uint64_t resident_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    uint64_t fingerprint;
    std::shared_ptr<const ModulePlans> plans;
  };
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> map_;
  Stats stats_;  // guarded by mu_
};

}  // namespace xqib::xquery::plan

#endif  // XQIB_XQUERY_PLAN_PLAN_H_
