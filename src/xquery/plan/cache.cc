// Process-wide plan cache and the deterministic plan dump used by
// xq_lint --plan / xq_repl :plan.

#include <memory>
#include <string>
#include <utility>

#include "xquery/analysis/analyzer.h"
#include "xquery/optimizer.h"
#include "xquery/parser.h"
#include "xquery/plan/plan.h"

namespace xqib::xquery::plan {

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const ModulePlans> PlanCache::Probe(uint64_t source_hash,
                                                    uint64_t fingerprint,
                                                    bool* invalidated) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(source_hash);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.fingerprint != fingerprint) {
    // Same page text, different static context (library module,
    // namespaces, options changed): the cached plans are stale.
    stats_.resident_bytes -= it->second.plans->total_bytes;
    ++stats_.invalidations;
    ++stats_.misses;
    map_.erase(it);
    if (invalidated != nullptr) *invalidated = true;
    return nullptr;
  }
  ++stats_.hits;
  return it->second.plans;
}

std::shared_ptr<const ModulePlans> PlanCache::Insert(
    uint64_t source_hash, uint64_t fingerprint,
    std::shared_ptr<const ModulePlans> plans) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.try_emplace(source_hash);
  if (inserted || it->second.fingerprint != fingerprint) {
    if (!inserted) stats_.resident_bytes -= it->second.plans->total_bytes;
    it->second = Entry{fingerprint, std::move(plans)};
    ++stats_.inserts;
    stats_.resident_bytes += it->second.plans->total_bytes;
    return it->second.plans;
  }
  // A racing compiler won: adopt its plans so every evaluator with this
  // key executes the same objects.
  return it->second.plans;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  stats_.resident_bytes = 0;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string DumpModulePlans(const ModulePlans& plans) {
  std::string out;
  for (const auto& fp : plans.fns) {
    out += "plan " + fp->decl->name.Clark() + "#" +
           std::to_string(fp->num_params);
    out += " regs=" + std::to_string(fp->num_regs);
    out += " iters=" + std::to_string(fp->num_iters);
    if (fp->updating) out += " [updating]";
    if (fp->uses_env) out += " [env]";
    out += "\n";
    for (const std::string& line : fp->listing) {
      out += "  " + line + "\n";
    }
  }
  if (plans.fns.empty()) out = "no user-declared functions\n";
  return out;
}

Result<std::string> DumpPlansForQuery(const std::string& source) {
  // The same pipeline a page script goes through: parse, analyze,
  // optimize with the inferred facts, register, compile.
  XQ_ASSIGN_OR_RETURN(std::unique_ptr<Module> module, ParseModule(source));
  analysis::Analyzer analyzer{analysis::AnalyzerOptions()};
  analysis::AnalysisResult analyzed = analyzer.Analyze(*module);
  OptimizeModule(module.get(), OptimizerOptions(), &analyzed.facts);
  StaticContext sctx;
  sctx.AddModule(*module);
  std::shared_ptr<const ModulePlans> plans =
      CompileModulePlans(sctx, &analyzed.facts);
  return DumpModulePlans(*plans);
}

}  // namespace xqib::xquery::plan
