// Plan compiler: lowers optimizer-annotated function bodies into the
// flat register form of plan.h. Lowering is total — any construct
// outside the native subset becomes a per-subtree kEvalExpr fallback
// (preceded by kBindEnv ops for the plan-held variables the subtree may
// reference), so compilation never fails and never changes semantics.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "xquery/analysis/facts.h"
#include "xquery/federation.h"
#include "xquery/plan/plan.h"
#include "xquery/profiler.h"

namespace xqib::xquery::plan {

namespace {

using xdm::Item;
using xdm::Sequence;

constexpr uint16_t kMaxRegs = 4096;  // lowering bails to fallback past this

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "div";
    case ArithOp::kIDiv: return "idiv";
    case ArithOp::kMod: return "mod";
  }
  return "?";
}

const char* CompOpName(CompOp op) {
  switch (op) {
    case CompOp::kGenEq: return "=";
    case CompOp::kGenNe: return "!=";
    case CompOp::kGenLt: return "<";
    case CompOp::kGenLe: return "<=";
    case CompOp::kGenGt: return ">";
    case CompOp::kGenGe: return ">=";
    case CompOp::kValEq: return "eq";
    case CompOp::kValNe: return "ne";
    case CompOp::kValLt: return "lt";
    case CompOp::kValLe: return "le";
    case CompOp::kValGt: return "gt";
    case CompOp::kValGe: return "ge";
    case CompOp::kIs: return "is";
    case CompOp::kPrecedes: return "<<";
    case CompOp::kFollows: return ">>";
  }
  return "?";
}

// Compiles one function body. Registers are allocated monotonically (a
// body is at most a few hundred nodes); loop bodies re-execute over the
// same fixed registers, which is what makes warm iterations
// allocation-free — a register's Sequence keeps its capacity.
class FunctionCompiler {
 public:
  FunctionCompiler(const StaticContext& sctx,
                   const analysis::AnalysisFacts* facts,
                   const ModulePlans& plans, FunctionPlan* fp)
      : sctx_(sctx), facts_(facts), plans_(plans), fp_(fp) {}

  void Compile() {
    const FunctionDecl& decl = *fp_->decl;
    fp_->num_params = static_cast<uint16_t>(decl.params.size());
    fp_->updating = decl.updating;
    for (const Param& p : decl.params) {
      scope_.emplace_back(p.name, AllocReg());
    }
    uint16_t result = CompileExpr(*decl.body);
    if (overflow_) {
      // Register budget exceeded: restart as a trivial whole-body
      // fallback (params into the environment, one tree-walk op).
      ops_.clear();
      notes_.clear();
      next_reg_ = static_cast<uint16_t>(decl.params.size());
      next_iter_ = 0;
      uses_env_ = true;
      for (size_t i = 0; i < decl.params.size(); ++i) {
        Emit(OpCode::kBindEnv, 0, static_cast<uint16_t>(i), 0,
             NameIndex(decl.params[i].name));
      }
      result = AllocReg();
      Emit(OpCode::kEvalExpr, result, 0, 0, ExprIndex(decl.body.get()),
           "whole-body fallback (register budget)");
    }
    Emit(OpCode::kReturn, 0, result, 0, 0);
    fp_->num_regs = next_reg_;
    fp_->num_iters = next_iter_;
    fp_->uses_env = uses_env_;
    RenderListing();
    fp_->bytes = fp_->ops.size() * sizeof(Op) + fp_->consts.size() * 48 +
                 fp_->names.size() * 16 + fp_->exprs.size() * 8;
    for (const std::string& line : fp_->listing) fp_->bytes += line.size();
  }

 private:
  // --- emission ---

  size_t Emit(OpCode code, uint16_t dst, uint16_t a, uint16_t b, int32_t imm,
              std::string note = std::string()) {
    ops_.push_back(Op{code, dst, a, b, imm});
    notes_.push_back(std::move(note));
    return ops_.size() - 1;
  }
  void Patch(size_t op_idx, int32_t target) {
    ops_[op_idx].imm = target;
  }
  int32_t Here() const { return static_cast<int32_t>(ops_.size()); }

  uint16_t AllocReg() {
    if (next_reg_ >= kMaxRegs) {
      overflow_ = true;
      return 0;
    }
    return next_reg_++;
  }
  uint16_t AllocIter() { return next_iter_++; }

  int32_t ConstIndex(Sequence value) {
    fp_->consts.push_back(std::move(value));
    return static_cast<int32_t>(fp_->consts.size() - 1);
  }
  int32_t NameIndex(const xml::QName& name) {
    fp_->names.push_back(name);
    return static_cast<int32_t>(fp_->names.size() - 1);
  }
  int32_t ExprIndex(const Expr* e) {
    fp_->exprs.push_back(e);
    return static_cast<int32_t>(fp_->exprs.size() - 1);
  }

  // --- facts ---

  bool ProvenSingleton(const Expr& e) const {
    if (facts_ == nullptr) return false;
    auto it = facts_->cardinality.find(&e);
    return it != facts_->cardinality.end() && it->second.IsSingleton();
  }
  bool ProvenPure(const xml::QName& name, size_t arity) const {
    return facts_ != nullptr &&
           facts_->pure_functions.count(
               analysis::AnalysisFacts::FunctionKey(name.Clark(), arity)) > 0;
  }

  // --- fallback ---

  // Re-binds every plan-held variable into the (barrier) environment
  // scope, innermost shadowing last, then tree-walks the subtree.
  uint16_t Fallback(const Expr& e, const char* why) {
    uses_env_ = true;
    for (const auto& [name, reg] : scope_) {
      Emit(OpCode::kBindEnv, 0, reg, 0, NameIndex(name));
    }
    uint16_t dst = AllocReg();
    std::string note = "eval " + DescribeExpr(e);
    if (why[0] != '\0') note += std::string(" (") + why + ")";
    Emit(OpCode::kEvalExpr, dst, 0, 0, ExprIndex(&e), std::move(note));
    return dst;
  }

  // --- lowering ---

  uint16_t CompileExpr(const Expr& e) {
    if (overflow_) return 0;
    switch (e.kind) {
      case ExprKind::kLiteral: {
        uint16_t dst = AllocReg();
        Emit(OpCode::kLoadConst, dst, 0, 0,
             ConstIndex(Sequence{Item::Atomic(e.atom)}),
             e.atom.ToXPathString().substr(0, 24));
        return dst;
      }
      case ExprKind::kVarRef: {
        const xml::InternedName* token = e.qname.token();
        for (size_t i = scope_.size(); i-- > 0;) {
          if (scope_[i].first.token() == token) return scope_[i].second;
        }
        uses_env_ = true;
        uint16_t dst = AllocReg();
        Emit(OpCode::kLoadGlobal, dst, 0, 0, NameIndex(e.qname),
             "$" + e.qname.Lexical());
        return dst;
      }
      case ExprKind::kContextItem: {
        uint16_t dst = AllocReg();
        Emit(OpCode::kLoadContext, dst, 0, 0, 0);
        return dst;
      }
      case ExprKind::kEnclosed:
        return CompileExpr(*e.kids[0]);
      case ExprKind::kSequence:
        return CompileSequence(e);
      case ExprKind::kRange: {
        uint16_t lo = CompileExpr(*e.kids[0]);
        uint16_t hi = CompileExpr(*e.kids[1]);
        uint16_t dst = AllocReg();
        Emit(OpCode::kRange, dst, lo, hi, 0);
        return dst;
      }
      case ExprKind::kUnary: {
        uint16_t v = CompileExpr(*e.kids[0]);
        uint16_t dst = AllocReg();
        Emit(OpCode::kArithUnary, dst, v, 0,
             static_cast<int32_t>(e.arith_op),
             std::string("unary ") + ArithOpName(e.arith_op));
        return dst;
      }
      case ExprKind::kArith: {
        uint16_t lhs = CompileExpr(*e.kids[0]);
        uint16_t rhs = CompileExpr(*e.kids[1]);
        uint16_t dst = AllocReg();
        bool specialize =
            ProvenSingleton(*e.kids[0]) && ProvenSingleton(*e.kids[1]);
        Emit(specialize ? OpCode::kArithInt : OpCode::kArith, dst, lhs, rhs,
             static_cast<int32_t>(e.arith_op),
             std::string(ArithOpName(e.arith_op)) +
                 (specialize ? " !singleton-int" : ""));
        return dst;
      }
      case ExprKind::kComparison: {
        uint16_t lhs = CompileExpr(*e.kids[0]);
        uint16_t rhs = CompileExpr(*e.kids[1]);
        uint16_t dst = AllocReg();
        bool singleton =
            ProvenSingleton(*e.kids[0]) && ProvenSingleton(*e.kids[1]);
        Emit(OpCode::kCompare, dst, lhs, rhs,
             static_cast<int32_t>(e.comp_op),
             std::string(CompOpName(e.comp_op)) +
                 (singleton ? " card=1:1" : ""));
        return dst;
      }
      case ExprKind::kLogical:
        return CompileLogical(e);
      case ExprKind::kIf:
        return CompileIf(e);
      case ExprKind::kPath:
        return CompilePath(e);
      case ExprKind::kFLWOR:
        return CompileFlwor(e);
      case ExprKind::kFunctionCall:
        return CompileCall(e);
      case ExprKind::kInsert: {
        uint16_t source = CompileExpr(*e.kids[0]);
        uint16_t target = CompileExpr(*e.kids[1]);
        uint16_t dst = AllocReg();
        Emit(OpCode::kInsert, dst, source, target,
             static_cast<int32_t>(e.insert_mode));
        return dst;
      }
      case ExprKind::kDelete: {
        uint16_t targets = CompileExpr(*e.kids[0]);
        uint16_t dst = AllocReg();
        Emit(OpCode::kDelete, dst, targets, 0, 0);
        return dst;
      }
      case ExprKind::kReplace: {
        uint16_t target = CompileExpr(*e.kids[0]);
        uint16_t source = CompileExpr(*e.kids[1]);
        uint16_t dst = AllocReg();
        Emit(OpCode::kReplace, dst, target, source,
             e.replace_value_of ? 1 : 0,
             e.replace_value_of ? "value of" : "node");
        return dst;
      }
      case ExprKind::kRename: {
        uint16_t target = CompileExpr(*e.kids[0]);
        uint16_t name = CompileExpr(*e.kids[1]);
        uint16_t dst = AllocReg();
        Emit(OpCode::kRename, dst, target, name, 0);
        return dst;
      }
      default:
        // Quantified / typeswitch / constructors / casts / set ops /
        // full-text / transform / scripting / browser extensions:
        // correct via the tree walker, one fallback op per subtree.
        return Fallback(e, "");
    }
  }

  uint16_t CompileSequence(const Expr& e) {
    uint16_t dst = AllocReg();
    if (e.kids.empty()) {
      Emit(OpCode::kClear, dst, 0, 0, 0);
      return dst;
    }
    if (e.kids.size() == 1) return CompileExpr(*e.kids[0]);
    std::vector<uint16_t> parts;
    parts.reserve(e.kids.size());
    for (const ExprPtr& kid : e.kids) parts.push_back(CompileExpr(*kid));
    // kConcat reads a consecutive register block; copy the parts in.
    uint16_t base = next_reg_;
    for (uint16_t part : parts) Emit(OpCode::kMove, AllocReg(), part, 0, 0);
    Emit(OpCode::kConcat, dst, base, static_cast<uint16_t>(parts.size()), 0);
    return dst;
  }

  uint16_t CompileLogical(const Expr& e) {
    uint16_t lhs = CompileExpr(*e.kids[0]);
    uint16_t dst = AllocReg();
    size_t shortcut = Emit(e.logical_and ? OpCode::kJumpIfFalse
                                         : OpCode::kJumpIfTrue,
                           0, lhs, 0, 0, e.logical_and ? "and" : "or");
    uint16_t rhs = CompileExpr(*e.kids[1]);
    Emit(OpCode::kEbv, dst, rhs, 0, 0);
    size_t done = Emit(OpCode::kJump, 0, 0, 0, 0);
    Patch(shortcut, Here());
    Emit(OpCode::kLoadConst, dst, 0, 0,
         ConstIndex(Sequence{Item::Boolean(!e.logical_and)}),
         e.logical_and ? "false" : "true");
    Patch(done, Here());
    return dst;
  }

  uint16_t CompileIf(const Expr& e) {
    uint16_t cond = CompileExpr(*e.kids[0]);
    uint16_t dst = AllocReg();
    size_t to_else = Emit(OpCode::kJumpIfFalse, 0, cond, 0, 0, "if");
    uint16_t then_r = CompileExpr(*e.kids[1]);
    Emit(OpCode::kMove, dst, then_r, 0, 0);
    size_t done = Emit(OpCode::kJump, 0, 0, 0, 0);
    Patch(to_else, Here());
    uint16_t else_r = CompileExpr(*e.kids[2]);
    Emit(OpCode::kMove, dst, else_r, 0, 0);
    Patch(done, Here());
    return dst;
  }

  // Whole-tree descendant name steps (//span) lower to a direct
  // element-name-index probe; the step's ordering annotations make the
  // sort elision static. Anything else tree-walks (and still hits the
  // evaluator's own index/stream fast paths).
  uint16_t CompilePath(const Expr& e) {
    bool indexable =
        e.kids.empty() && e.steps.size() == 1 &&
        e.steps[0].predicates.empty() &&
        (e.steps[0].axis == Axis::kDescendant ||
         e.steps[0].axis == Axis::kDescendantOrSelf) &&
        (e.steps[0].test.kind == NodeTest::Kind::kName ||
         e.steps[0].test.kind == NodeTest::Kind::kElement) &&
        !e.steps[0].test.any_name && !e.steps[0].test.any_ns &&
        !e.steps[0].test.any_local && !e.steps[0].test.name.local().empty();
    if (!indexable) return Fallback(e, "");
    uint16_t dst = AllocReg();
    std::string note = DescribeExpr(e) + " [indexed";
    if (e.steps[0].preserves_order && e.steps[0].no_duplicates) {
      note += ", ordered dup-free";
    }
    note += "]";
    Emit(OpCode::kPathIndexed, dst, 0, 0, ExprIndex(&e), std::move(note));
    return dst;
  }

  uint16_t CompileFlwor(const Expr& e) {
    if (!e.order_specs.empty()) return Fallback(e, "order by");
    // Federated loops stay on the tree walker: that is where the
    // scatter-gather prefetch hook lives, and the remote round trips
    // dominate whatever a register loop would save.
    if (federation::ContainsFabricCall(e)) return Fallback(e, "federated");
    for (const Clause& c : e.clauses) {
      if (c.kind != Clause::Kind::kFor && c.kind != Clause::Kind::kLet) {
        return Fallback(e, "clause kind");
      }
    }
    uint16_t acc = AllocReg();
    Emit(OpCode::kClear, acc, 0, 0, 0, "flwor accumulator");
    size_t scope_mark = scope_.size();
    CompileClauses(e, 0, acc);
    scope_.resize(scope_mark);
    return acc;
  }

  // Recursive clause expansion: each `for` opens an iterator loop, each
  // `let` assigns its register per tuple; the innermost body guards on
  // `where` and appends the return expression to the accumulator.
  void CompileClauses(const Expr& e, size_t i, uint16_t acc) {
    if (overflow_) return;
    if (i == e.clauses.size()) {
      size_t skip = 0;
      bool has_where = e.where != nullptr;
      if (has_where) {
        uint16_t w = CompileExpr(*e.where);
        skip = Emit(OpCode::kJumpIfFalse, 0, w, 0, 0, "where");
      }
      uint16_t ret = CompileExpr(*e.kids[0]);
      Emit(OpCode::kAppend, acc, ret, 0, 0);
      if (has_where) Patch(skip, Here());
      return;
    }
    const Clause& c = e.clauses[i];
    if (c.kind == Clause::Kind::kLet) {
      uint16_t value = CompileExpr(*c.expr);
      scope_.emplace_back(c.var, value);
      CompileClauses(e, i + 1, acc);
      scope_.pop_back();
      return;
    }
    uint16_t source = CompileExpr(*c.expr);
    uint16_t it = AllocIter();
    uint16_t var = AllocReg();
    Emit(OpCode::kIterInit, it, source, 0, 0,
         "for $" + c.var.Lexical());
    size_t next = Emit(OpCode::kIterNext, var, it, 0, 0);
    scope_.emplace_back(c.var, var);
    bool positional = !c.pos_var.local().empty();
    if (positional) {
      uint16_t pos = AllocReg();
      Emit(OpCode::kIterPos, pos, it, 0, 0, "at $" + c.pos_var.Lexical());
      scope_.emplace_back(c.pos_var, pos);
    }
    CompileClauses(e, i + 1, acc);
    if (positional) scope_.pop_back();
    scope_.pop_back();
    Emit(OpCode::kJump, 0, 0, 0, static_cast<int32_t>(next));
    Patch(next, Here());
  }

  uint16_t CompileCall(const Expr& e) {
    size_t arity = e.kids.size();
    const FunctionDecl* fn = sctx_.FindFunction(e.qname, arity);
    bool pure = ProvenPure(e.qname, arity);
    std::string label = e.qname.Lexical() + "#" + std::to_string(arity) +
                        (pure ? " [pure]" : "");

    // fn:count over an indexable whole-tree step: answered from the
    // bucket size (kCountIndexed), tree fallback otherwise.
    if (fn == nullptr && e.qname.ns() == xml::kFnNamespace &&
        e.qname.local() == "count" && arity == 1 &&
        e.kids[0]->kind == ExprKind::kPath && e.kids[0]->kids.empty() &&
        e.kids[0]->steps.size() == 1 &&
        e.kids[0]->steps[0].predicates.empty()) {
      uint16_t dst = AllocReg();
      Emit(OpCode::kCountIndexed, dst, 0,
           static_cast<uint16_t>(NameIndex(e.qname)), ExprIndex(&e),
           "count(" + DescribeExpr(*e.kids[0]) + ") [indexed]");
      return dst;
    }

    std::vector<uint16_t> parts;
    parts.reserve(arity);
    for (const ExprPtr& kid : e.kids) parts.push_back(CompileExpr(*kid));
    uint16_t base = next_reg_;
    for (uint16_t part : parts) Emit(OpCode::kMove, AllocReg(), part, 0, 0);
    uint16_t dst = AllocReg();

    if (fn != nullptr && !fn->external) {
      auto it = plans_.index.find(
          ModulePlans::Key{e.qname.token(), arity});
      if (it != plans_.index.end()) {
        Emit(OpCode::kCallPlan, dst, base, static_cast<uint16_t>(arity),
             static_cast<int32_t>(it->second), "plan " + label);
        return dst;
      }
    }
    // Builtins, externals, and unresolved names: one dynamic dispatch
    // through Evaluator::CallFunction (itself keyed on interned tokens).
    Emit(OpCode::kCallDyn, dst, base, static_cast<uint16_t>(arity),
         NameIndex(e.qname), "dyn " + label);
    return dst;
  }

  // --- listing ---

  void RenderListing() {
    fp_->ops = std::move(ops_);
    fp_->listing.reserve(fp_->ops.size());
    for (size_t i = 0; i < fp_->ops.size(); ++i) {
      const Op& op = fp_->ops[i];
      char head[64];
      std::snprintf(head, sizeof(head), "%3zu: %-13s ", i, OpName(op.code));
      std::string line = head;
      line += Operands(op);
      if (!notes_[i].empty()) line += "  ; " + notes_[i];
      fp_->listing.push_back(std::move(line));
    }
  }

  static const char* OpName(OpCode code) {
    switch (code) {
      case OpCode::kLoadConst: return "load.const";
      case OpCode::kMove: return "move";
      case OpCode::kLoadGlobal: return "load.global";
      case OpCode::kLoadContext: return "load.ctx";
      case OpCode::kConcat: return "concat";
      case OpCode::kRange: return "range";
      case OpCode::kArith: return "arith";
      case OpCode::kArithInt: return "arith.int";
      case OpCode::kArithUnary: return "arith.unary";
      case OpCode::kCompare: return "compare";
      case OpCode::kEbv: return "ebv";
      case OpCode::kJump: return "jump";
      case OpCode::kJumpIfFalse: return "jump.false";
      case OpCode::kJumpIfTrue: return "jump.true";
      case OpCode::kIterInit: return "iter.init";
      case OpCode::kIterNext: return "iter.next";
      case OpCode::kIterPos: return "iter.pos";
      case OpCode::kAppend: return "append";
      case OpCode::kClear: return "clear";
      case OpCode::kCallPlan: return "call.plan";
      case OpCode::kCallDyn: return "call.dyn";
      case OpCode::kPathIndexed: return "path.indexed";
      case OpCode::kCountIndexed: return "count.indexed";
      case OpCode::kBindEnv: return "bind.env";
      case OpCode::kEvalExpr: return "eval";
      case OpCode::kInsert: return "upd.insert";
      case OpCode::kDelete: return "upd.delete";
      case OpCode::kReplace: return "upd.replace";
      case OpCode::kRename: return "upd.rename";
      case OpCode::kReturn: return "return";
    }
    return "?";
  }

  static std::string Operands(const Op& op) {
    auto r = [](uint16_t reg) { return "r" + std::to_string(reg); };
    switch (op.code) {
      case OpCode::kLoadConst:
        return r(op.dst) + " <- const[" + std::to_string(op.imm) + "]";
      case OpCode::kMove:
      case OpCode::kEbv:
        return r(op.dst) + " <- " + r(op.a);
      case OpCode::kLoadGlobal:
        return r(op.dst) + " <- name[" + std::to_string(op.imm) + "]";
      case OpCode::kLoadContext:
        return r(op.dst) + " <- .";
      case OpCode::kConcat:
        return r(op.dst) + " <- " + r(op.a) + ".." +
               r(static_cast<uint16_t>(op.a + op.b - 1));
      case OpCode::kRange:
        return r(op.dst) + " <- " + r(op.a) + " to " + r(op.b);
      case OpCode::kArith:
      case OpCode::kArithInt:
      case OpCode::kCompare:
        return r(op.dst) + " <- " + r(op.a) + " " + r(op.b);
      case OpCode::kArithUnary:
        return r(op.dst) + " <- " + r(op.a);
      case OpCode::kJump:
        return "-> " + std::to_string(op.imm);
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue:
        return r(op.a) + " -> " + std::to_string(op.imm);
      case OpCode::kIterInit:
        return "it" + std::to_string(op.dst) + " <- " + r(op.a);
      case OpCode::kIterNext:
        return r(op.dst) + " <- it" + std::to_string(op.a) + " else -> " +
               std::to_string(op.imm);
      case OpCode::kIterPos:
        return r(op.dst) + " <- pos it" + std::to_string(op.a);
      case OpCode::kAppend:
        return r(op.dst) + " += " + r(op.a);
      case OpCode::kClear:
        return r(op.dst) + " <- ()";
      case OpCode::kCallPlan:
        return r(op.dst) + " <- fns[" + std::to_string(op.imm) + "](" +
               std::to_string(op.b) + " args at " + r(op.a) + ")";
      case OpCode::kCallDyn:
        return r(op.dst) + " <- name[" + std::to_string(op.imm) + "](" +
               std::to_string(op.b) + " args at " + r(op.a) + ")";
      case OpCode::kPathIndexed:
      case OpCode::kCountIndexed:
      case OpCode::kEvalExpr:
        return r(op.dst) + " <- expr[" + std::to_string(op.imm) + "]";
      case OpCode::kBindEnv:
        return "name[" + std::to_string(op.imm) + "] <- " + r(op.a);
      case OpCode::kInsert:
        return r(op.a) + " into " + r(op.b);
      case OpCode::kDelete:
        return r(op.a);
      case OpCode::kReplace:
      case OpCode::kRename:
        return r(op.a) + " with " + r(op.b);
      case OpCode::kReturn:
        return r(op.a);
    }
    return "";
  }

  const StaticContext& sctx_;
  const analysis::AnalysisFacts* facts_;
  const ModulePlans& plans_;
  FunctionPlan* fp_;

  std::vector<Op> ops_;
  std::vector<std::string> notes_;  // parallel to ops_
  std::vector<std::pair<xml::QName, uint16_t>> scope_;
  uint16_t next_reg_ = 0;
  uint16_t next_iter_ = 0;
  bool uses_env_ = false;
  bool overflow_ = false;
};

}  // namespace

std::shared_ptr<const ModulePlans> CompileModulePlans(
    const StaticContext& sctx, const analysis::AnalysisFacts* facts) {
  auto plans = std::make_shared<ModulePlans>();
  // Pass 1: assign indices (AllFunctions is deterministically sorted),
  // so kCallPlan can bind mutually recursive callees by position.
  for (const auto& fn : sctx.AllFunctions()) {
    if (fn->external || fn->body == nullptr) continue;
    auto fp = std::make_unique<FunctionPlan>();
    fp->decl = fn;
    plans->index[ModulePlans::Key{fn->name.token(), fn->params.size()}] =
        plans->fns.size();
    plans->fns.push_back(std::move(fp));
  }
  // Pass 2: lower bodies.
  for (const auto& fp : plans->fns) {
    FunctionCompiler(sctx, facts, *plans, fp.get()).Compile();
    plans->total_bytes += fp->bytes;
  }
  return plans;
}

}  // namespace xqib::xquery::plan
