// Plan executor: a linear dispatch loop over the flat op array. One
// frame is one std::vector of Sequence registers — loop bodies re-run
// over the same registers, so warm iterations reuse every buffer's
// capacity. All value semantics come from the same valueops kernels the
// tree walker calls, which keeps compiled_plans=false a bit-for-bit
// oracle.

#include <utility>
#include <vector>

#include "xdm/item.h"
#include "xquery/evaluator.h"
#include "xquery/plan/plan.h"
#include "xquery/profiler.h"
#include "xquery/value_ops.h"

namespace xqib::xquery::plan {

// Friend-forwarders into the Evaluator's private fast-path machinery
// (the EvaluatorStreams idiom): the executor reuses the element-name
// index probes and counter mirrors instead of duplicating them.
struct PlanEvaluatorAccess {
  static Result<xdm::Sequence> PathInput(Evaluator& ev, const Expr& e,
                                         DynamicContext& ctx) {
    return ev.PathInput(e, ctx);
  }
  static bool TryIndexedStep(Evaluator& ev, const Step& step,
                             const xdm::Sequence& current,
                             xdm::Sequence* out) {
    return ev.TryIndexedStep(step, current, out);
  }
  static bool TryFastCount(Evaluator& ev, const Expr& arg,
                           DynamicContext& ctx, int64_t* out) {
    return ev.TryFastCount(arg, ctx, out);
  }
  static const Evaluator::EvalOptions& Options(const Evaluator& ev) {
    return ev.options_;
  }
  static Evaluator::EvalStats& Stats(Evaluator& ev) { return ev.stats_; }
  static bool Exited(const Evaluator& ev) { return ev.exit_flag_; }
};

namespace {

using xdm::AtomicType;
using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;

using Access = PlanEvaluatorAccess;

// Sequence iterator state: points into a register that stays untouched
// while the iterator is live (the compiler never reuses a loop's source
// register inside its body).
struct IterState {
  const Sequence* seq = nullptr;
  size_t pos = 0;  // 1-based position of the item most recently yielded
};

// Singleton assignment that keeps the register's capacity.
void AssignSingle(Sequence* reg, Item item) {
  reg->clear();
  reg->push_back(std::move(item));
}

Result<Sequence> Run(const FunctionPlan& fp, const ModulePlans& plans,
                     std::vector<Sequence>* regs, Evaluator& ev,
                     DynamicContext& ctx) {
  std::vector<IterState> iters(fp.num_iters);
  size_t pc = 0;
  while (true) {
    const Op& op = fp.ops[pc];
    switch (op.code) {
      case OpCode::kLoadConst:
        (*regs)[op.dst] = fp.consts[op.imm];
        break;
      case OpCode::kMove:
        (*regs)[op.dst] = (*regs)[op.a];
        break;
      case OpCode::kLoadGlobal: {
        XQ_ASSIGN_OR_RETURN((*regs)[op.dst],
                            ctx.env().Lookup(fp.names[op.imm]));
        break;
      }
      case OpCode::kLoadContext: {
        if (!ctx.focus().has_item) {
          return Status::Error("XPDY0002", "context item is undefined");
        }
        AssignSingle(&(*regs)[op.dst], ctx.focus().item);
        break;
      }
      case OpCode::kConcat: {
        Sequence& dst = (*regs)[op.dst];
        dst.clear();
        for (uint16_t i = 0; i < op.b; ++i) {
          Sequence& part = (*regs)[op.a + i];
          dst.insert(dst.end(), std::make_move_iterator(part.begin()),
                     std::make_move_iterator(part.end()));
        }
        break;
      }
      case OpCode::kRange: {
        const Sequence& lo_seq = (*regs)[op.a];
        const Sequence& hi_seq = (*regs)[op.b];
        Sequence& dst = (*regs)[op.dst];
        dst.clear();
        if (lo_seq.empty() || hi_seq.empty()) break;
        XQ_ASSIGN_OR_RETURN(AtomicValue lo_a,
                            valueops::RequireSingleAtomic(lo_seq, "range"));
        XQ_ASSIGN_OR_RETURN(AtomicValue hi_a,
                            valueops::RequireSingleAtomic(hi_seq, "range"));
        XQ_ASSIGN_OR_RETURN(int64_t lo, lo_a.ToInteger());
        XQ_ASSIGN_OR_RETURN(int64_t hi, hi_a.ToInteger());
        if (hi >= lo) dst.reserve(static_cast<size_t>(hi - lo + 1));
        for (int64_t v = lo; v <= hi; ++v) dst.push_back(Item::Integer(v));
        ev.CountMaterialized(ctx, dst.size());
        break;
      }
      case OpCode::kArithInt: {
        // Fact-specialized, dynamically guarded: singleton integers take
        // the allocation-free inline path, anything else falls through
        // to the generic kernel.
        const Sequence& l = (*regs)[op.a];
        const Sequence& r = (*regs)[op.b];
        if (l.size() == 1 && r.size() == 1 && !l[0].is_node() &&
            !r[0].is_node() &&
            l[0].atomic().type() == AtomicType::kInteger &&
            r[0].atomic().type() == AtomicType::kInteger) {
          int64_t x = l[0].atomic().int_value();
          int64_t y = r[0].atomic().int_value();
          ArithOp aop = static_cast<ArithOp>(op.imm);
          bool inlined = true;
          int64_t v = 0;
          switch (aop) {
            case ArithOp::kAdd: v = x + y; break;
            case ArithOp::kSub: v = x - y; break;
            case ArithOp::kMul: v = x * y; break;
            case ArithOp::kIDiv:
            case ArithOp::kMod:
              if (y == 0) {
                return Status::Error("FOAR0001", aop == ArithOp::kMod
                                                     ? "integer modulo by zero"
                                                     : "integer division by "
                                                       "zero");
              }
              v = aop == ArithOp::kMod ? x % y : x / y;
              break;
            case ArithOp::kDiv:
              // Non-exact division produces a decimal: generic kernel.
              inlined = y != 0 && x % y == 0;
              if (y == 0) {
                return Status::Error("FOAR0001", "integer division by zero");
              }
              v = inlined ? x / y : 0;
              break;
          }
          if (inlined) {
            AssignSingle(&(*regs)[op.dst], Item::Integer(v));
            break;
          }
        }
        XQ_ASSIGN_OR_RETURN(
            (*regs)[op.dst],
            valueops::ArithSequences(static_cast<ArithOp>(op.imm), l, r));
        break;
      }
      case OpCode::kArith: {
        XQ_ASSIGN_OR_RETURN(
            (*regs)[op.dst],
            valueops::ArithSequences(static_cast<ArithOp>(op.imm),
                                     (*regs)[op.a], (*regs)[op.b]));
        break;
      }
      case OpCode::kArithUnary: {
        XQ_ASSIGN_OR_RETURN(
            (*regs)[op.dst],
            valueops::ArithUnary(static_cast<ArithOp>(op.imm),
                                 (*regs)[op.a]));
        break;
      }
      case OpCode::kCompare: {
        XQ_ASSIGN_OR_RETURN(
            (*regs)[op.dst],
            valueops::CompareSequences(static_cast<CompOp>(op.imm),
                                       (*regs)[op.a], (*regs)[op.b]));
        break;
      }
      case OpCode::kEbv: {
        XQ_ASSIGN_OR_RETURN(bool v,
                            xdm::EffectiveBooleanValue((*regs)[op.a]));
        AssignSingle(&(*regs)[op.dst], Item::Boolean(v));
        break;
      }
      case OpCode::kJump:
        pc = static_cast<size_t>(op.imm);
        continue;
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue: {
        XQ_ASSIGN_OR_RETURN(bool v,
                            xdm::EffectiveBooleanValue((*regs)[op.a]));
        if (v == (op.code == OpCode::kJumpIfTrue)) {
          pc = static_cast<size_t>(op.imm);
          continue;
        }
        break;
      }
      case OpCode::kIterInit:
        iters[op.dst] = IterState{&(*regs)[op.a], 0};
        break;
      case OpCode::kIterNext: {
        IterState& it = iters[op.a];
        if (it.pos >= it.seq->size()) {
          pc = static_cast<size_t>(op.imm);
          continue;
        }
        AssignSingle(&(*regs)[op.dst], (*it.seq)[it.pos]);
        ++it.pos;
        break;
      }
      case OpCode::kIterPos:
        AssignSingle(&(*regs)[op.dst],
                     Item::Integer(static_cast<int64_t>(iters[op.a].pos)));
        break;
      case OpCode::kAppend: {
        const Sequence& src = (*regs)[op.a];
        Sequence& dst = (*regs)[op.dst];
        dst.insert(dst.end(), src.begin(), src.end());
        break;
      }
      case OpCode::kClear:
        (*regs)[op.dst].clear();
        break;
      case OpCode::kCallPlan: {
        if (++ctx.call_depth > DynamicContext::kMaxCallDepth) {
          --ctx.call_depth;
          const FunctionPlan& callee = *plans.fns[op.imm];
          return Status::DynamicError(
              "XQIB0002", "maximum recursion depth exceeded in " +
                              callee.decl->name.Lexical());
        }
        std::vector<Sequence> args;
        args.reserve(op.b);
        for (uint16_t i = 0; i < op.b; ++i) {
          args.push_back(std::move((*regs)[op.a + i]));
        }
        Result<Sequence> r =
            ExecutePlan(*plans.fns[op.imm], plans, std::move(args), ev, ctx);
        --ctx.call_depth;
        if (!r.ok()) return r.status();
        // "exit with" terminates the callee: the call yields the exit
        // value, mirroring the tree walker's function-call boundary.
        (*regs)[op.dst] = Access::Exited(ev) ? ev.TakeExitValue()
                                             : std::move(*r);
        ++Access::Stats(ev).plan_hits;
        if (ctx.profiler != nullptr) {
          ++ctx.profiler->fast_path().plan_hits;
        }
        break;
      }
      case OpCode::kCallDyn: {
        std::vector<Sequence> args;
        args.reserve(op.b);
        for (uint16_t i = 0; i < op.b; ++i) {
          args.push_back(std::move((*regs)[op.a + i]));
        }
        XQ_ASSIGN_OR_RETURN(
            (*regs)[op.dst],
            ev.CallFunction(fp.names[op.imm], std::move(args), ctx));
        break;
      }
      case OpCode::kPathIndexed: {
        const Expr& path = *fp.exprs[op.imm];
        bool hit = false;
        if (Access::Options(ev).use_name_index) {
          XQ_ASSIGN_OR_RETURN(Sequence origin,
                              Access::PathInput(ev, path, ctx));
          if (Access::TryIndexedStep(ev, path.steps[0], origin,
                                     &(*regs)[op.dst])) {
            hit = true;
            Evaluator::EvalStats& stats = Access::Stats(ev);
            ++stats.name_index_hits;
            ++stats.sorts_elided;
            if (ctx.profiler != nullptr) {
              ++ctx.profiler->fast_path().name_index_hits;
              ++ctx.profiler->fast_path().sorts_elided;
            }
          }
        }
        if (!hit) {
          XQ_ASSIGN_OR_RETURN((*regs)[op.dst], ev.Eval(path, ctx));
        }
        break;
      }
      case OpCode::kCountIndexed: {
        const Expr& call = *fp.exprs[op.imm];
        int64_t n = 0;
        // Runtime re-check of the shadowing the compiler could not rule
        // out statically: a host external registered under fn:count.
        if (Access::Options(ev).use_name_index &&
            ctx.FindExternal(fp.names[op.b], 1) == nullptr &&
            Access::TryFastCount(ev, *call.kids[0], ctx, &n)) {
          AssignSingle(&(*regs)[op.dst], Item::Integer(n));
          break;
        }
        XQ_ASSIGN_OR_RETURN((*regs)[op.dst], ev.Eval(call, ctx));
        break;
      }
      case OpCode::kBindEnv: {
        // A bind run re-establishes the plan's in-scope variables for
        // the single kEvalExpr that follows it; its own scope keeps
        // repeated fallbacks (loops) from growing the environment.
        ctx.env().PushScope();
        size_t j = pc;
        while (fp.ops[j].code == OpCode::kBindEnv) {
          ctx.env().Bind(fp.names[fp.ops[j].imm], (*regs)[fp.ops[j].a]);
          ++j;
        }
        const Op& eval_op = fp.ops[j];
        Result<Sequence> r = ev.Eval(*fp.exprs[eval_op.imm], ctx);
        ctx.env().PopScope();
        if (!r.ok()) return r.status();
        (*regs)[eval_op.dst] = std::move(*r);
        if (Access::Exited(ev)) return Sequence{};
        pc = j + 1;
        continue;
      }
      case OpCode::kEvalExpr: {
        XQ_ASSIGN_OR_RETURN((*regs)[op.dst],
                            ev.Eval(*fp.exprs[op.imm], ctx));
        if (Access::Exited(ev)) return Sequence{};
        break;
      }
      case OpCode::kInsert: {
        XQ_RETURN_NOT_OK(valueops::BuildInsert(
            static_cast<InsertMode>(op.imm), (*regs)[op.a], (*regs)[op.b],
            &ctx.pul()));
        (*regs)[op.dst].clear();
        break;
      }
      case OpCode::kDelete: {
        XQ_RETURN_NOT_OK(valueops::BuildDelete((*regs)[op.a], &ctx.pul()));
        (*regs)[op.dst].clear();
        break;
      }
      case OpCode::kReplace: {
        XQ_RETURN_NOT_OK(valueops::BuildReplace(
            op.imm != 0, (*regs)[op.a], (*regs)[op.b], &ctx.pul()));
        (*regs)[op.dst].clear();
        break;
      }
      case OpCode::kRename: {
        XQ_RETURN_NOT_OK(valueops::BuildRename((*regs)[op.a], (*regs)[op.b],
                                               &ctx.pul()));
        (*regs)[op.dst].clear();
        break;
      }
      case OpCode::kReturn:
        return std::move((*regs)[op.a]);
    }
    ++pc;
  }
}

}  // namespace

Result<xdm::Sequence> ExecutePlan(const FunctionPlan& fp,
                                  const ModulePlans& plans,
                                  std::vector<xdm::Sequence> args,
                                  Evaluator& ev, DynamicContext& ctx) {
  std::vector<Sequence> regs(fp.num_regs);
  for (size_t i = 0; i < args.size() && i < fp.num_params; ++i) {
    regs[i] = std::move(args[i]);
  }
  // Frames that touch the environment (globals / fallbacks) get the
  // same barrier scope a tree-walked call would: caller locals hidden,
  // globals visible. Register-only frames skip even that.
  if (!fp.uses_env) return Run(fp, plans, &regs, ev, ctx);
  ctx.env().PushScope(/*barrier=*/true);
  Result<Sequence> r = Run(fp, plans, &regs, ev, ctx);
  ctx.env().PopScope();
  return r;
}

}  // namespace xqib::xquery::plan
