#include "xquery/update.h"

#include <unordered_set>

namespace xqib::xquery {

Status PendingUpdateList::CheckCompatibility() const {
  // XUDY0015: two renames of the same node; XUDY0016: two replaces of the
  // same node; XUDY0017: two replace-values of the same node.
  std::unordered_set<xml::Node*> renamed, replaced, value_replaced;
  for (const Primitive& p : primitives_) {
    switch (p.kind) {
      case Kind::kRename:
        if (!renamed.insert(p.target).second) {
          return Status::Error("XUDY0015",
                               "node is renamed by more than one primitive "
                               "in the same snapshot");
        }
        break;
      case Kind::kReplaceNode:
        if (!replaced.insert(p.target).second) {
          return Status::Error("XUDY0016",
                               "node is replaced by more than one primitive "
                               "in the same snapshot");
        }
        break;
      case Kind::kReplaceValue:
      case Kind::kReplaceElementContent:
        if (!value_replaced.insert(p.target).second) {
          return Status::Error("XUDY0017",
                               "node value is replaced by more than one "
                               "primitive in the same snapshot");
        }
        break;
      default:
        break;
    }
  }
  return Status();
}

Status PendingUpdateList::ApplyAll(xml::DomDelta* delta) {
  if (delta == nullptr || primitives_.empty()) return ApplyAll();
  // One apply pass may touch several documents (copied content is always
  // target-document-local, but distinct primitives can target distinct
  // documents); capture on each so the emitted delta covers the pass.
  std::unordered_set<xml::Document*> docs;
  for (const Primitive& p : primitives_) {
    if (p.target != nullptr) docs.insert(p.target->document());
  }
  for (xml::Document* d : docs) d->BeginDeltaCapture(delta);
  Status st = ApplyAll();
  for (xml::Document* d : docs) d->EndDeltaCapture();
  return st;
}

Status PendingUpdateList::ApplyAll() {
  // XQUF snapshot semantics make this a mandatory materialization
  // boundary for the streaming pipeline: every primitive's target and
  // content sequences were fully materialized when the primitive was
  // appended, so no lazy ItemStream can observe the tree mid-mutation.
  XQ_RETURN_NOT_OK(CheckCompatibility());

  // Pre-validate structural requirements so application is all-or-
  // nothing: no primitive runs if any primitive would fail.
  for (const Primitive& p : primitives_) {
    switch (p.kind) {
      case Kind::kInsertBefore:
      case Kind::kInsertAfter:
        if (p.target->parent() == nullptr) {
          return Status::Error("XUDY0029",
                               "insert before/after target has no parent");
        }
        break;
      case Kind::kReplaceNode:
        if (p.target->parent() == nullptr) {
          return Status::Error("XUDY0009", "replace target has no parent");
        }
        break;
      default:
        break;
    }
  }

  // Spec application order: inserts/renames first, then replaces, element
  // content replacement, and deletes last, so that targets referenced by
  // several primitives are still attached when each primitive runs.
  auto apply_phase = [&](auto pred) -> Status {
    for (Primitive& p : primitives_) {
      if (!pred(p.kind)) continue;
      switch (p.kind) {
        case Kind::kInsertInto:
        case Kind::kInsertLast:
          for (xml::Node* n : p.content) {
            if (n->is_attribute()) {
              p.target->AttachAttribute(n);
            } else {
              p.target->AppendChild(n);
            }
          }
          break;
        case Kind::kInsertFirst: {
          xml::Node* anchor =
              p.target->children().empty() ? nullptr : p.target->children()[0];
          for (xml::Node* n : p.content) {
            if (n->is_attribute()) {
              p.target->AttachAttribute(n);
            } else {
              p.target->InsertBefore(n, anchor);
            }
          }
          break;
        }
        case Kind::kInsertBefore: {
          xml::Node* parent = p.target->parent();
          if (parent == nullptr) {
            return Status::Error("XUDY0029",
                                 "insert before/after target has no parent");
          }
          for (xml::Node* n : p.content) parent->InsertBefore(n, p.target);
          break;
        }
        case Kind::kInsertAfter: {
          xml::Node* parent = p.target->parent();
          if (parent == nullptr) {
            return Status::Error("XUDY0029",
                                 "insert before/after target has no parent");
          }
          xml::Node* anchor = p.target;
          for (xml::Node* n : p.content) {
            parent->InsertAfter(n, anchor);
            anchor = n;
          }
          break;
        }
        case Kind::kInsertAttributes:
          for (xml::Node* n : p.content) p.target->AttachAttribute(n);
          break;
        case Kind::kRename:
          p.target->Rename(p.name);
          break;
        case Kind::kReplaceValue:
          p.target->SetValue(p.value);
          break;
        case Kind::kReplaceElementContent:
          p.target->SetValue(p.value);
          break;
        case Kind::kReplaceNode: {
          xml::Node* parent = p.target->parent();
          if (parent == nullptr) {
            return Status::Error("XUDY0009",
                                 "replace target has no parent");
          }
          if (p.target->is_attribute()) {
            xml::Node* owner = parent;
            p.target->Detach();
            for (xml::Node* n : p.content) owner->AttachAttribute(n);
          } else {
            for (xml::Node* n : p.content) parent->InsertBefore(n, p.target);
            parent->RemoveChild(p.target);
          }
          break;
        }
        case Kind::kDelete:
          p.target->Detach();
          break;
      }
    }
    return Status();
  };

  XQ_RETURN_NOT_OK(apply_phase([](Kind k) {
    return k == Kind::kInsertInto || k == Kind::kInsertLast ||
           k == Kind::kInsertFirst || k == Kind::kInsertBefore ||
           k == Kind::kInsertAfter || k == Kind::kInsertAttributes ||
           k == Kind::kRename;
  }));
  XQ_RETURN_NOT_OK(apply_phase([](Kind k) {
    return k == Kind::kReplaceValue || k == Kind::kReplaceNode ||
           k == Kind::kReplaceElementContent;
  }));
  XQ_RETURN_NOT_OK(apply_phase([](Kind k) { return k == Kind::kDelete; }));

  primitives_.clear();
  return Status();
}

}  // namespace xqib::xquery
