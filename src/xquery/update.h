// The XQuery Update Facility's Pending Update List (PUL).
//
// Updating expressions do not mutate the tree while an expression
// evaluates; they append primitives here. ApplyAll() merges and applies
// them at the end of the snapshot (paper §3.2: "All modifications are
// performed once the expression is entirely evaluated"). The Scripting
// Extension applies the PUL at every statement boundary instead (§3.3).

#ifndef XQIB_XQUERY_UPDATE_H_
#define XQIB_XQUERY_UPDATE_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "xml/dom.h"
#include "xml/qname.h"

namespace xqib::xquery {

class PendingUpdateList {
 public:
  enum class Kind {
    kInsertInto,
    kInsertFirst,
    kInsertLast,
    kInsertBefore,
    kInsertAfter,
    kInsertAttributes,
    kDelete,
    kReplaceNode,
    kReplaceValue,
    kReplaceElementContent,
    kRename,
  };

  struct Primitive {
    Kind kind;
    xml::Node* target = nullptr;
    std::vector<xml::Node*> content;  // already copied into target's doc
    std::string value;                // kReplaceValue / element content
    xml::QName name;                  // kRename
  };

  bool empty() const { return primitives_.empty(); }
  size_t size() const { return primitives_.size(); }
  void Clear() { primitives_.clear(); }

  void Add(Primitive p) { primitives_.push_back(std::move(p)); }

  // Merge-compatibility checks (XUDY0015/XUDY0016/XUDY0017) and
  // application in the spec's phase order. On success the list is
  // cleared; on failure no primitive has been applied.
  Status ApplyAll();

  // Same, but additionally emits the structured delta of this apply pass
  // into `delta` (per interned name: touched names plus element-index
  // membership ops — see xml::DomDelta). The capture window brackets
  // exactly the primitives of this list, on every document they touch,
  // regardless of the documents' own tracking toggles. A null `delta`
  // degrades to plain ApplyAll().
  Status ApplyAll(xml::DomDelta* delta);

  const std::vector<Primitive>& primitives() const { return primitives_; }

  // Moves the current primitives out / back in (used by the transform
  // expression, which evaluates its modify clause in a nested snapshot).
  std::vector<Primitive> Take() { return std::move(primitives_); }
  void Restore(std::vector<Primitive> saved) { primitives_ = std::move(saved); }

 private:
  Status CheckCompatibility() const;

  std::vector<Primitive> primitives_;
};

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_UPDATE_H_
