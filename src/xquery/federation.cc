#include "xquery/federation.h"

#include <unordered_set>

namespace xqib::xquery::federation {

namespace {

constexpr int kMaxCallDepth = 32;

bool IsHttpGet(const Expr& e) {
  return e.kind == ExprKind::kFunctionCall && e.kids.size() == 1 &&
         e.qname.ns() == xml::kHttpNamespace &&
         (e.qname.local() == "get" || e.qname.local() == "get-text");
}

bool IsFnConcat(const Expr& e) {
  return e.kind == ExprKind::kFunctionCall &&
         e.qname.ns() == xml::kFnNamespace && e.qname.local() == "concat";
}

// Applies `fn` to every direct sub-expression of `e` (all kinds).
template <typename Fn>
void ForEachChildImpl(const DirectNode& d, const Fn& fn) {
  if (d.expr) fn(*d.expr);
  for (const auto& attr : d.attrs) {
    for (const auto& part : attr.parts) {
      if (part.expr) fn(*part.expr);
    }
  }
  for (const auto& child : d.children) ForEachChildImpl(*child, fn);
}

template <typename Fn>
void ForEachFtImpl(const FtSelection& ft, const Fn& fn) {
  if (ft.words) fn(*ft.words);
  for (const auto& kid : ft.kids) ForEachFtImpl(*kid, fn);
}

template <typename Fn>
void ForEachChild(const Expr& e, const Fn& fn) {
  for (const auto& kid : e.kids) {
    if (kid) fn(*kid);
  }
  for (const auto& pred : e.predicates) {
    if (pred) fn(*pred);
  }
  for (const auto& step : e.steps) {
    for (const auto& pred : step.predicates) {
      if (pred) fn(*pred);
    }
  }
  for (const auto& clause : e.clauses) {
    if (clause.expr) fn(*clause.expr);
  }
  if (e.where) fn(*e.where);
  for (const auto& spec : e.order_specs) {
    if (spec.key) fn(*spec.key);
  }
  if (e.ft) ForEachFtImpl(*e.ft, fn);
  if (e.direct) ForEachChildImpl(*e.direct, fn);
}

// The shared reachability walk: collects static GET URLs, recursing into
// user-declared callees, and flags any reachable fabric write.
struct Collector {
  const StaticContext* sctx;
  std::unordered_set<const FunctionDecl*> visiting;
  std::unordered_set<std::string> seen;
  std::vector<std::string> urls;
  bool safe = true;

  void Walk(const Expr& e, int depth) {
    if (!safe) return;
    if (depth > kMaxCallDepth) {
      safe = false;
      return;
    }
    if (e.kind == ExprKind::kEventTrigger) {
      // Triggers run attached listeners synchronously — arbitrary code.
      safe = false;
      return;
    }
    if (e.kind == ExprKind::kFunctionCall) {
      const std::string& ns = e.qname.ns();
      const std::string& local = e.qname.local();
      if (ns == xml::kHttpNamespace) {
        if (local == "put") {
          safe = false;
          return;
        }
        if (IsHttpGet(e)) {
          std::string url;
          if (StaticStringValue(*e.kids[0], &url) && seen.insert(url).second) {
            urls.push_back(std::move(url));
          }
          // A dynamic URL is still just a read; keep walking the arg.
          Walk(*e.kids[0], depth);
          return;
        }
        safe = false;  // unknown http:* extension
        return;
      }
      if (ns == xml::kFnNamespace) {
        if (local == "put") {
          safe = false;
          return;
        }
        ForEachChild(e, [&](const Expr& kid) { Walk(kid, depth); });
        return;
      }
      if (ns == xml::kXsNamespace) {
        ForEachChild(e, [&](const Expr& kid) { Walk(kid, depth); });
        return;
      }
      const FunctionDecl* decl =
          sctx != nullptr ? sctx->FindFunction(e.qname, e.kids.size())
                          : nullptr;
      if (decl != nullptr && decl->body != nullptr) {
        ForEachChild(e, [&](const Expr& kid) { Walk(kid, depth); });
        if (visiting.insert(decl).second) {
          Walk(*decl->body, depth + 1);
          visiting.erase(decl);
        }
        return;
      }
      // Unknown external (webservice stub, browser:*): may run arbitrary
      // code against the fabric server-side — disqualify.
      safe = false;
      return;
    }
    ForEachChild(e, [&](const Expr& kid) { Walk(kid, depth); });
  }
};

// Template extraction: literal fragments + the loop variable.
bool BuildTemplate(const Expr& e, const xml::QName& loop_var,
                   UrlTemplate* out) {
  if (e.kind == ExprKind::kLiteral) {
    out->parts.push_back({e.atom.ToXPathString(), false});
    return true;
  }
  if (e.kind == ExprKind::kVarRef && e.qname == loop_var) {
    out->parts.push_back({std::string(), true});
    out->has_var = true;
    return true;
  }
  if (IsFnConcat(e)) {
    for (const auto& kid : e.kids) {
      if (!BuildTemplate(*kid, loop_var, out)) return false;
    }
    return true;
  }
  return false;
}

}  // namespace

bool StaticStringValue(const Expr& e, std::string* out) {
  if (e.kind == ExprKind::kLiteral) {
    *out += e.atom.ToXPathString();
    return true;
  }
  if (IsFnConcat(e)) {
    for (const auto& kid : e.kids) {
      if (!StaticStringValue(*kid, out)) return false;
    }
    return true;
  }
  return false;
}

StaticFetchPlan CollectStaticFetchUrls(const Expr& body,
                                       const StaticContext& sctx) {
  Collector collector;
  collector.sctx = &sctx;
  collector.Walk(body, 0);
  StaticFetchPlan plan;
  plan.safe = collector.safe;
  if (plan.safe) plan.urls = std::move(collector.urls);
  return plan;
}

StaticFetchPlan CollectListenerFetchUrls(const FunctionDecl& fn,
                                         const StaticContext& sctx) {
  if (fn.body == nullptr) return StaticFetchPlan{};
  return CollectStaticFetchUrls(*fn.body, sctx);
}

std::string InstantiateUrl(const UrlTemplate& t,
                           const std::string& var_value) {
  std::string url;
  for (const auto& part : t.parts) {
    if (part.is_var) {
      url += var_value;
    } else {
      url += part.literal;
    }
  }
  return url;
}

bool ContainsFabricCall(const Expr& e) {
  if (e.kind == ExprKind::kFunctionCall &&
      e.qname.ns() == xml::kHttpNamespace) {
    return true;
  }
  bool found = false;
  ForEachChild(e, [&](const Expr& kid) {
    if (!found) found = ContainsFabricCall(kid);
  });
  return found;
}

FlworScatterPlan AnalyzeFlworScatter(const Expr& flwor,
                                     const StaticContext& sctx) {
  FlworScatterPlan plan;
  if (flwor.kind != ExprKind::kFLWOR || flwor.clauses.size() != 1 ||
      !flwor.order_specs.empty()) {
    return plan;
  }
  const Clause& clause = flwor.clauses[0];
  if (clause.kind != Clause::Kind::kFor || clause.expr == nullptr ||
      flwor.kids.empty() || flwor.kids[0] == nullptr) {
    return plan;
  }
  // Nothing in the whole expression (binding included) may write the
  // fabric, or the batch could race its own side effects.
  Collector collector;
  collector.sctx = &sctx;
  collector.Walk(flwor, 0);
  if (!collector.safe) return plan;

  // Find templated GET sites in the where/return.
  auto scan = [&](const Expr& e, const auto& self) -> void {
    if (IsHttpGet(e)) {
      UrlTemplate t;
      if (BuildTemplate(*e.kids[0], clause.var, &t) && t.has_var) {
        plan.templates.push_back(std::move(t));
      }
      return;
    }
    // Do not descend into nested binding constructs: their variables can
    // shadow ours, and a nested FLWOR gets its own scatter when
    // evaluation reaches it.
    if (e.kind == ExprKind::kFLWOR || e.kind == ExprKind::kQuantified) {
      return;
    }
    ForEachChild(e, [&](const Expr& kid) { self(kid, self); });
  };
  scan(*flwor.kids[0], scan);
  if (flwor.where) scan(*flwor.where, scan);

  if (plan.templates.empty()) return plan;
  plan.applicable = true;
  plan.binding = clause.expr.get();
  plan.loop_var = clause.var;
  return plan;
}

}  // namespace xqib::xquery::federation
