#include "xquery/context.h"

#include <ctime>

#include "xquery/update.h"

namespace xqib::xquery {

// ------------------------------------------------------- StaticContext ---

void StaticContext::AddModule(const Module& module) {
  for (const auto& fn : module.functions) {
    functions_[FunctionKey(fn->name, fn->params.size())] = fn;
  }
  for (const VarDecl& v : module.variables) {
    globals_.push_back(&v);
  }
  for (const auto& [name, value] : module.options) {
    options_[name] = value;
  }
}

const FunctionDecl* StaticContext::FindFunction(const xml::QName& name,
                                                size_t arity) const {
  auto it = functions_.find(FunctionKey(name, arity));
  return it == functions_.end() ? nullptr : it->second.get();
}

const std::string& StaticContext::option(const std::string& clark) const {
  static const std::string* empty = new std::string();
  auto it = options_.find(clark);
  return it == options_.end() ? *empty : it->second;
}

// -------------------------------------------------------- Environment ---

void Environment::Bind(const xml::QName& name, xdm::Sequence value) {
  scopes_.back().vars[name.Clark()] = std::move(value);
}

Status Environment::Assign(const xml::QName& name, xdm::Sequence value) {
  std::string key = name.Clark();
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->vars.find(key);
    if (found != it->vars.end()) {
      found->second = std::move(value);
      return Status();
    }
    if (it->barrier) break;
  }
  // Fall through to globals.
  auto found = scopes_.front().vars.find(key);
  if (found != scopes_.front().vars.end()) {
    found->second = std::move(value);
    return Status();
  }
  return Status::Error("XPDY0002",
                       "assignment to undeclared variable $" + name.Lexical());
}

Result<xdm::Sequence> Environment::Lookup(const xml::QName& name) const {
  std::string key = name.Clark();
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->vars.find(key);
    if (found != it->vars.end()) return found->second;
    if (it->barrier) break;
  }
  auto found = scopes_.front().vars.find(key);
  if (found != scopes_.front().vars.end()) return found->second;
  return Status::Error("XPDY0002",
                       "undefined variable $" + name.Lexical());
}

bool Environment::IsBound(const xml::QName& name) const {
  return Lookup(name).ok();
}

// ------------------------------------------------------ DynamicContext ---

DynamicContext::DynamicContext() : pul_(std::make_unique<PendingUpdateList>()) {
  clock = []() {
    std::time_t t = std::time(nullptr);
    std::tm tm_buf;
    gmtime_r(&t, &tm_buf);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm_buf);
    return std::string(buf);
  };
}

DynamicContext::~DynamicContext() = default;

void DynamicContext::RegisterExternal(const xml::QName& name, size_t arity,
                                      ExternalFunction fn) {
  externals_[name.Clark() + "#" + std::to_string(arity)] = std::move(fn);
}

const ExternalFunction* DynamicContext::FindExternal(const xml::QName& name,
                                                     size_t arity) const {
  auto it = externals_.find(name.Clark() + "#" + std::to_string(arity));
  return it == externals_.end() ? nullptr : &it->second;
}

xml::Document* DynamicContext::scratch_document() {
  if (scratch_docs_.empty()) {
    scratch_docs_.push_back(std::make_unique<xml::Document>());
  }
  return scratch_docs_.front().get();
}

xml::Node* DynamicContext::AdoptDocument(std::unique_ptr<xml::Document> doc) {
  xml::Node* root = doc->root();
  scratch_docs_.push_back(std::move(doc));
  return root;
}

std::vector<std::unique_ptr<xml::Document>>
DynamicContext::TakeScratchDocuments() {
  return std::move(scratch_docs_);
}

}  // namespace xqib::xquery
