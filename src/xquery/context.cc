#include "xquery/context.h"

#include <algorithm>
#include <ctime>
#include <string_view>

#include "xquery/update.h"

namespace xqib::xquery {

// ------------------------------------------------------- StaticContext ---

namespace {

// FNV-1a, folded incrementally with a field separator so adjacent fields
// cannot collide by concatenation.
void FoldHash(uint64_t* h, std::string_view s) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= 1099511628211ULL;
  }
  *h ^= 0x1f;
  *h *= 1099511628211ULL;
}

}  // namespace

void StaticContext::AddModule(const Module& module) {
  for (const auto& fn : module.functions) {
    functions_[FunctionKey{fn->name.token(), fn->params.size()}] = fn;
  }
  for (const VarDecl& v : module.variables) {
    globals_.push_back(&v);
  }
  for (const auto& [name, value] : module.options) {
    options_[name] = value;
  }
  // Plan-cache keying (see header): non-library source text is the cache
  // key; everything else that changes what that text means — including
  // library sources, whose function bodies back compiled call targets —
  // goes into the fingerprint.
  if (!module.is_library) FoldHash(&plan_source_hash_, module.source_text);
  FoldHash(&plan_fingerprint_, module.is_library ? "lib" : "main");
  FoldHash(&plan_fingerprint_, module.source_text);
  FoldHash(&plan_fingerprint_, module.module_ns);
  FoldHash(&plan_fingerprint_, module.default_element_ns);
  for (const auto& [p, u] : module.namespaces) {
    FoldHash(&plan_fingerprint_, p);
    FoldHash(&plan_fingerprint_, u);
  }
  for (const auto& [k, v] : module.options) {
    FoldHash(&plan_fingerprint_, k);
    FoldHash(&plan_fingerprint_, v);
  }
}

const FunctionDecl* StaticContext::FindFunction(const xml::QName& name,
                                                size_t arity) const {
  auto it = functions_.find(FunctionKey{name.token(), arity});
  return it == functions_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const FunctionDecl> StaticContext::FindFunctionShared(
    const xml::QName& name, size_t arity) const {
  auto it = functions_.find(FunctionKey{name.token(), arity});
  return it == functions_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const FunctionDecl>> StaticContext::AllFunctions()
    const {
  std::vector<std::shared_ptr<const FunctionDecl>> out;
  out.reserve(functions_.size());
  for (const auto& [key, fn] : functions_) out.push_back(fn);
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<const FunctionDecl>& a,
               const std::shared_ptr<const FunctionDecl>& b) {
              if (a->name.Clark() != b->name.Clark()) {
                return a->name.Clark() < b->name.Clark();
              }
              return a->params.size() < b->params.size();
            });
  return out;
}

const std::string& StaticContext::option(const std::string& clark) const {
  static const std::string* empty = new std::string();
  auto it = options_.find(clark);
  return it == options_.end() ? *empty : it->second;
}

// -------------------------------------------------------- Environment ---

// Lookup semantics: scopes from the top down; the first barrier scope is
// still searched, then only globals (scope 0) remain visible. Within a
// scope, bindings are scanned back to front (Bind overwrites in place,
// so a scope never holds duplicate names).
const xdm::Sequence* Environment::Find(const xml::QName& name) const {
  const xml::InternedName* token = name.token();
  for (size_t i = scopes_.size(); i-- > 0;) {
    size_t begin = scopes_[i].start;
    size_t end =
        (i + 1 < scopes_.size()) ? scopes_[i + 1].start : bindings_.size();
    for (size_t j = end; j-- > begin;) {
      if (bindings_[j].name == token) return &bindings_[j].value;
    }
    if (scopes_[i].barrier) {
      size_t gend = scopes_.size() > 1 ? scopes_[1].start : bindings_.size();
      for (size_t j = gend; j-- > 0;) {
        if (bindings_[j].name == token) return &bindings_[j].value;
      }
      return nullptr;
    }
  }
  return nullptr;
}

void Environment::Bind(const xml::QName& name, xdm::Sequence value) {
  const xml::InternedName* token = name.token();
  for (size_t j = bindings_.size(); j-- > scopes_.back().start;) {
    if (bindings_[j].name == token) {
      bindings_[j].value = std::move(value);
      return;
    }
  }
  bindings_.push_back({token, std::move(value)});
}

Status Environment::Assign(const xml::QName& name, xdm::Sequence value) {
  xdm::Sequence* slot = FindMutable(name);
  if (slot != nullptr) {
    *slot = std::move(value);
    return Status();
  }
  return Status::Error("XPDY0002",
                       "assignment to undeclared variable $" + name.Lexical());
}

Result<xdm::Sequence> Environment::Lookup(const xml::QName& name) const {
  const xdm::Sequence* found = Find(name);
  if (found != nullptr) return *found;
  return Status::Error("XPDY0002",
                       "undefined variable $" + name.Lexical());
}

bool Environment::IsBound(const xml::QName& name) const {
  return Find(name) != nullptr;
}

xdm::Sequence* Environment::TopBinding(const xml::QName& name) {
  const xml::InternedName* token = name.token();
  for (size_t j = bindings_.size(); j-- > scopes_.back().start;) {
    if (bindings_[j].name == token) return &bindings_[j].value;
  }
  return nullptr;
}

// ------------------------------------------------------ DynamicContext ---

DynamicContext::DynamicContext() : pul_(std::make_unique<PendingUpdateList>()) {
  clock = []() {
    std::time_t t = std::time(nullptr);
    std::tm tm_buf;
    gmtime_r(&t, &tm_buf);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm_buf);
    return std::string(buf);
  };
}

DynamicContext::~DynamicContext() = default;

void DynamicContext::RegisterExternal(const xml::QName& name, size_t arity,
                                      ExternalFunction fn) {
  externals_[ExternalKey{name.token(), arity}] = std::move(fn);
}

const ExternalFunction* DynamicContext::FindExternal(const xml::QName& name,
                                                     size_t arity) const {
  auto it = externals_.find(ExternalKey{name.token(), arity});
  return it == externals_.end() ? nullptr : &it->second;
}

xml::Document* DynamicContext::scratch_document() {
  if (scratch_docs_.empty()) {
    scratch_docs_.push_back(std::make_unique<xml::Document>());
  }
  return scratch_docs_.front().get();
}

xml::Node* DynamicContext::AdoptDocument(std::unique_ptr<xml::Document> doc) {
  xml::Node* root = doc->root();
  scratch_docs_.push_back(std::move(doc));
  return root;
}

std::vector<std::unique_ptr<xml::Document>>
DynamicContext::TakeScratchDocuments() {
  return std::move(scratch_docs_);
}

}  // namespace xqib::xquery
