#include "xquery/ast.h"

namespace xqib::xquery {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kSelf: return "self";
    case Axis::kAttribute: return "attribute";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "ancestor-or-self";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
    case Axis::kFollowing: return "following";
    case Axis::kPreceding: return "preceding";
  }
  return "unknown";
}

ExprPtr MakeExpr(ExprKind kind) { return std::make_unique<Expr>(kind); }

}  // namespace xqib::xquery
