// Rule-based AST rewriter backing the paper's §1 claim that "XQuery is
// carefully designed to be highly optimisable": because expressions are
// declarative, the engine can rewrite them without changing semantics.
//
// Implemented rules (each individually toggleable for the A1 ablation
// benchmark):
//   * constant folding      — arithmetic/comparison/logic over literals
//   * branch elimination    — if/where/logical with constant conditions
//   * cardinality rewrites  — count(E) = 0 -> empty(E),
//                             count(E) > 0 / != 0 -> exists(E)
//   * positional shortcut   — E[1] marks first-match-only evaluation
//                             hints for the evaluator (predicate is kept;
//                             the rewrite is the canonical exists form)
//   * boolean simplification— not(not(E)) -> boolean(E),
//                             empty(E) inverted to exists and vice versa
//   * path collapsing       — descendant-or-self::node()/child::T
//                             -> descendant::T, avoiding the full-node
//                             intermediate sequence "//T" otherwise builds
//   * inferred rewrites     — cardinalities proved by the static analyzer
//                             (AnalysisFacts) let count/exists/empty and
//                             positional filters fold on *inferred*
//                             singletons, not just syntactic ones:
//                             exists($i) -> true() when $i: exactly-one
//   * ordering elision      — path steps whose raw output is provably in
//                             document order and duplicate-free (e.g. a
//                             singleton-context child::/attribute::/
//                             self:: chain) are annotated so the
//                             evaluator skips SortDocumentOrderDedup

#ifndef XQIB_XQUERY_OPTIMIZER_H_
#define XQIB_XQUERY_OPTIMIZER_H_

#include "xquery/analysis/facts.h"
#include "xquery/ast.h"

namespace xqib::xquery {

struct OptimizerOptions {
  bool constant_folding = true;
  bool branch_elimination = true;
  bool cardinality_rewrites = true;
  bool boolean_simplification = true;
  bool path_collapsing = true;
  bool inferred_rewrites = true;  // no-op unless facts are supplied
  bool ordering_elision = true;
};

struct OptimizerStats {
  int folded_constants = 0;
  int eliminated_branches = 0;
  int cardinality_rewritten = 0;
  int boolean_simplified = 0;
  int paths_collapsed = 0;
  int inferred_rewrites = 0;
  int sort_elisions = 0;  // steps annotated order-preserving + dup-free
  int total() const {
    return folded_constants + eliminated_branches + cardinality_rewritten +
           boolean_simplified + paths_collapsed + inferred_rewrites +
           sort_elisions;
  }
};

// Rewrites the expression tree in place; returns rewrite statistics.
// `facts` (optional) supplies analyzer-inferred cardinalities keyed by
// the pre-rewrite Expr nodes; run the analyzer on the same tree first.
OptimizerStats OptimizeExpr(ExprPtr* expr, const OptimizerOptions& options,
                            const analysis::AnalysisFacts* facts = nullptr);

// Optimizes a whole module: global variable initializers, function
// bodies, and the query body.
OptimizerStats OptimizeModule(Module* module, const OptimizerOptions& options,
                              const analysis::AnalysisFacts* facts = nullptr);

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_OPTIMIZER_H_
