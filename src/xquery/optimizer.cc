#include "xquery/optimizer.h"

#include <cmath>
#include <limits>

#include "xml/qname.h"

namespace xqib::xquery {

namespace {

using xdm::AtomicType;
using xdm::AtomicValue;

class Rewriter {
 public:
  Rewriter(const OptimizerOptions& options, OptimizerStats* stats,
           const analysis::AnalysisFacts* facts)
      : options_(options), stats_(stats), facts_(facts) {}

  void Rewrite(ExprPtr* slot) {
    if (*slot == nullptr) return;
    Expr& e = **slot;
    // Bottom-up: children first.
    for (ExprPtr& kid : e.kids) Rewrite(&kid);
    for (ExprPtr& pred : e.predicates) Rewrite(&pred);
    for (Clause& clause : e.clauses) Rewrite(&clause.expr);
    for (OrderSpec& spec : e.order_specs) Rewrite(&spec.key);
    if (e.where != nullptr) Rewrite(&e.where);
    for (Step& step : e.steps) {
      for (ExprPtr& pred : step.predicates) Rewrite(&pred);
    }
    if (e.ft != nullptr) RewriteFt(e.ft.get());
    if (e.direct != nullptr) RewriteDirect(e.direct.get());

    switch (e.kind) {
      case ExprKind::kArith:
        if (options_.constant_folding) FoldArith(slot);
        break;
      case ExprKind::kUnary:
        if (options_.constant_folding) FoldUnary(slot);
        break;
      case ExprKind::kComparison:
        if (options_.cardinality_rewrites) RewriteCountComparison(slot);
        if (*slot != nullptr && (*slot)->kind == ExprKind::kComparison &&
            options_.constant_folding) {
          FoldComparison(slot);
        }
        break;
      case ExprKind::kLogical:
        if (options_.branch_elimination) FoldLogical(slot);
        break;
      case ExprKind::kIf:
        if (options_.branch_elimination) FoldIf(slot);
        break;
      case ExprKind::kFLWOR:
        if (options_.branch_elimination) FoldWhereFalse(slot);
        break;
      case ExprKind::kFunctionCall:
        if (options_.inferred_rewrites) RewriteInferredCall(slot);
        if (*slot != nullptr && (*slot)->kind == ExprKind::kFunctionCall &&
            options_.boolean_simplification) {
          SimplifyBooleanCalls(slot);
        }
        break;
      case ExprKind::kFilter:
        if (options_.inferred_rewrites) RewriteInferredFilter(slot);
        break;
      case ExprKind::kPath:
        if (options_.path_collapsing) CollapseDescendantSteps(&e);
        if (options_.ordering_elision) AnnotateOrdering(&e);
        break;
      default:
        break;
    }
  }

 private:
  void RewriteFt(FtSelection* sel) {
    if (sel->words != nullptr) Rewrite(&sel->words);
    for (auto& kid : sel->kids) RewriteFt(kid.get());
  }

  void RewriteDirect(DirectNode* node) {
    if (node->expr != nullptr) Rewrite(&node->expr);
    for (auto& attr : node->attrs) {
      for (auto& part : attr.parts) {
        if (part.expr != nullptr) Rewrite(&part.expr);
      }
    }
    for (auto& child : node->children) RewriteDirect(child.get());
  }

  static bool IsLiteral(const ExprPtr& e) {
    return e != nullptr && e->kind == ExprKind::kLiteral;
  }
  static bool IsNumericLiteral(const ExprPtr& e) {
    return IsLiteral(e) && e->atom.is_numeric();
  }
  static bool IsIntegerLiteral(const ExprPtr& e, int64_t value) {
    return IsLiteral(e) && e->atom.type() == AtomicType::kInteger &&
           e->atom.int_value() == value;
  }

  void ReplaceWithLiteral(ExprPtr* slot, AtomicValue value) {
    ExprPtr lit = MakeExpr(ExprKind::kLiteral);
    lit->atom = std::move(value);
    *slot = std::move(lit);
  }

  void FoldArith(ExprPtr* slot) {
    Expr& e = **slot;
    if (!IsNumericLiteral(e.kids[0]) || !IsNumericLiteral(e.kids[1])) return;
    const AtomicValue& a = e.kids[0]->atom;
    const AtomicValue& b = e.kids[1]->atom;
    bool ints = a.type() == AtomicType::kInteger &&
                b.type() == AtomicType::kInteger;
    if (ints) {
      int64_t x = a.int_value(), y = b.int_value();
      int64_t r = 0;
      switch (e.arith_op) {
        case ArithOp::kAdd: r = x + y; break;
        case ArithOp::kSub: r = x - y; break;
        case ArithOp::kMul: r = x * y; break;
        case ArithOp::kIDiv:
          if (y == 0) return;  // leave the runtime error in place
          r = x / y;
          break;
        case ArithOp::kMod:
          if (y == 0) return;
          r = x % y;
          break;
        case ArithOp::kDiv:
          if (y == 0 || x % y != 0) return;  // fold only exact divisions
          r = x / y;
          break;
      }
      ++stats_->folded_constants;
      ReplaceWithLiteral(slot, AtomicValue::Integer(r));
      return;
    }
    Result<double> xr = a.ToDouble();
    Result<double> yr = b.ToDouble();
    if (!xr.ok() || !yr.ok()) return;
    double x = *xr, y = *yr, r = 0;
    switch (e.arith_op) {
      case ArithOp::kAdd: r = x + y; break;
      case ArithOp::kSub: r = x - y; break;
      case ArithOp::kMul: r = x * y; break;
      case ArithOp::kDiv: r = x / y; break;
      case ArithOp::kIDiv:
        if (y == 0) return;
        r = std::trunc(x / y);
        break;
      case ArithOp::kMod: r = std::fmod(x, y); break;
    }
    ++stats_->folded_constants;
    ReplaceWithLiteral(slot, AtomicValue::Double(r));
  }

  void FoldUnary(ExprPtr* slot) {
    Expr& e = **slot;
    if (!IsNumericLiteral(e.kids[0])) return;
    const AtomicValue& v = e.kids[0]->atom;
    ++stats_->folded_constants;
    if (e.arith_op == ArithOp::kAdd) {
      ReplaceWithLiteral(slot, v);
    } else if (v.type() == AtomicType::kInteger) {
      ReplaceWithLiteral(slot, AtomicValue::Integer(-v.int_value()));
    } else {
      ReplaceWithLiteral(slot, AtomicValue::Double(-v.double_value()));
    }
  }

  void FoldComparison(ExprPtr* slot) {
    Expr& e = **slot;
    if (!IsLiteral(e.kids[0]) || !IsLiteral(e.kids[1])) return;
    if (e.comp_op == CompOp::kIs || e.comp_op == CompOp::kPrecedes ||
        e.comp_op == CompOp::kFollows) {
      return;
    }
    Result<int> cmp = e.kids[0]->atom.Compare(e.kids[1]->atom);
    if (!cmp.ok() || *cmp == 2) return;
    bool value = false;
    switch (e.comp_op) {
      case CompOp::kGenEq: case CompOp::kValEq: value = *cmp == 0; break;
      case CompOp::kGenNe: case CompOp::kValNe: value = *cmp != 0; break;
      case CompOp::kGenLt: case CompOp::kValLt: value = *cmp < 0; break;
      case CompOp::kGenLe: case CompOp::kValLe: value = *cmp <= 0; break;
      case CompOp::kGenGt: case CompOp::kValGt: value = *cmp > 0; break;
      case CompOp::kGenGe: case CompOp::kValGe: value = *cmp >= 0; break;
      default: return;
    }
    ++stats_->folded_constants;
    ReplaceWithLiteral(slot, AtomicValue::Boolean(value));
  }

  // Literal boolean value of an expression, if statically known.
  static int StaticBool(const ExprPtr& e) {
    if (!IsLiteral(e)) return -1;
    const AtomicValue& v = e->atom;
    if (v.type() == AtomicType::kBoolean) return v.bool_value() ? 1 : 0;
    return -1;
  }

  void FoldLogical(ExprPtr* slot) {
    Expr& e = **slot;
    int lhs = StaticBool(e.kids[0]);
    int rhs = StaticBool(e.kids[1]);
    if (e.logical_and) {
      if (lhs == 0 || rhs == 0) {
        ++stats_->eliminated_branches;
        ReplaceWithLiteral(slot, AtomicValue::Boolean(false));
      } else if (lhs == 1 && rhs == 1) {
        ++stats_->eliminated_branches;
        ReplaceWithLiteral(slot, AtomicValue::Boolean(true));
      } else if (lhs == 1) {
        ++stats_->eliminated_branches;
        ExprPtr kept = std::move(e.kids[1]);
        *slot = WrapBoolean(std::move(kept));
      }
    } else {
      if (lhs == 1 || rhs == 1) {
        ++stats_->eliminated_branches;
        ReplaceWithLiteral(slot, AtomicValue::Boolean(true));
      } else if (lhs == 0 && rhs == 0) {
        ++stats_->eliminated_branches;
        ReplaceWithLiteral(slot, AtomicValue::Boolean(false));
      } else if (lhs == 0) {
        ++stats_->eliminated_branches;
        ExprPtr kept = std::move(e.kids[1]);
        *slot = WrapBoolean(std::move(kept));
      }
    }
  }

  static ExprPtr WrapBoolean(ExprPtr inner) {
    ExprPtr call = MakeExpr(ExprKind::kFunctionCall);
    call->qname = xml::QName(std::string(xml::kFnNamespace), "", "boolean");
    call->kids.push_back(std::move(inner));
    return call;
  }

  void FoldIf(ExprPtr* slot) {
    Expr& e = **slot;
    int cond = StaticBool(e.kids[0]);
    if (cond < 0) return;
    ++stats_->eliminated_branches;
    ExprPtr kept = std::move(e.kids[cond == 1 ? 1 : 2]);
    *slot = std::move(kept);
  }

  void FoldWhereFalse(ExprPtr* slot) {
    Expr& e = **slot;
    if (e.where == nullptr) return;
    if (StaticBool(e.where) == 0) {
      // The whole FLWOR yields the empty sequence. Binding expressions
      // cannot be updating, so dropping them is safe.
      ++stats_->eliminated_branches;
      *slot = MakeExpr(ExprKind::kSequence);
    } else if (StaticBool(e.where) == 1) {
      e.where = nullptr;
      ++stats_->eliminated_branches;
    }
  }

  static bool IsFnCall(const Expr& e, const char* name, size_t arity) {
    return e.kind == ExprKind::kFunctionCall &&
           e.qname.ns() == xml::kFnNamespace && e.qname.local() == name &&
           e.kids.size() == arity;
  }

  // count(E) = 0 -> empty(E);  count(E) > 0, count(E) != 0, count(E) >= 1
  // -> exists(E). Saves materializing the full sequence when the
  // evaluator only needs emptiness.
  void RewriteCountComparison(ExprPtr* slot) {
    Expr& e = **slot;
    ExprPtr* count_side = nullptr;
    ExprPtr* lit_side = nullptr;
    if (e.kids[0]->kind == ExprKind::kFunctionCall) {
      count_side = &e.kids[0];
      lit_side = &e.kids[1];
    } else if (e.kids[1]->kind == ExprKind::kFunctionCall) {
      count_side = &e.kids[1];
      lit_side = &e.kids[0];
    } else {
      return;
    }
    if (!IsFnCall(**count_side, "count", 1)) return;
    bool count_on_left = count_side == &e.kids[0];

    // Normalize to count(E) OP literal.
    CompOp op = e.comp_op;
    if (!count_on_left) {
      switch (op) {
        case CompOp::kGenLt: op = CompOp::kGenGt; break;
        case CompOp::kGenGt: op = CompOp::kGenLt; break;
        case CompOp::kGenLe: op = CompOp::kGenGe; break;
        case CompOp::kGenGe: op = CompOp::kGenLe; break;
        case CompOp::kValLt: op = CompOp::kValGt; break;
        case CompOp::kValGt: op = CompOp::kValLt; break;
        case CompOp::kValLe: op = CompOp::kValGe; break;
        case CompOp::kValGe: op = CompOp::kValLe; break;
        default: break;
      }
    }
    const char* replacement = nullptr;
    if (IsIntegerLiteral(*lit_side, 0)) {
      if (op == CompOp::kGenEq || op == CompOp::kValEq) {
        replacement = "empty";
      } else if (op == CompOp::kGenNe || op == CompOp::kValNe ||
                 op == CompOp::kGenGt || op == CompOp::kValGt) {
        replacement = "exists";
      }
    } else if (IsIntegerLiteral(*lit_side, 1) &&
               (op == CompOp::kGenGe || op == CompOp::kValGe)) {
      replacement = "exists";
    }
    if (replacement == nullptr) return;
    ++stats_->cardinality_rewritten;
    ExprPtr arg = std::move((*count_side)->kids[0]);
    ExprPtr call = MakeExpr(ExprKind::kFunctionCall);
    call->qname =
        xml::QName(std::string(xml::kFnNamespace), "", replacement);
    call->kids.push_back(std::move(arg));
    *slot = std::move(call);
  }

  // not(not(E)) -> boolean(E); not(empty(E)) -> exists(E);
  // not(exists(E)) -> empty(E).
  void SimplifyBooleanCalls(ExprPtr* slot) {
    Expr& e = **slot;
    if (!IsFnCall(e, "not", 1)) return;
    Expr& inner = *e.kids[0];
    const char* replacement = nullptr;
    if (IsFnCall(inner, "not", 1)) replacement = "boolean";
    else if (IsFnCall(inner, "empty", 1)) replacement = "exists";
    else if (IsFnCall(inner, "exists", 1)) replacement = "empty";
    if (replacement == nullptr) return;
    ++stats_->boolean_simplified;
    ExprPtr arg = std::move(inner.kids[0]);
    ExprPtr call = MakeExpr(ExprKind::kFunctionCall);
    call->qname =
        xml::QName(std::string(xml::kFnNamespace), "", replacement);
    call->kids.push_back(std::move(arg));
    *slot = std::move(call);
  }

  const analysis::Cardinality* CardinalityOf(const Expr* e) const {
    if (facts_ == nullptr) return nullptr;
    auto it = facts_->cardinality.find(e);
    return it == facts_->cardinality.end() ? nullptr : &it->second;
  }

  // Only expressions that can neither fail nor observe evaluation order
  // may be discarded when a fact makes their value statically known.
  static bool IsDiscardable(const Expr& e) {
    return e.kind == ExprKind::kVarRef || e.kind == ExprKind::kLiteral ||
           e.kind == ExprKind::kContextItem;
  }

  // count/exists/empty over an argument whose cardinality the analyzer
  // proved: exists($i) -> true() when $i is bound one-per-iteration by a
  // for clause — a rewrite the purely syntactic rules can never make.
  void RewriteInferredCall(ExprPtr* slot) {
    Expr& e = **slot;
    bool is_count = IsFnCall(e, "count", 1);
    bool is_exists = IsFnCall(e, "exists", 1);
    bool is_empty = IsFnCall(e, "empty", 1);
    if (!is_count && !is_exists && !is_empty) return;
    const Expr* arg = e.kids[0].get();
    if (!IsDiscardable(*arg)) return;
    const analysis::Cardinality* card = CardinalityOf(arg);
    if (card == nullptr) return;
    if (is_count && card->IsExact() &&
        card->min <= static_cast<uint64_t>(
                         std::numeric_limits<int64_t>::max())) {
      ++stats_->inferred_rewrites;
      ReplaceWithLiteral(
          slot, AtomicValue::Integer(static_cast<int64_t>(card->min)));
    } else if (is_exists && card->IsNonEmpty()) {
      ++stats_->inferred_rewrites;
      ReplaceWithLiteral(slot, AtomicValue::Boolean(true));
    } else if (is_exists && card->IsEmpty()) {
      ++stats_->inferred_rewrites;
      ReplaceWithLiteral(slot, AtomicValue::Boolean(false));
    } else if (is_empty && card->IsNonEmpty()) {
      ++stats_->inferred_rewrites;
      ReplaceWithLiteral(slot, AtomicValue::Boolean(false));
    } else if (is_empty && card->IsEmpty()) {
      ++stats_->inferred_rewrites;
      ReplaceWithLiteral(slot, AtomicValue::Boolean(true));
    }
  }

  // $x[1] -> $x when the analyzer proved $x is a singleton.
  void RewriteInferredFilter(ExprPtr* slot) {
    Expr& e = **slot;
    if (e.predicates.size() != 1) return;
    const Expr& pred = *e.predicates[0];
    if (pred.kind != ExprKind::kLiteral ||
        pred.atom.type() != AtomicType::kInteger ||
        pred.atom.int_value() != 1) {
      return;
    }
    const Expr* primary = e.kids[0].get();
    if (!IsDiscardable(*primary)) return;
    const analysis::Cardinality* card = CardinalityOf(primary);
    if (card == nullptr || !card->IsSingleton()) return;
    ++stats_->inferred_rewrites;
    ExprPtr kept = std::move(e.kids[0]);
    *slot = std::move(kept);
  }

  // descendant-or-self::node() (no predicates) followed by child::T
  // selects exactly descendant::T; fusing the steps avoids materializing
  // every node of the subtree as an intermediate sequence.
  void CollapseDescendantSteps(Expr* e) {
    auto is_dos_node = [](const Step& s) {
      return s.axis == Axis::kDescendantOrSelf &&
             s.test.kind == NodeTest::Kind::kAnyKind &&
             s.predicates.empty();
    };
    std::vector<Step> out;
    out.reserve(e->steps.size());
    for (size_t i = 0; i < e->steps.size(); ++i) {
      // Only predicate-free child steps fuse: predicates see per-parent
      // positions on child:: but per-subtree positions on descendant::,
      // so "//a[1]" must NOT become "descendant::a[1]".
      if (i + 1 < e->steps.size() && is_dos_node(e->steps[i]) &&
          e->steps[i + 1].axis == Axis::kChild &&
          e->steps[i + 1].predicates.empty()) {
        Step fused = std::move(e->steps[i + 1]);
        fused.axis = Axis::kDescendant;
        out.push_back(std::move(fused));
        ++i;
        ++stats_->paths_collapsed;
        continue;
      }
      out.push_back(std::move(e->steps[i]));
    }
    e->steps = std::move(out);
  }

  // Abstract state of the context sequence flowing into a step, for the
  // ordering/dedup elision proof (AnnotateOrdering below).
  enum class PathCtx {
    kSingleton,  // at most one node
    kAntichain,  // doc order, duplicate-free, no node is an ancestor of
                 // another (e.g. a sibling set)
    kOrdered,    // doc order, duplicate-free, ancestor pairs possible
    kUnknown,    // nothing proven
  };

  // Annotates each step with preserves_order/no_duplicates when the raw
  // axis output — context items in order, each item's axis nodes in axis
  // order — is provably already in document order and duplicate-free, so
  // the evaluator can elide the step's sort barrier. In the streaming
  // pipeline this is what keeps a StepStream's output flowing on to the
  // next operator without a SortBarrierStream materializing it first.
  //
  // Soundness hinges on the context-state lattice:
  //   * child::/attribute:: from an antichain: the selected children of
  //     distinct non-nested context nodes occupy disjoint doc-order
  //     ranges, in context order — ordered, duplicate-free. From a
  //     context with ancestor pairs (kOrdered) the same step can
  //     interleave or duplicate, so it must sort.
  //   * descendant::/descendant-or-self:: from an antichain: subtrees of
  //     non-nested nodes are disjoint — ordered. The result may contain
  //     ancestor pairs, hence kOrdered, never kAntichain.
  //   * attribute:: stays elidable even from kOrdered: attribute keys
  //     fall between their element and its first child in the key
  //     assignment (AssignKeysDfs), and attributes of distinct elements
  //     never collide.
  //   * reverse axes (ancestor, preceding, ...) emit nearest-first, the
  //     reverse of doc order — never elidable.
  // Predicates only filter a step's output, so they preserve every
  // property above and do not affect the state transition.
  void AnnotateOrdering(Expr* e) {
    PathCtx state;
    if (e->kids.empty()) {
      // Root-anchored ("/a/b") or relative from the focus: one node.
      state = PathCtx::kSingleton;
    } else {
      const analysis::Cardinality* card = CardinalityOf(e->kids[0].get());
      state = (card != nullptr && card->max <= 1) ? PathCtx::kSingleton
                                                  : PathCtx::kUnknown;
    }
    for (Step& step : e->steps) {
      bool elide = false;
      PathCtx next = PathCtx::kOrdered;  // post-sort state
      bool flat = state == PathCtx::kSingleton ||
                  state == PathCtx::kAntichain;
      switch (step.axis) {
        case Axis::kSelf:
          if (state != PathCtx::kUnknown) {
            elide = true;
            next = state;
          }
          break;
        case Axis::kChild:
          if (flat) {
            elide = true;
            next = PathCtx::kAntichain;
          }
          break;
        case Axis::kAttribute:
          if (state != PathCtx::kUnknown) {
            elide = true;
            next = PathCtx::kAntichain;
          }
          break;
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          if (flat) {
            elide = true;
            next = PathCtx::kOrdered;
          }
          break;
        case Axis::kParent:
          if (state == PathCtx::kSingleton) {
            elide = true;
            next = PathCtx::kSingleton;
          }
          break;
        case Axis::kFollowingSibling:
          if (state == PathCtx::kSingleton) {
            elide = true;
            next = PathCtx::kAntichain;
          }
          break;
        case Axis::kFollowing:
          if (state == PathCtx::kSingleton) {
            elide = true;
            next = PathCtx::kOrdered;
          }
          break;
        case Axis::kAncestor:
        case Axis::kAncestorOrSelf:
        case Axis::kPrecedingSibling:
        case Axis::kPreceding:
          break;  // reverse axes emit nearest-first: always sort
      }
      step.preserves_order = elide;
      step.no_duplicates = elide;
      if (elide) ++stats_->sort_elisions;
      state = next;
    }
  }

  const OptimizerOptions& options_;
  OptimizerStats* stats_;
  const analysis::AnalysisFacts* facts_;
};

}  // namespace

OptimizerStats OptimizeExpr(ExprPtr* expr, const OptimizerOptions& options,
                            const analysis::AnalysisFacts* facts) {
  OptimizerStats stats;
  Rewriter rewriter(options, &stats, facts);
  rewriter.Rewrite(expr);
  return stats;
}

OptimizerStats OptimizeModule(Module* module, const OptimizerOptions& options,
                              const analysis::AnalysisFacts* facts) {
  OptimizerStats stats;
  Rewriter rewriter(options, &stats, facts);
  for (VarDecl& decl : module->variables) {
    if (decl.init != nullptr) rewriter.Rewrite(&decl.init);
  }
  for (auto& fn : module->functions) {
    if (fn->body != nullptr) rewriter.Rewrite(&fn->body);
  }
  if (module->body != nullptr) rewriter.Rewrite(&module->body);
  return stats;
}

}  // namespace xqib::xquery
