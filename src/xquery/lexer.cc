#include "xquery/lexer.h"

#include "base/strings.h"

namespace xqib::xquery {

namespace {

// Multi-character symbols, longest first.
constexpr std::string_view kSymbols[] = {
    ":=", "!=", "<=", ">=", "<<", ">>", "//", "..", "::",
    "(",  ")",  "[",  "]",  "{",  "}",  ",",  ";",  ".",
    "/",  "@",  "*",  "+",  "-",  "=",  "<",  ">",  "|",
    "?",  "$",  ":",
};

}  // namespace

void Lexer::SkipWhitespaceAndComments() {
  while (pos_ < in_.size()) {
    char c = in_[pos_];
    if (IsXmlWhitespace(c)) {
      ++pos_;
    } else if (c == '(' && pos_ + 1 < in_.size() && in_[pos_ + 1] == ':') {
      // Nested XQuery comments (: ... :).
      int depth = 0;
      while (pos_ < in_.size()) {
        if (in_.substr(pos_, 2) == "(:") {
          ++depth;
          pos_ += 2;
        } else if (in_.substr(pos_, 2) == ":)") {
          --depth;
          pos_ += 2;
          if (depth == 0) break;
        } else {
          ++pos_;
        }
      }
    } else {
      break;
    }
  }
}

Result<Token> Lexer::LexOne() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.pos = pos_;
  if (pos_ >= in_.size()) {
    tok.kind = TokKind::kEof;
    return tok;
  }
  char c = in_[pos_];

  // String literals with doubled-quote escapes.
  if (c == '"' || c == '\'') {
    char quote = c;
    ++pos_;
    std::string text;
    while (true) {
      if (pos_ >= in_.size()) {
        return Status::SyntaxError("unterminated string literal (at " +
                                   FormatLineCol(in_, tok.pos) + ")");
      }
      char d = in_[pos_];
      if (d == quote) {
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == quote) {
          text.push_back(quote);
          pos_ += 2;
        } else {
          ++pos_;
          break;
        }
      } else {
        text.push_back(d);
        ++pos_;
      }
    }
    tok.kind = TokKind::kString;
    tok.text = std::move(text);
    return tok;
  }

  // Numeric literals: 12, 12.5, .5, 1e3, 1.5E-2.
  if ((c >= '0' && c <= '9') ||
      (c == '.' && pos_ + 1 < in_.size() && in_[pos_ + 1] >= '0' &&
       in_[pos_ + 1] <= '9')) {
    size_t start = pos_;
    bool has_dot = false, has_exp = false;
    while (pos_ < in_.size()) {
      char d = in_[pos_];
      if (d >= '0' && d <= '9') {
        ++pos_;
      } else if (d == '.' && !has_dot && !has_exp) {
        // ".." must stay a path token.
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '.') break;
        has_dot = true;
        ++pos_;
      } else if ((d == 'e' || d == 'E') && !has_exp) {
        has_exp = true;
        ++pos_;
        if (pos_ < in_.size() && (in_[pos_] == '+' || in_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    tok.kind = has_exp   ? TokKind::kDouble
               : has_dot ? TokKind::kDecimal
                         : TokKind::kInteger;
    tok.text = std::string(in_.substr(start, pos_ - start));
    return tok;
  }

  // Variables: $name or $prefix:name.
  if (c == '$') {
    ++pos_;
    SkipWhitespaceAndComments();
    if (pos_ >= in_.size() || !IsNameStartChar(in_[pos_])) {
      return Status::SyntaxError("expected variable name after '$' (at " +
                                 FormatLineCol(in_, tok.pos) + ")");
    }
    size_t start = pos_;
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    if (pos_ < in_.size() && in_[pos_] == ':' && pos_ + 1 < in_.size() &&
        IsNameStartChar(in_[pos_ + 1])) {
      ++pos_;
      while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    }
    tok.kind = TokKind::kVariable;
    tok.text = std::string(in_.substr(start, pos_ - start));
    return tok;
  }

  // Names / lexical QNames. A ':' joins two NCNames only when immediately
  // adjacent (no whitespace), which distinguishes "axis ::" handled below.
  if (IsNameStartChar(c)) {
    size_t start = pos_;
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    if (pos_ + 1 < in_.size() && in_[pos_] == ':' &&
        in_[pos_ + 1] != ':' &&  // don't eat axis "child::"
        (IsNameStartChar(in_[pos_ + 1]) || in_[pos_ + 1] == '*')) {
      ++pos_;
      if (in_[pos_] == '*') {
        ++pos_;  // prefix:* wildcard
      } else {
        while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
      }
    }
    tok.kind = TokKind::kName;
    tok.text = std::string(in_.substr(start, pos_ - start));
    return tok;
  }

  // "*:name" wildcard lexes as symbol '*' + ... we instead emit a name.
  if (c == '*' && pos_ + 1 < in_.size() && in_[pos_ + 1] == ':') {
    size_t start = pos_;
    pos_ += 2;
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    tok.kind = TokKind::kName;
    tok.text = std::string(in_.substr(start, pos_ - start));
    return tok;
  }

  for (std::string_view sym : kSymbols) {
    if (in_.substr(pos_, sym.size()) == sym) {
      pos_ += sym.size();
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(sym);
      return tok;
    }
  }
  return Status::SyntaxError(std::string("unexpected character '") + c +
                             "' (at " + FormatLineCol(in_, tok.pos) + ")");
}

const Token& Lexer::Peek() { return Peek(0); }

const Token& Lexer::Peek(size_t k) {
  while (buffered_.size() <= k) {
    if (!status_.ok()) return eof_token_;
    Result<Token> tok = LexOne();
    if (!tok.ok()) {
      status_ = tok.status();
      return eof_token_;
    }
    buffered_.push_back(std::move(tok).value());
    if (buffered_.back().kind == TokKind::kEof && buffered_.size() <= k) {
      return buffered_.back();
    }
  }
  return buffered_[k];
}

Token Lexer::Next() {
  const Token& t = Peek();
  Token out = t;
  if (!buffered_.empty()) buffered_.pop_front();
  return out;
}

size_t Lexer::TokenStart() { return Peek().pos; }

void Lexer::RawSeek(size_t pos) {
  buffered_.clear();
  pos_ = pos;
}

}  // namespace xqib::xquery
