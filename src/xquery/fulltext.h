// Simplified XQuery Full Text (paper §3.1): word tokenization, an
// English suffix-stripping stemmer, and phrase matching used by the
// ftcontains operator with ftand / ftor / ftnot and "with stemming".

#ifndef XQIB_XQUERY_FULLTEXT_H_
#define XQIB_XQUERY_FULLTEXT_H_

#include <string>
#include <string_view>
#include <vector>

namespace xqib::xquery {

// Splits text into lowercase word tokens (letters/digits runs).
std::vector<std::string> TokenizeWords(std::string_view text);

// A light English stemmer (Porter-style suffix stripping: plural forms,
// -ed, -ing, -ly, -ment, ...). Deterministic and cheap; good enough for
// the paper's "dog with stemming" examples.
std::string StemWord(std::string_view word);

// True if `phrase`'s tokens occur consecutively in `tokens`; with
// `stemming`, tokens are compared by stem.
bool ContainsPhrase(const std::vector<std::string>& tokens,
                    std::string_view phrase, bool stemming);

}  // namespace xqib::xquery

#endif  // XQIB_XQUERY_FULLTEXT_H_
