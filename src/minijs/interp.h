// MiniJS values and interpreter. Host objects (document, window, DOM
// nodes) plug in through property hooks and native functions.

#ifndef XQIB_MINIJS_INTERP_H_
#define XQIB_MINIJS_INTERP_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "minijs/ast.h"
#include "xml/dom.h"

namespace xqib::minijs {

class Interpreter;
struct JsObject;
using ObjPtr = std::shared_ptr<JsObject>;

class Value {
 public:
  enum class Kind { kUndefined, kNull, kBool, kNumber, kString, kObject };

  Value() : kind_(Kind::kUndefined) {}
  static Value Undefined() { return Value(); }
  static Value Null() {
    Value v;
    v.kind_ = Kind::kNull;
    return v;
  }
  static Value Boolean(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.num_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.str_ = std::move(s);
    return v;
  }
  static Value Object(ObjPtr obj) {
    Value v;
    v.kind_ = Kind::kObject;
    v.obj_ = std::move(obj);
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_undefined() const { return kind_ == Kind::kUndefined; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool bool_value() const { return bool_; }
  double num_value() const { return num_; }
  const std::string& str_value() const { return str_; }
  const ObjPtr& obj() const { return obj_; }

  bool ToBoolean() const;
  double ToNumber() const;
  std::string ToString() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  ObjPtr obj_;
};

using NativeFn = std::function<Result<Value>(std::vector<Value>& args,
                                             Value this_value,
                                             Interpreter& interp)>;

// Lexical environment (scope chain) for closures.
struct JsEnv {
  std::unordered_map<std::string, Value> vars;
  std::shared_ptr<JsEnv> parent;
};
using EnvPtr = std::shared_ptr<JsEnv>;

struct JsObject {
  std::unordered_map<std::string, Value> props;
  // Arrays.
  bool is_array = false;
  std::vector<Value> elements;
  // Callables: native or script function.
  NativeFn native;
  const JsExpr* fn = nullptr;  // kFunction literal (owned by the program)
  EnvPtr closure;
  // Host binding: a DOM node (wrapper identity compares by this).
  xml::Node* node = nullptr;
  // Property hooks for host objects. get returns engaged Value or
  // undefined-with-handled=false; set returns true if handled.
  std::function<bool(const std::string&, Interpreter&, Value*)> get_hook;
  std::function<bool(const std::string&, const Value&, Interpreter&)>
      set_hook;
};

class Interpreter {
 public:
  Interpreter();

  // The global scope (hosts install document/window/... here).
  EnvPtr globals() { return globals_; }
  void SetGlobal(const std::string& name, Value value) {
    globals_->vars[name] = std::move(value);
  }

  // Runs a program in the global scope. Keeps the program alive (its
  // function ASTs are referenced by closures).
  Status Run(std::unique_ptr<JsProgram> program);

  // Evaluates an expression (inline handlers) in a child scope with
  // extra bindings.
  Result<Value> EvalExpression(
      const JsExpr& expr,
      const std::vector<std::pair<std::string, Value>>& bindings);

  // Calls a function value with arguments.
  Result<Value> CallValue(const Value& fn, std::vector<Value> args,
                          Value this_value);

  // Keeps an expression AST alive for the interpreter's lifetime.
  const JsExpr* AdoptExpression(JsExprPtr expr);

  // Helper for hosts: a native function object.
  static Value MakeNative(NativeFn fn);
  // A wrapper object for a DOM node (configured by the host's factory).
  std::function<Value(xml::Node*)> node_wrapper;

 private:
  enum class Flow { kNormal, kReturn, kBreak, kContinue };

  Result<Value> Eval(const JsExpr& e, EnvPtr env);
  Status Exec(const JsStmt& s, EnvPtr env, Flow* flow, Value* ret);
  Status ExecBlock(const std::vector<JsStmtPtr>& body, EnvPtr env,
                   Flow* flow, Value* ret);
  Result<Value> EvalAssignTarget(const JsExpr& target, EnvPtr env,
                                 const Value& value);
  Result<Value> GetMember(const Value& base, const std::string& name);
  Status SetMember(const Value& base, const std::string& name,
                   const Value& value);
  Value* FindVar(const std::string& name, EnvPtr env);

  EnvPtr globals_;
  std::vector<std::unique_ptr<JsProgram>> programs_;
  std::vector<JsExprPtr> adopted_exprs_;
  int call_depth_ = 0;
  static constexpr int kMaxCallDepth = 256;
};

// JS loose equality/relational helpers (exposed for tests).
bool JsLooseEquals(const Value& a, const Value& b);

}  // namespace xqib::minijs

#endif  // XQIB_MINIJS_INTERP_H_
