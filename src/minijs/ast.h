// AST for MiniJS — the JavaScript subset that coexists with XQuery in
// the browser (paper §6.2). Covers the constructs the paper's JS
// examples use: var, functions/closures, control flow, the usual
// operators, object/array literals, member access and calls.

#ifndef XQIB_MINIJS_AST_H_
#define XQIB_MINIJS_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xqib::minijs {

struct JsExpr;
struct JsStmt;
using JsExprPtr = std::unique_ptr<JsExpr>;
using JsStmtPtr = std::unique_ptr<JsStmt>;

enum class JsExprKind {
  kNumber,       // num
  kString,       // str
  kBool,         // flag
  kNull,
  kUndefined,
  kIdentifier,   // str
  kThis,
  kMember,       // kids[0].str  (static member)
  kIndex,        // kids[0][kids[1]]
  kCall,         // kids[0](kids[1..])
  kNew,          // new kids[0](kids[1..]) — constructs a plain object
  kAssign,       // op in {=, +=, -=}; kids[0] = target, kids[1] = value
  kBinary,       // op; kids[0], kids[1]
  kLogical,      // op in {&&, ||}; short-circuit
  kUnary,        // op in {!, -, +, typeof}
  kUpdate,       // ++/--; flag=prefix; kids[0] target
  kConditional,  // kids: [cond, then, else]
  kFunction,     // function literal: params, body
  kObjectLit,    // props: (name, expr) pairs
  kArrayLit,     // kids: elements
};

struct JsExpr {
  explicit JsExpr(JsExprKind k) : kind(k) {}
  JsExprKind kind;
  double num = 0;
  std::string str;  // identifier / member name / operator
  bool flag = false;
  std::vector<JsExprPtr> kids;
  // kFunction
  std::vector<std::string> params;
  std::vector<JsStmtPtr> body;
  // kObjectLit
  std::vector<std::pair<std::string, JsExprPtr>> props;
};

enum class JsStmtKind {
  kExpr,      // kids/expr
  kVar,       // str = name; expr optional init (one declarator per stmt)
  kFunction,  // named function declaration (expr is a kFunction literal)
  kIf,        // cond, then_block, else_block
  kWhile,     // cond, body
  kFor,       // init (stmt), cond, step (expr), body
  kReturn,    // optional expr
  kBreak,
  kContinue,
  kBlock,
};

struct JsStmt {
  explicit JsStmt(JsStmtKind k) : kind(k) {}
  JsStmtKind kind;
  std::string str;
  JsExprPtr expr;      // expression / condition / init value
  JsExprPtr expr2;     // for-step
  JsStmtPtr init;      // for-init
  std::vector<JsStmtPtr> body;
  std::vector<JsStmtPtr> else_body;
};

// A parsed program.
struct JsProgram {
  std::vector<JsStmtPtr> statements;
};

}  // namespace xqib::minijs

#endif  // XQIB_MINIJS_AST_H_
