// Lexer + recursive-descent parser for MiniJS.

#ifndef XQIB_MINIJS_JS_PARSER_H_
#define XQIB_MINIJS_JS_PARSER_H_

#include <memory>
#include <string_view>

#include "base/result.h"
#include "minijs/ast.h"

namespace xqib::minijs {

Result<std::unique_ptr<JsProgram>> ParseProgram(std::string_view source);

// Parses a single expression (inline handler bodies).
Result<JsExprPtr> ParseJsExpression(std::string_view source);

}  // namespace xqib::minijs

#endif  // XQIB_MINIJS_JS_PARSER_H_
