// MiniJS ↔ browser bindings: the document/window host objects, DOM node
// wrappers, document.evaluate (embedded XPath, paper §2.2), and event
// listener registration. Implements the plug-in's ForeignScriptEngine
// interface so JavaScript and XQuery coexist on one page (§6.2).

#ifndef XQIB_MINIJS_DOM_BINDING_H_
#define XQIB_MINIJS_DOM_BINDING_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "browser/bom.h"
#include "minijs/interp.h"
#include "plugin/plugin.h"

namespace xqib::minijs {

class DomBinding : public plugin::ForeignScriptEngine {
 public:
  explicit DomBinding(browser::Browser* browser);
  ~DomBinding() override;

  // Where window.alert output goes (defaults to an internal log).
  std::function<void(const std::string&)> alert_sink;
  const std::vector<std::string>& alerts() const { return alerts_; }

  // --- ForeignScriptEngine ---
  bool Handles(browser::ScriptLanguage language) const override;
  Status RunScript(browser::Window* window,
                   const browser::Script& script) override;
  Status RegisterInlineHandler(
      browser::Window* window,
      const browser::InlineHandler& handler) override;

  // The interpreter bound to a window (created on demand) — exposed so
  // tests and benchmarks can inject globals or call functions directly.
  Interpreter* InterpreterFor(browser::Window* window);

  // Runs `source` directly against a window (benchmark entry point).
  Status Execute(browser::Window* window, const std::string& source);

  // Wraps a DOM node as a JS value (exposed for tests).
  Value WrapNode(browser::Window* window, xml::Node* node);

  const Status& last_error() const { return last_error_; }

 private:
  struct WindowState {
    std::unique_ptr<Interpreter> interp;
    browser::Window* window;
  };

  WindowState* StateFor(browser::Window* window);
  void InstallGlobals(WindowState* state);
  Value MakeDocumentObject(WindowState* state);
  Value MakeWindowObject(WindowState* state);
  Value MakeEventObject(WindowState* state, const browser::Event& event);

  // XPath evaluation for document.evaluate.
  Result<std::vector<xml::Node*>> EvaluateXPath(const std::string& xpath,
                                                xml::Node* context_node);

  browser::Browser* browser_;
  std::unordered_map<const browser::Window*, std::unique_ptr<WindowState>>
      states_;
  std::vector<std::string> alerts_;
  Status last_error_;
  uint64_t next_listener_id_ = 1;
};

}  // namespace xqib::minijs

#endif  // XQIB_MINIJS_DOM_BINDING_H_
