#include "minijs/js_parser.h"

#include <cstdlib>
#include <vector>

#include "base/strings.h"

namespace xqib::minijs {

namespace {

enum class Tok {
  kEof, kNumber, kString, kIdent, kPunct,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  double num = 0;
  size_t pos = 0;
};

class JsLexer {
 public:
  explicit JsLexer(std::string_view in) : in_(in) { Advance(); }

  const Token& cur() const { return cur_; }
  const Token& ahead() {
    if (!has_ahead_) {
      ahead_tok_ = Lex();
      has_ahead_ = true;
    }
    return ahead_tok_;
  }
  void Advance() {
    if (has_ahead_) {
      cur_ = ahead_tok_;
      has_ahead_ = false;
    } else {
      cur_ = Lex();
    }
  }
  const Status& status() const { return status_; }

 private:
  void SkipTrivia() {
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '/') {
        while (pos_ < in_.size() && in_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '*') {
        size_t end = in_.find("*/", pos_ + 2);
        pos_ = end == std::string_view::npos ? in_.size() : end + 2;
      } else {
        break;
      }
    }
  }

  Token Lex() {
    SkipTrivia();
    Token t;
    t.pos = pos_;
    if (pos_ >= in_.size()) return t;
    char c = in_[pos_];
    if ((c >= '0' && c <= '9') ||
        (c == '.' && pos_ + 1 < in_.size() && in_[pos_ + 1] >= '0' &&
         in_[pos_ + 1] <= '9')) {
      char* end = nullptr;
      t.num = std::strtod(in_.data() + pos_, &end);
      t.kind = Tok::kNumber;
      pos_ = static_cast<size_t>(end - in_.data());
      return t;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos_;
      std::string s;
      while (pos_ < in_.size() && in_[pos_] != quote) {
        if (in_[pos_] == '\\' && pos_ + 1 < in_.size()) {
          char e = in_[pos_ + 1];
          switch (e) {
            case 'n': s.push_back('\n'); break;
            case 't': s.push_back('\t'); break;
            case 'r': s.push_back('\r'); break;
            default: s.push_back(e);
          }
          pos_ += 2;
        } else {
          s.push_back(in_[pos_++]);
        }
      }
      if (pos_ >= in_.size()) {
        status_ = Status::SyntaxError("unterminated JS string literal");
        return t;
      }
      ++pos_;
      t.kind = Tok::kString;
      t.text = std::move(s);
      return t;
    }
    auto is_js_ident_start = [](char ch) {
      return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
             ch == '_' || ch == '$';
    };
    auto is_js_ident = [&](char ch) {
      return is_js_ident_start(ch) || (ch >= '0' && ch <= '9');
    };
    if (is_js_ident_start(c)) {
      size_t start = pos_;
      while (pos_ < in_.size() && is_js_ident(in_[pos_])) {
        ++pos_;
      }
      t.kind = Tok::kIdent;
      t.text = std::string(in_.substr(start, pos_ - start));
      return t;
    }
    static constexpr std::string_view kPuncts[] = {
        "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
        "+=",  "-=",  "*=", "/=", "(",  ")",  "{",  "}",  "[",  "]",
        ",",   ";",   ".",  "+",  "-",  "*",  "/",  "%",  "<",  ">",
        "=",   "!",   "?",  ":",
    };
    for (std::string_view p : kPuncts) {
      if (in_.substr(pos_, p.size()) == p) {
        t.kind = Tok::kPunct;
        t.text = std::string(p);
        pos_ += p.size();
        return t;
      }
    }
    status_ = Status::SyntaxError(std::string("unexpected JS character '") +
                                  c + "'");
    return t;
  }

  std::string_view in_;
  size_t pos_ = 0;
  Token cur_;
  Token ahead_tok_;
  bool has_ahead_ = false;
  Status status_;
};

class JsParser {
 public:
  explicit JsParser(std::string_view in) : lex_(in) {}

  Result<std::unique_ptr<JsProgram>> Program() {
    auto program = std::make_unique<JsProgram>();
    while (lex_.cur().kind != Tok::kEof) {
      XQ_RETURN_NOT_OK(lex_.status());
      XQ_ASSIGN_OR_RETURN(JsStmtPtr stmt, Statement());
      program->statements.push_back(std::move(stmt));
    }
    XQ_RETURN_NOT_OK(lex_.status());
    return program;
  }

  Result<JsExprPtr> SingleExpression() {
    XQ_ASSIGN_OR_RETURN(JsExprPtr e, Expression());
    XQ_RETURN_NOT_OK(lex_.status());
    return e;
  }

 private:
  bool AtPunct(std::string_view p) const {
    return lex_.cur().kind == Tok::kPunct && lex_.cur().text == p;
  }
  bool AtIdent(std::string_view name) const {
    return lex_.cur().kind == Tok::kIdent && lex_.cur().text == name;
  }
  bool EatPunct(std::string_view p) {
    if (AtPunct(p)) {
      lex_.Advance();
      return true;
    }
    return false;
  }
  bool EatIdent(std::string_view name) {
    if (AtIdent(name)) {
      lex_.Advance();
      return true;
    }
    return false;
  }
  Status Expect(std::string_view p) {
    if (!EatPunct(p)) {
      return Status::SyntaxError("JS: expected '" + std::string(p) +
                                 "' near '" + lex_.cur().text + "' at offset " +
                                 std::to_string(lex_.cur().pos));
    }
    return Status();
  }

  Result<JsStmtPtr> Statement() {
    if (AtPunct("{")) {
      lex_.Advance();
      auto block = std::make_unique<JsStmt>(JsStmtKind::kBlock);
      while (!AtPunct("}") && lex_.cur().kind != Tok::kEof) {
        XQ_ASSIGN_OR_RETURN(JsStmtPtr s, Statement());
        block->body.push_back(std::move(s));
      }
      XQ_RETURN_NOT_OK(Expect("}"));
      return block;
    }
    if (AtIdent("var") || AtIdent("let") || AtIdent("const")) {
      lex_.Advance();
      auto block = std::make_unique<JsStmt>(JsStmtKind::kBlock);
      while (true) {
        if (lex_.cur().kind != Tok::kIdent) {
          return Status::SyntaxError("JS: expected variable name");
        }
        auto decl = std::make_unique<JsStmt>(JsStmtKind::kVar);
        decl->str = lex_.cur().text;
        lex_.Advance();
        if (EatPunct("=")) {
          XQ_ASSIGN_OR_RETURN(decl->expr, Assignment());
        }
        block->body.push_back(std::move(decl));
        if (!EatPunct(",")) break;
      }
      EatPunct(";");
      if (block->body.size() == 1) return std::move(block->body[0]);
      return block;
    }
    if (AtIdent("function") && lex_.ahead().kind == Tok::kIdent) {
      lex_.Advance();
      auto stmt = std::make_unique<JsStmt>(JsStmtKind::kFunction);
      stmt->str = lex_.cur().text;
      lex_.Advance();
      XQ_ASSIGN_OR_RETURN(stmt->expr, FunctionRest());
      return stmt;
    }
    if (EatIdent("if")) {
      auto stmt = std::make_unique<JsStmt>(JsStmtKind::kIf);
      XQ_RETURN_NOT_OK(Expect("("));
      XQ_ASSIGN_OR_RETURN(stmt->expr, Expression());
      XQ_RETURN_NOT_OK(Expect(")"));
      XQ_ASSIGN_OR_RETURN(JsStmtPtr then_s, Statement());
      stmt->body.push_back(std::move(then_s));
      if (EatIdent("else")) {
        XQ_ASSIGN_OR_RETURN(JsStmtPtr else_s, Statement());
        stmt->else_body.push_back(std::move(else_s));
      }
      return stmt;
    }
    if (EatIdent("while")) {
      auto stmt = std::make_unique<JsStmt>(JsStmtKind::kWhile);
      XQ_RETURN_NOT_OK(Expect("("));
      XQ_ASSIGN_OR_RETURN(stmt->expr, Expression());
      XQ_RETURN_NOT_OK(Expect(")"));
      XQ_ASSIGN_OR_RETURN(JsStmtPtr body, Statement());
      stmt->body.push_back(std::move(body));
      return stmt;
    }
    if (EatIdent("for")) {
      auto stmt = std::make_unique<JsStmt>(JsStmtKind::kFor);
      XQ_RETURN_NOT_OK(Expect("("));
      if (!AtPunct(";")) {
        XQ_ASSIGN_OR_RETURN(stmt->init, Statement());
      } else {
        lex_.Advance();
      }
      if (!AtPunct(";")) {
        XQ_ASSIGN_OR_RETURN(stmt->expr, Expression());
      }
      XQ_RETURN_NOT_OK(Expect(";"));
      if (!AtPunct(")")) {
        XQ_ASSIGN_OR_RETURN(stmt->expr2, Expression());
      }
      XQ_RETURN_NOT_OK(Expect(")"));
      XQ_ASSIGN_OR_RETURN(JsStmtPtr body, Statement());
      stmt->body.push_back(std::move(body));
      return stmt;
    }
    if (EatIdent("return")) {
      auto stmt = std::make_unique<JsStmt>(JsStmtKind::kReturn);
      if (!AtPunct(";") && !AtPunct("}") && lex_.cur().kind != Tok::kEof) {
        XQ_ASSIGN_OR_RETURN(stmt->expr, Expression());
      }
      EatPunct(";");
      return stmt;
    }
    if (EatIdent("break")) {
      EatPunct(";");
      return std::make_unique<JsStmt>(JsStmtKind::kBreak);
    }
    if (EatIdent("continue")) {
      EatPunct(";");
      return std::make_unique<JsStmt>(JsStmtKind::kContinue);
    }
    auto stmt = std::make_unique<JsStmt>(JsStmtKind::kExpr);
    XQ_ASSIGN_OR_RETURN(stmt->expr, Expression());
    EatPunct(";");
    return stmt;
  }

  // Expression with comma? JS comma operator is rare; we treat a single
  // assignment expression as the statement expression.
  Result<JsExprPtr> Expression() { return Assignment(); }

  Result<JsExprPtr> Assignment() {
    XQ_ASSIGN_OR_RETURN(JsExprPtr lhs, Conditional());
    if (AtPunct("=") || AtPunct("+=") || AtPunct("-=") || AtPunct("*=") ||
        AtPunct("/=")) {
      std::string op = lex_.cur().text;
      lex_.Advance();
      XQ_ASSIGN_OR_RETURN(JsExprPtr rhs, Assignment());
      auto e = std::make_unique<JsExpr>(JsExprKind::kAssign);
      e->str = op;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      return e;
    }
    return lhs;
  }

  Result<JsExprPtr> Conditional() {
    XQ_ASSIGN_OR_RETURN(JsExprPtr cond, LogicalOr());
    if (!EatPunct("?")) return cond;
    auto e = std::make_unique<JsExpr>(JsExprKind::kConditional);
    e->kids.push_back(std::move(cond));
    XQ_ASSIGN_OR_RETURN(JsExprPtr then_e, Assignment());
    XQ_RETURN_NOT_OK(Expect(":"));
    XQ_ASSIGN_OR_RETURN(JsExprPtr else_e, Assignment());
    e->kids.push_back(std::move(then_e));
    e->kids.push_back(std::move(else_e));
    return e;
  }

  Result<JsExprPtr> LogicalOr() {
    XQ_ASSIGN_OR_RETURN(JsExprPtr lhs, LogicalAnd());
    while (AtPunct("||")) {
      lex_.Advance();
      XQ_ASSIGN_OR_RETURN(JsExprPtr rhs, LogicalAnd());
      auto e = std::make_unique<JsExpr>(JsExprKind::kLogical);
      e->str = "||";
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<JsExprPtr> LogicalAnd() {
    XQ_ASSIGN_OR_RETURN(JsExprPtr lhs, Equality());
    while (AtPunct("&&")) {
      lex_.Advance();
      XQ_ASSIGN_OR_RETURN(JsExprPtr rhs, Equality());
      auto e = std::make_unique<JsExpr>(JsExprKind::kLogical);
      e->str = "&&";
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<JsExprPtr> Binary(const char* const* ops, size_t n_ops,
                           Result<JsExprPtr> (JsParser::*next)()) {
    XQ_ASSIGN_OR_RETURN(JsExprPtr lhs, (this->*next)());
    while (true) {
      bool matched = false;
      for (size_t i = 0; i < n_ops; ++i) {
        if (AtPunct(ops[i])) {
          std::string op = lex_.cur().text;
          lex_.Advance();
          XQ_ASSIGN_OR_RETURN(JsExprPtr rhs, (this->*next)());
          auto e = std::make_unique<JsExpr>(JsExprKind::kBinary);
          e->str = op;
          e->kids.push_back(std::move(lhs));
          e->kids.push_back(std::move(rhs));
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  Result<JsExprPtr> Equality() {
    static const char* ops[] = {"===", "!==", "==", "!="};
    return Binary(ops, 4, &JsParser::Relational);
  }
  Result<JsExprPtr> Relational() {
    static const char* ops[] = {"<=", ">=", "<", ">"};
    return Binary(ops, 4, &JsParser::Additive);
  }
  Result<JsExprPtr> Additive() {
    static const char* ops[] = {"+", "-"};
    return Binary(ops, 2, &JsParser::Multiplicative);
  }
  Result<JsExprPtr> Multiplicative() {
    static const char* ops[] = {"*", "/", "%"};
    return Binary(ops, 3, &JsParser::Unary);
  }

  Result<JsExprPtr> Unary() {
    if (AtPunct("!") || AtPunct("-") || AtPunct("+")) {
      std::string op = lex_.cur().text;
      lex_.Advance();
      XQ_ASSIGN_OR_RETURN(JsExprPtr operand, Unary());
      auto e = std::make_unique<JsExpr>(JsExprKind::kUnary);
      e->str = op;
      e->kids.push_back(std::move(operand));
      return e;
    }
    if (AtIdent("typeof")) {
      lex_.Advance();
      XQ_ASSIGN_OR_RETURN(JsExprPtr operand, Unary());
      auto e = std::make_unique<JsExpr>(JsExprKind::kUnary);
      e->str = "typeof";
      e->kids.push_back(std::move(operand));
      return e;
    }
    if (AtPunct("++") || AtPunct("--")) {
      std::string op = lex_.cur().text;
      lex_.Advance();
      XQ_ASSIGN_OR_RETURN(JsExprPtr target, Unary());
      auto e = std::make_unique<JsExpr>(JsExprKind::kUpdate);
      e->str = op;
      e->flag = true;  // prefix
      e->kids.push_back(std::move(target));
      return e;
    }
    return Postfix();
  }

  Result<JsExprPtr> Postfix() {
    XQ_ASSIGN_OR_RETURN(JsExprPtr e, CallMember());
    if (AtPunct("++") || AtPunct("--")) {
      auto u = std::make_unique<JsExpr>(JsExprKind::kUpdate);
      u->str = lex_.cur().text;
      u->flag = false;  // postfix
      lex_.Advance();
      u->kids.push_back(std::move(e));
      return u;
    }
    return e;
  }

  Result<JsExprPtr> CallMember() {
    JsExprPtr e;
    if (EatIdent("new")) {
      auto n = std::make_unique<JsExpr>(JsExprKind::kNew);
      XQ_ASSIGN_OR_RETURN(JsExprPtr callee, Primary());
      n->kids.push_back(std::move(callee));
      if (EatPunct("(")) {
        while (!AtPunct(")") && lex_.cur().kind != Tok::kEof) {
          XQ_ASSIGN_OR_RETURN(JsExprPtr arg, Assignment());
          n->kids.push_back(std::move(arg));
          if (!EatPunct(",")) break;
        }
        XQ_RETURN_NOT_OK(Expect(")"));
      }
      e = std::move(n);
    } else {
      XQ_ASSIGN_OR_RETURN(e, Primary());
    }
    while (true) {
      if (EatPunct(".")) {
        if (lex_.cur().kind != Tok::kIdent) {
          return Status::SyntaxError("JS: expected member name");
        }
        auto m = std::make_unique<JsExpr>(JsExprKind::kMember);
        m->str = lex_.cur().text;
        lex_.Advance();
        m->kids.push_back(std::move(e));
        e = std::move(m);
      } else if (EatPunct("[")) {
        auto m = std::make_unique<JsExpr>(JsExprKind::kIndex);
        m->kids.push_back(std::move(e));
        XQ_ASSIGN_OR_RETURN(JsExprPtr idx, Expression());
        m->kids.push_back(std::move(idx));
        XQ_RETURN_NOT_OK(Expect("]"));
        e = std::move(m);
      } else if (EatPunct("(")) {
        auto call = std::make_unique<JsExpr>(JsExprKind::kCall);
        call->kids.push_back(std::move(e));
        while (!AtPunct(")") && lex_.cur().kind != Tok::kEof) {
          XQ_ASSIGN_OR_RETURN(JsExprPtr arg, Assignment());
          call->kids.push_back(std::move(arg));
          if (!EatPunct(",")) break;
        }
        XQ_RETURN_NOT_OK(Expect(")"));
        e = std::move(call);
      } else {
        return e;
      }
    }
  }

  // Parses "(params) { body }" after the `function` keyword and name.
  Result<JsExprPtr> FunctionRest() {
    auto fn = std::make_unique<JsExpr>(JsExprKind::kFunction);
    XQ_RETURN_NOT_OK(Expect("("));
    while (!AtPunct(")") && lex_.cur().kind != Tok::kEof) {
      if (lex_.cur().kind != Tok::kIdent) {
        return Status::SyntaxError("JS: expected parameter name");
      }
      fn->params.push_back(lex_.cur().text);
      lex_.Advance();
      if (!EatPunct(",")) break;
    }
    XQ_RETURN_NOT_OK(Expect(")"));
    XQ_RETURN_NOT_OK(Expect("{"));
    while (!AtPunct("}") && lex_.cur().kind != Tok::kEof) {
      XQ_ASSIGN_OR_RETURN(JsStmtPtr s, Statement());
      fn->body.push_back(std::move(s));
    }
    XQ_RETURN_NOT_OK(Expect("}"));
    return fn;
  }

  Result<JsExprPtr> Primary() {
    const Token& t = lex_.cur();
    switch (t.kind) {
      case Tok::kNumber: {
        auto e = std::make_unique<JsExpr>(JsExprKind::kNumber);
        e->num = t.num;
        lex_.Advance();
        return e;
      }
      case Tok::kString: {
        auto e = std::make_unique<JsExpr>(JsExprKind::kString);
        e->str = t.text;
        lex_.Advance();
        return e;
      }
      case Tok::kIdent: {
        if (t.text == "true" || t.text == "false") {
          auto e = std::make_unique<JsExpr>(JsExprKind::kBool);
          e->flag = t.text == "true";
          lex_.Advance();
          return e;
        }
        if (t.text == "null") {
          lex_.Advance();
          return std::make_unique<JsExpr>(JsExprKind::kNull);
        }
        if (t.text == "undefined") {
          lex_.Advance();
          return std::make_unique<JsExpr>(JsExprKind::kUndefined);
        }
        if (t.text == "this") {
          lex_.Advance();
          return std::make_unique<JsExpr>(JsExprKind::kThis);
        }
        if (t.text == "function") {
          lex_.Advance();
          // Optional name on function expressions is ignored.
          if (lex_.cur().kind == Tok::kIdent) lex_.Advance();
          return FunctionRest();
        }
        auto e = std::make_unique<JsExpr>(JsExprKind::kIdentifier);
        e->str = t.text;
        lex_.Advance();
        return e;
      }
      default:
        break;
    }
    if (EatPunct("(")) {
      XQ_ASSIGN_OR_RETURN(JsExprPtr e, Expression());
      XQ_RETURN_NOT_OK(Expect(")"));
      return e;
    }
    if (EatPunct("{")) {
      auto e = std::make_unique<JsExpr>(JsExprKind::kObjectLit);
      while (!AtPunct("}") && lex_.cur().kind != Tok::kEof) {
        if (lex_.cur().kind != Tok::kIdent &&
            lex_.cur().kind != Tok::kString) {
          return Status::SyntaxError("JS: expected property name");
        }
        std::string name = lex_.cur().text;
        lex_.Advance();
        XQ_RETURN_NOT_OK(Expect(":"));
        XQ_ASSIGN_OR_RETURN(JsExprPtr value, Assignment());
        e->props.emplace_back(std::move(name), std::move(value));
        if (!EatPunct(",")) break;
      }
      XQ_RETURN_NOT_OK(Expect("}"));
      return e;
    }
    if (EatPunct("[")) {
      auto e = std::make_unique<JsExpr>(JsExprKind::kArrayLit);
      while (!AtPunct("]") && lex_.cur().kind != Tok::kEof) {
        XQ_ASSIGN_OR_RETURN(JsExprPtr v, Assignment());
        e->kids.push_back(std::move(v));
        if (!EatPunct(",")) break;
      }
      XQ_RETURN_NOT_OK(Expect("]"));
      return e;
    }
    XQ_RETURN_NOT_OK(lex_.status());
    return Status::SyntaxError("JS: unexpected token '" + t.text +
                               "' at offset " + std::to_string(t.pos));
  }

  JsLexer lex_;
};

}  // namespace

Result<std::unique_ptr<JsProgram>> ParseProgram(std::string_view source) {
  JsParser parser(source);
  return parser.Program();
}

Result<JsExprPtr> ParseJsExpression(std::string_view source) {
  JsParser parser(source);
  return parser.SingleExpression();
}

}  // namespace xqib::minijs
