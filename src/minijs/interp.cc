#include "minijs/interp.h"

#include <algorithm>
#include <cmath>

#include "base/strings.h"

namespace xqib::minijs {

// --------------------------------------------------------------- Value ---

bool Value::ToBoolean() const {
  switch (kind_) {
    case Kind::kUndefined:
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return bool_;
    case Kind::kNumber:
      return num_ != 0 && !std::isnan(num_);
    case Kind::kString:
      return !str_.empty();
    case Kind::kObject:
      return true;
  }
  return false;
}

double Value::ToNumber() const {
  switch (kind_) {
    case Kind::kUndefined:
      return std::nan("");
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return bool_ ? 1 : 0;
    case Kind::kNumber:
      return num_;
    case Kind::kString: {
      std::string t(TrimWhitespace(str_));
      if (t.empty()) return 0;
      char* end = nullptr;
      double d = std::strtod(t.c_str(), &end);
      if (end != t.c_str() + t.size()) return std::nan("");
      return d;
    }
    case Kind::kObject:
      return std::nan("");
  }
  return std::nan("");
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kUndefined:
      return "undefined";
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
      return DoubleToXPathString(num_);
    case Kind::kString:
      return str_;
    case Kind::kObject: {
      if (obj_->is_array) {
        std::string out;
        for (size_t i = 0; i < obj_->elements.size(); ++i) {
          if (i > 0) out += ",";
          out += obj_->elements[i].ToString();
        }
        return out;
      }
      if (obj_->node != nullptr) return "[object Node]";
      if (obj_->native || obj_->fn != nullptr) return "function";
      return "[object Object]";
    }
  }
  return "";
}

bool JsLooseEquals(const Value& a, const Value& b) {
  using K = Value::Kind;
  if (a.kind() == b.kind()) {
    switch (a.kind()) {
      case K::kUndefined:
      case K::kNull:
        return true;
      case K::kBool:
        return a.bool_value() == b.bool_value();
      case K::kNumber:
        return a.num_value() == b.num_value();
      case K::kString:
        return a.str_value() == b.str_value();
      case K::kObject:
        if (a.obj()->node != nullptr && b.obj()->node != nullptr) {
          return a.obj()->node == b.obj()->node;  // wrapper-transparent
        }
        return a.obj() == b.obj();
    }
  }
  // null == undefined.
  if ((a.kind() == K::kNull && b.kind() == K::kUndefined) ||
      (a.kind() == K::kUndefined && b.kind() == K::kNull)) {
    return true;
  }
  // Mixed: numeric coercion (string==number etc.).
  if (a.kind() == K::kObject || b.kind() == K::kObject) return false;
  return a.ToNumber() == b.ToNumber();
}

// --------------------------------------------------------- Interpreter ---

Interpreter::Interpreter() : globals_(std::make_shared<JsEnv>()) {}

Value Interpreter::MakeNative(NativeFn fn) {
  auto obj = std::make_shared<JsObject>();
  obj->native = std::move(fn);
  return Value::Object(std::move(obj));
}

const JsExpr* Interpreter::AdoptExpression(JsExprPtr expr) {
  adopted_exprs_.push_back(std::move(expr));
  return adopted_exprs_.back().get();
}

Status Interpreter::Run(std::unique_ptr<JsProgram> program) {
  JsProgram* p = program.get();
  programs_.push_back(std::move(program));
  Flow flow = Flow::kNormal;
  Value ret;
  // Hoist function declarations first (JS semantics).
  for (const JsStmtPtr& stmt : p->statements) {
    if (stmt->kind == JsStmtKind::kFunction) {
      auto obj = std::make_shared<JsObject>();
      obj->fn = stmt->expr.get();
      obj->closure = globals_;
      globals_->vars[stmt->str] = Value::Object(std::move(obj));
    }
  }
  for (const JsStmtPtr& stmt : p->statements) {
    if (stmt->kind == JsStmtKind::kFunction) continue;
    XQ_RETURN_NOT_OK(Exec(*stmt, globals_, &flow, &ret));
    if (flow != Flow::kNormal) break;
  }
  return Status();
}

Result<Value> Interpreter::EvalExpression(
    const JsExpr& expr,
    const std::vector<std::pair<std::string, Value>>& bindings) {
  EnvPtr env = std::make_shared<JsEnv>();
  env->parent = globals_;
  for (const auto& [name, value] : bindings) env->vars[name] = value;
  return Eval(expr, env);
}

Value* Interpreter::FindVar(const std::string& name, EnvPtr env) {
  for (JsEnv* e = env.get(); e != nullptr; e = e->parent.get()) {
    auto it = e->vars.find(name);
    if (it != e->vars.end()) return &it->second;
  }
  return nullptr;
}

Status Interpreter::ExecBlock(const std::vector<JsStmtPtr>& body, EnvPtr env,
                              Flow* flow, Value* ret) {
  // Hoist function declarations within the block.
  for (const JsStmtPtr& stmt : body) {
    if (stmt->kind == JsStmtKind::kFunction) {
      auto obj = std::make_shared<JsObject>();
      obj->fn = stmt->expr.get();
      obj->closure = env;
      env->vars[stmt->str] = Value::Object(std::move(obj));
    }
  }
  for (const JsStmtPtr& stmt : body) {
    if (stmt->kind == JsStmtKind::kFunction) continue;
    XQ_RETURN_NOT_OK(Exec(*stmt, env, flow, ret));
    if (*flow != Flow::kNormal) return Status();
  }
  return Status();
}

Status Interpreter::Exec(const JsStmt& s, EnvPtr env, Flow* flow,
                         Value* ret) {
  switch (s.kind) {
    case JsStmtKind::kExpr: {
      XQ_RETURN_NOT_OK(Eval(*s.expr, env).status());
      return Status();
    }
    case JsStmtKind::kVar: {
      Value init;
      if (s.expr != nullptr) {
        XQ_ASSIGN_OR_RETURN(init, Eval(*s.expr, env));
      }
      env->vars[s.str] = std::move(init);
      return Status();
    }
    case JsStmtKind::kFunction: {
      auto obj = std::make_shared<JsObject>();
      obj->fn = s.expr.get();
      obj->closure = env;
      env->vars[s.str] = Value::Object(std::move(obj));
      return Status();
    }
    case JsStmtKind::kIf: {
      XQ_ASSIGN_OR_RETURN(Value cond, Eval(*s.expr, env));
      if (cond.ToBoolean()) {
        return ExecBlock(s.body, env, flow, ret);
      }
      return ExecBlock(s.else_body, env, flow, ret);
    }
    case JsStmtKind::kWhile: {
      while (true) {
        XQ_ASSIGN_OR_RETURN(Value cond, Eval(*s.expr, env));
        if (!cond.ToBoolean()) break;
        XQ_RETURN_NOT_OK(ExecBlock(s.body, env, flow, ret));
        if (*flow == Flow::kBreak) {
          *flow = Flow::kNormal;
          break;
        }
        if (*flow == Flow::kContinue) *flow = Flow::kNormal;
        if (*flow == Flow::kReturn) break;
      }
      return Status();
    }
    case JsStmtKind::kFor: {
      EnvPtr scope = std::make_shared<JsEnv>();
      scope->parent = env;
      if (s.init != nullptr) {
        XQ_RETURN_NOT_OK(Exec(*s.init, scope, flow, ret));
      }
      while (true) {
        if (s.expr != nullptr) {
          XQ_ASSIGN_OR_RETURN(Value cond, Eval(*s.expr, scope));
          if (!cond.ToBoolean()) break;
        }
        XQ_RETURN_NOT_OK(ExecBlock(s.body, scope, flow, ret));
        if (*flow == Flow::kBreak) {
          *flow = Flow::kNormal;
          break;
        }
        if (*flow == Flow::kContinue) *flow = Flow::kNormal;
        if (*flow == Flow::kReturn) break;
        if (s.expr2 != nullptr) {
          XQ_RETURN_NOT_OK(Eval(*s.expr2, scope).status());
        }
      }
      return Status();
    }
    case JsStmtKind::kReturn: {
      if (s.expr != nullptr) {
        XQ_ASSIGN_OR_RETURN(*ret, Eval(*s.expr, env));
      } else {
        *ret = Value::Undefined();
      }
      *flow = Flow::kReturn;
      return Status();
    }
    case JsStmtKind::kBreak:
      *flow = Flow::kBreak;
      return Status();
    case JsStmtKind::kContinue:
      *flow = Flow::kContinue;
      return Status();
    case JsStmtKind::kBlock: {
      EnvPtr scope = std::make_shared<JsEnv>();
      scope->parent = env;
      return ExecBlock(s.body, scope, flow, ret);
    }
  }
  return Status::NotImplemented("JS statement kind");
}

namespace {

// String prototype methods, bound to the receiver's value.
Result<Value> StringMethod(const std::string& s, const std::string& name,
                           bool* handled) {
  *handled = true;
  if (name == "length") {
    return Value::Number(static_cast<double>(s.size()));
  }
  if (name == "indexOf") {
    return Interpreter::MakeNative(
        [s](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
          size_t pos = args.empty() ? std::string::npos
                                    : s.find(args[0].ToString());
          return Value::Number(pos == std::string::npos
                                   ? -1.0
                                   : static_cast<double>(pos));
        });
  }
  if (name == "charAt") {
    return Interpreter::MakeNative(
        [s](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
          size_t i = args.empty() ? 0
                                  : static_cast<size_t>(args[0].ToNumber());
          if (i >= s.size()) return Value::String("");
          return Value::String(std::string(1, s[i]));
        });
  }
  if (name == "substring") {
    return Interpreter::MakeNative(
        [s](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
          size_t from = args.empty()
                            ? 0
                            : static_cast<size_t>(
                                  std::max(0.0, args[0].ToNumber()));
          size_t to = args.size() > 1 ? static_cast<size_t>(std::max(
                                            0.0, args[1].ToNumber()))
                                      : s.size();
          if (from > s.size()) from = s.size();
          if (to > s.size()) to = s.size();
          if (from > to) std::swap(from, to);
          return Value::String(s.substr(from, to - from));
        });
  }
  if (name == "split") {
    return Interpreter::MakeNative(
        [s](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
          auto arr = std::make_shared<JsObject>();
          arr->is_array = true;
          std::string sep = args.empty() ? "" : args[0].ToString();
          if (sep.empty()) {
            for (char c : s) {
              arr->elements.push_back(Value::String(std::string(1, c)));
            }
          } else {
            size_t start = 0;
            while (true) {
              size_t pos = s.find(sep, start);
              arr->elements.push_back(Value::String(
                  s.substr(start, pos == std::string::npos
                                      ? std::string::npos
                                      : pos - start)));
              if (pos == std::string::npos) break;
              start = pos + sep.size();
            }
          }
          return Value::Object(std::move(arr));
        });
  }
  if (name == "toUpperCase" || name == "toLowerCase") {
    bool upper = name == "toUpperCase";
    return Interpreter::MakeNative(
        [s, upper](std::vector<Value>&, Value, Interpreter&)
            -> Result<Value> {
          return Value::String(upper ? AsciiToUpper(s) : AsciiToLower(s));
        });
  }
  *handled = false;
  return Value::Undefined();
}

}  // namespace

Result<Value> Interpreter::GetMember(const Value& base,
                                     const std::string& name) {
  if (!base.is_object()) {
    if (base.kind() == Value::Kind::kString) {
      bool handled = false;
      Result<Value> r = StringMethod(base.str_value(), name, &handled);
      if (handled) return r;
      return Value::Undefined();
    }
    return Status::Error("JSRT0001", "cannot read property '" + name +
                                         "' of " + base.ToString());
  }
  JsObject& obj = *base.obj();
  if (obj.get_hook) {
    Value out;
    if (obj.get_hook(name, *this, &out)) return out;
  }
  if (obj.is_array && name == "length") {
    return Value::Number(static_cast<double>(obj.elements.size()));
  }
  auto it = obj.props.find(name);
  if (it != obj.props.end()) return it->second;
  return Value::Undefined();
}

Status Interpreter::SetMember(const Value& base, const std::string& name,
                              const Value& value) {
  if (!base.is_object()) {
    return Status::Error("JSRT0001", "cannot set property '" + name +
                                         "' of " + base.ToString());
  }
  JsObject& obj = *base.obj();
  if (obj.set_hook && obj.set_hook(name, value, *this)) return Status();
  obj.props[name] = value;
  return Status();
}

Result<Value> Interpreter::CallValue(const Value& fn_value,
                                     std::vector<Value> args,
                                     Value this_value) {
  if (!fn_value.is_object() ||
      (!fn_value.obj()->native && fn_value.obj()->fn == nullptr)) {
    return Status::Error("JSRT0002", "value is not callable");
  }
  JsObject& fn = *fn_value.obj();
  if (fn.native) {
    return fn.native(args, std::move(this_value), *this);
  }
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    return Status::Error("JSRT0003", "JS recursion limit exceeded");
  }
  EnvPtr scope = std::make_shared<JsEnv>();
  scope->parent = fn.closure != nullptr ? fn.closure : globals_;
  for (size_t i = 0; i < fn.fn->params.size(); ++i) {
    scope->vars[fn.fn->params[i]] =
        i < args.size() ? std::move(args[i]) : Value::Undefined();
  }
  scope->vars["this"] = std::move(this_value);
  Flow flow = Flow::kNormal;
  Value ret;
  Status st = ExecBlock(fn.fn->body, scope, &flow, &ret);
  --call_depth_;
  XQ_RETURN_NOT_OK(st);
  return ret;
}

Result<Value> Interpreter::EvalAssignTarget(const JsExpr& target, EnvPtr env,
                                            const Value& value) {
  switch (target.kind) {
    case JsExprKind::kIdentifier: {
      Value* slot = FindVar(target.str, env);
      if (slot != nullptr) {
        *slot = value;
      } else {
        globals_->vars[target.str] = value;  // implicit global, JS-style
      }
      return value;
    }
    case JsExprKind::kMember: {
      XQ_ASSIGN_OR_RETURN(Value base, Eval(*target.kids[0], env));
      XQ_RETURN_NOT_OK(SetMember(base, target.str, value));
      return value;
    }
    case JsExprKind::kIndex: {
      XQ_ASSIGN_OR_RETURN(Value base, Eval(*target.kids[0], env));
      XQ_ASSIGN_OR_RETURN(Value idx, Eval(*target.kids[1], env));
      if (base.is_object() && base.obj()->is_array) {
        size_t i = static_cast<size_t>(idx.ToNumber());
        if (base.obj()->elements.size() <= i) {
          base.obj()->elements.resize(i + 1);
        }
        base.obj()->elements[i] = value;
        return value;
      }
      XQ_RETURN_NOT_OK(SetMember(base, idx.ToString(), value));
      return value;
    }
    default:
      return Status::SyntaxError("JS: invalid assignment target");
  }
}

Result<Value> Interpreter::Eval(const JsExpr& e, EnvPtr env) {
  switch (e.kind) {
    case JsExprKind::kNumber:
      return Value::Number(e.num);
    case JsExprKind::kString:
      return Value::String(e.str);
    case JsExprKind::kBool:
      return Value::Boolean(e.flag);
    case JsExprKind::kNull:
      return Value::Null();
    case JsExprKind::kUndefined:
      return Value::Undefined();
    case JsExprKind::kThis:
    case JsExprKind::kIdentifier: {
      const std::string& name =
          e.kind == JsExprKind::kThis ? std::string("this") : e.str;
      Value* slot = FindVar(name, env);
      if (slot != nullptr) return *slot;
      return Status::Error("JSRT0004", "JS: '" + name + "' is not defined");
    }
    case JsExprKind::kMember: {
      XQ_ASSIGN_OR_RETURN(Value base, Eval(*e.kids[0], env));
      return GetMember(base, e.str);
    }
    case JsExprKind::kIndex: {
      XQ_ASSIGN_OR_RETURN(Value base, Eval(*e.kids[0], env));
      XQ_ASSIGN_OR_RETURN(Value idx, Eval(*e.kids[1], env));
      if (base.is_object() && base.obj()->is_array) {
        size_t i = static_cast<size_t>(idx.ToNumber());
        if (i < base.obj()->elements.size()) return base.obj()->elements[i];
        return Value::Undefined();
      }
      return GetMember(base, idx.ToString());
    }
    case JsExprKind::kCall: {
      const JsExpr& callee = *e.kids[0];
      Value this_value;
      Value fn;
      if (callee.kind == JsExprKind::kMember) {
        XQ_ASSIGN_OR_RETURN(this_value, Eval(*callee.kids[0], env));
        XQ_ASSIGN_OR_RETURN(fn, GetMember(this_value, callee.str));
      } else {
        XQ_ASSIGN_OR_RETURN(fn, Eval(callee, env));
      }
      std::vector<Value> args;
      for (size_t i = 1; i < e.kids.size(); ++i) {
        XQ_ASSIGN_OR_RETURN(Value arg, Eval(*e.kids[i], env));
        args.push_back(std::move(arg));
      }
      return CallValue(fn, std::move(args), std::move(this_value));
    }
    case JsExprKind::kNew: {
      // Minimal `new`: a fresh plain object (enough for `new Object()`).
      return Value::Object(std::make_shared<JsObject>());
    }
    case JsExprKind::kAssign: {
      XQ_ASSIGN_OR_RETURN(Value rhs, Eval(*e.kids[1], env));
      if (e.str != "=") {
        XQ_ASSIGN_OR_RETURN(Value lhs, Eval(*e.kids[0], env));
        char op = e.str[0];
        if (op == '+' && (lhs.kind() == Value::Kind::kString ||
                          rhs.kind() == Value::Kind::kString)) {
          rhs = Value::String(lhs.ToString() + rhs.ToString());
        } else {
          double a = lhs.ToNumber(), b = rhs.ToNumber();
          double r = op == '+' ? a + b
                     : op == '-' ? a - b
                     : op == '*' ? a * b
                                 : a / b;
          rhs = Value::Number(r);
        }
      }
      return EvalAssignTarget(*e.kids[0], env, rhs);
    }
    case JsExprKind::kBinary: {
      XQ_ASSIGN_OR_RETURN(Value a, Eval(*e.kids[0], env));
      XQ_ASSIGN_OR_RETURN(Value b, Eval(*e.kids[1], env));
      const std::string& op = e.str;
      if (op == "+") {
        if (a.kind() == Value::Kind::kString ||
            b.kind() == Value::Kind::kString) {
          return Value::String(a.ToString() + b.ToString());
        }
        return Value::Number(a.ToNumber() + b.ToNumber());
      }
      if (op == "-") return Value::Number(a.ToNumber() - b.ToNumber());
      if (op == "*") return Value::Number(a.ToNumber() * b.ToNumber());
      if (op == "/") return Value::Number(a.ToNumber() / b.ToNumber());
      if (op == "%") {
        return Value::Number(std::fmod(a.ToNumber(), b.ToNumber()));
      }
      if (op == "==") return Value::Boolean(JsLooseEquals(a, b));
      if (op == "!=") return Value::Boolean(!JsLooseEquals(a, b));
      if (op == "===") {
        return Value::Boolean(a.kind() == b.kind() && JsLooseEquals(a, b));
      }
      if (op == "!==") {
        return Value::Boolean(!(a.kind() == b.kind() && JsLooseEquals(a, b)));
      }
      bool string_cmp = a.kind() == Value::Kind::kString &&
                        b.kind() == Value::Kind::kString;
      double cmp = string_cmp
                       ? static_cast<double>(
                             a.str_value().compare(b.str_value()))
                       : a.ToNumber() - b.ToNumber();
      if (op == "<") return Value::Boolean(cmp < 0);
      if (op == ">") return Value::Boolean(cmp > 0);
      if (op == "<=") return Value::Boolean(cmp <= 0);
      if (op == ">=") return Value::Boolean(cmp >= 0);
      return Status::NotImplemented("JS operator " + op);
    }
    case JsExprKind::kLogical: {
      XQ_ASSIGN_OR_RETURN(Value a, Eval(*e.kids[0], env));
      if (e.str == "&&") {
        if (!a.ToBoolean()) return a;
        return Eval(*e.kids[1], env);
      }
      if (a.ToBoolean()) return a;
      return Eval(*e.kids[1], env);
    }
    case JsExprKind::kUnary: {
      XQ_ASSIGN_OR_RETURN(Value v, Eval(*e.kids[0], env));
      if (e.str == "!") return Value::Boolean(!v.ToBoolean());
      if (e.str == "-") return Value::Number(-v.ToNumber());
      if (e.str == "+") return Value::Number(v.ToNumber());
      if (e.str == "typeof") {
        switch (v.kind()) {
          case Value::Kind::kUndefined: return Value::String("undefined");
          case Value::Kind::kNull: return Value::String("object");
          case Value::Kind::kBool: return Value::String("boolean");
          case Value::Kind::kNumber: return Value::String("number");
          case Value::Kind::kString: return Value::String("string");
          case Value::Kind::kObject:
            return Value::String(
                v.obj()->native || v.obj()->fn ? "function" : "object");
        }
      }
      return Status::NotImplemented("JS unary " + e.str);
    }
    case JsExprKind::kUpdate: {
      XQ_ASSIGN_OR_RETURN(Value old, Eval(*e.kids[0], env));
      double delta = e.str == "++" ? 1 : -1;
      Value updated = Value::Number(old.ToNumber() + delta);
      XQ_RETURN_NOT_OK(
          EvalAssignTarget(*e.kids[0], env, updated).status());
      return e.flag ? updated : Value::Number(old.ToNumber());
    }
    case JsExprKind::kConditional: {
      XQ_ASSIGN_OR_RETURN(Value cond, Eval(*e.kids[0], env));
      return Eval(cond.ToBoolean() ? *e.kids[1] : *e.kids[2], env);
    }
    case JsExprKind::kFunction: {
      auto obj = std::make_shared<JsObject>();
      obj->fn = &e;
      obj->closure = env;
      return Value::Object(std::move(obj));
    }
    case JsExprKind::kObjectLit: {
      auto obj = std::make_shared<JsObject>();
      for (const auto& [name, init] : e.props) {
        XQ_ASSIGN_OR_RETURN(Value v, Eval(*init, env));
        obj->props[name] = std::move(v);
      }
      return Value::Object(std::move(obj));
    }
    case JsExprKind::kArrayLit: {
      auto obj = std::make_shared<JsObject>();
      obj->is_array = true;
      for (const JsExprPtr& kid : e.kids) {
        XQ_ASSIGN_OR_RETURN(Value v, Eval(*kid, env));
        obj->elements.push_back(std::move(v));
      }
      return Value::Object(std::move(obj));
    }
  }
  return Status::NotImplemented("JS expression kind");
}

}  // namespace xqib::minijs
