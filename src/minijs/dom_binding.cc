#include "minijs/dom_binding.h"

#include <cmath>

#include "base/strings.h"
#include "browser/css.h"
#include "minijs/js_parser.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"
#include "xquery/engine.h"

namespace xqib::minijs {

using browser::Browser;
using browser::Event;
using browser::Window;

namespace {

// Pulls the wrapped DOM node out of a JS value (nullptr if none).
xml::Node* NodeOf(const Value& v) {
  if (!v.is_object()) return nullptr;
  return v.obj()->node;
}

std::string HexId(const void* p) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%p", p);
  return buf;
}

}  // namespace

DomBinding::DomBinding(Browser* browser) : browser_(browser) {
  alert_sink = [this](const std::string& s) { alerts_.push_back(s); };
}

DomBinding::~DomBinding() = default;

bool DomBinding::Handles(browser::ScriptLanguage language) const {
  return language == browser::ScriptLanguage::kJavaScript;
}

DomBinding::WindowState* DomBinding::StateFor(Window* window) {
  auto it = states_.find(window);
  if (it != states_.end() &&
      it->second->window->document() != nullptr) {
    return it->second.get();
  }
  auto state = std::make_unique<WindowState>();
  state->window = window;
  state->interp = std::make_unique<Interpreter>();
  WindowState* raw = state.get();
  states_[window] = std::move(state);
  InstallGlobals(raw);
  return raw;
}

Interpreter* DomBinding::InterpreterFor(Window* window) {
  return StateFor(window)->interp.get();
}

Status DomBinding::RunScript(Window* window, const browser::Script& script) {
  return Execute(window, script.code);
}

Status DomBinding::Execute(Window* window, const std::string& source) {
  WindowState* state = StateFor(window);
  auto program = ParseProgram(source);
  if (!program.ok()) {
    last_error_ = program.status();
    return program.status();
  }
  Status st = state->interp->Run(std::move(program).value());
  if (!st.ok()) last_error_ = st;
  return st;
}

Status DomBinding::RegisterInlineHandler(
    Window* window, const browser::InlineHandler& handler) {
  WindowState* state = StateFor(window);
  auto parsed = ParseJsExpression(handler.code);
  if (!parsed.ok()) {
    last_error_ = parsed.status();
    return parsed.status();
  }
  const JsExpr* expr = state->interp->AdoptExpression(std::move(parsed).value());
  browser::Listener listener;
  listener.id = "js-inline:" + handler.event + ":" + handler.code;
  listener.callback = [this, state, expr](Event& event) {
    std::vector<std::pair<std::string, Value>> bindings;
    bindings.emplace_back("event", MakeEventObject(state, event));
    std::string value = event.value;
    if (value.empty() && event.target != nullptr) {
      value = event.target->GetAttributeValue("value");
    }
    bindings.emplace_back("value", Value::String(value));
    xml::Node* obj = event.current_target != nullptr ? event.current_target
                                                     : event.target;
    bindings.emplace_back(
        "this", obj != nullptr ? WrapNode(state->window, obj)
                               : Value::Undefined());
    Result<Value> r = state->interp->EvalExpression(*expr, bindings);
    if (!r.ok()) last_error_ = r.status();
  };
  browser_->events().AddListener(handler.element, handler.event,
                                 std::move(listener));
  return Status();
}

// ------------------------------------------------------- XPath support ---

Result<std::vector<xml::Node*>> DomBinding::EvaluateXPath(
    const std::string& xpath, xml::Node* context_node) {
  // document.evaluate embeds XPath in JavaScript (paper §2.2). XPath is
  // a subset of XQuery, so the XQuery engine runs it directly.
  XQ_ASSIGN_OR_RETURN(std::unique_ptr<xquery::Module> module,
                      xquery::ParseModule(xpath));
  xquery::StaticContext sctx;
  sctx.AddModule(*module);
  xquery::Evaluator evaluator(sctx);
  xquery::DynamicContext ctx;
  xquery::DynamicContext::Focus focus;
  focus.item = xdm::Item::Node(context_node);
  focus.position = 1;
  focus.size = 1;
  focus.has_item = true;
  ctx.set_focus(focus);
  XQ_ASSIGN_OR_RETURN(xdm::Sequence result,
                      evaluator.Eval(*module->body, ctx));
  std::vector<xml::Node*> nodes;
  for (const xdm::Item& item : result) {
    if (item.is_node()) nodes.push_back(item.node());
  }
  return nodes;
}

// --------------------------------------------------------- node wrapper ---

Value DomBinding::WrapNode(Window* window, xml::Node* node) {
  WindowState* state = StateFor(window);
  auto obj = std::make_shared<JsObject>();
  obj->node = node;

  obj->get_hook = [this, state, node](const std::string& name,
                                      Interpreter& interp,
                                      Value* out) -> bool {
    (void)interp;
    auto wrap = [this, state](xml::Node* n) {
      return n == nullptr ? Value::Null() : WrapNode(state->window, n);
    };
    if (name == "nodeName" || name == "tagName") {
      *out = Value::String(node->name().Lexical());
      return true;
    }
    if (name == "parentNode") {
      *out = wrap(node->parent());
      return true;
    }
    if (name == "firstChild") {
      *out = wrap(node->children().empty() ? nullptr : node->children()[0]);
      return true;
    }
    if (name == "lastChild") {
      *out = wrap(node->children().empty() ? nullptr
                                           : node->children().back());
      return true;
    }
    if (name == "nextSibling" || name == "previousSibling") {
      xml::Node* parent = node->parent();
      if (parent == nullptr) {
        *out = Value::Null();
        return true;
      }
      size_t idx = parent->ChildIndex(node);
      ptrdiff_t d = name == "nextSibling" ? 1 : -1;
      ptrdiff_t target = static_cast<ptrdiff_t>(idx) + d;
      if (target < 0 ||
          target >= static_cast<ptrdiff_t>(parent->children().size())) {
        *out = Value::Null();
        return true;
      }
      *out = wrap(parent->children()[static_cast<size_t>(target)]);
      return true;
    }
    if (name == "childNodes") {
      auto arr = std::make_shared<JsObject>();
      arr->is_array = true;
      for (xml::Node* c : node->children()) {
        arr->elements.push_back(wrap(c));
      }
      *out = Value::Object(std::move(arr));
      return true;
    }
    if (name == "textContent" || name == "nodeValue" || name == "data") {
      *out = Value::String(node->StringValue());
      return true;
    }
    if (name == "innerHTML") {
      std::string html;
      for (const xml::Node* c : node->children()) {
        html += xml::Serialize(c);
      }
      *out = Value::String(html);
      return true;
    }
    if (name == "id" || name == "value" || name == "name" ||
        name == "src" || name == "href" || name == "className" ||
        name == "type") {
      std::string attr = name == "className" ? "class" : name;
      *out = Value::String(node->GetAttributeValue(attr));
      return true;
    }
    if (name == "style") {
      auto style = std::make_shared<JsObject>();
      xml::Node* element = node;
      style->get_hook = [element](const std::string& prop, Interpreter&,
                                  Value* v) -> bool {
        *v = Value::String(browser::GetStyleProperty(element, prop));
        return true;
      };
      style->set_hook = [element](const std::string& prop,
                                  const Value& value, Interpreter&) -> bool {
        browser::SetStyleProperty(element, prop, value.ToString());
        return true;
      };
      *out = Value::Object(std::move(style));
      return true;
    }
    return false;
  };

  obj->set_hook = [this, node](const std::string& name, const Value& value,
                               Interpreter&) -> bool {
    if (name == "textContent" || name == "nodeValue" || name == "data") {
      node->SetValue(value.ToString());
      return true;
    }
    if (name == "innerHTML") {
      node->SetValue("");
      Status st = xml::ParseFragmentInto(value.ToString(), node,
                                         xml::ParseOptions());
      if (!st.ok()) last_error_ = st;
      return true;
    }
    if (name == "id" || name == "value" || name == "name" ||
        name == "src" || name == "href" || name == "className" ||
        name == "type") {
      std::string attr = name == "className" ? "class" : name;
      node->SetAttribute(xml::QName(attr), value.ToString());
      return true;
    }
    return false;
  };

  // --- methods ---
  obj->props["appendChild"] = Interpreter::MakeNative(
      [node](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        xml::Node* child = args.empty() ? nullptr : NodeOf(args[0]);
        if (child == nullptr) {
          return Status::Error("JSRT0005", "appendChild expects a node");
        }
        if (child->parent() != nullptr) child->Detach();
        node->AppendChild(child);
        return args[0];
      });
  obj->props["insertBefore"] = Interpreter::MakeNative(
      [node](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        xml::Node* child = args.empty() ? nullptr : NodeOf(args[0]);
        xml::Node* ref = args.size() > 1 ? NodeOf(args[1]) : nullptr;
        if (child == nullptr) {
          return Status::Error("JSRT0005", "insertBefore expects a node");
        }
        if (child->parent() != nullptr) child->Detach();
        node->InsertBefore(child, ref);
        return args[0];
      });
  obj->props["removeChild"] = Interpreter::MakeNative(
      [node](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        xml::Node* child = args.empty() ? nullptr : NodeOf(args[0]);
        if (child == nullptr || child->parent() != node) {
          return Status::Error("JSRT0005", "removeChild: not a child");
        }
        node->RemoveChild(child);
        return args[0];
      });
  obj->props["setAttribute"] = Interpreter::MakeNative(
      [node](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        if (args.size() < 2) {
          return Status::Error("JSRT0005", "setAttribute expects 2 args");
        }
        node->SetAttribute(xml::QName(args[0].ToString()),
                           args[1].ToString());
        return Value::Undefined();
      });
  obj->props["getAttribute"] = Interpreter::MakeNative(
      [node](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        if (args.empty()) return Value::Null();
        return Value::String(node->GetAttributeValue(args[0].ToString()));
      });
  obj->props["removeAttribute"] = Interpreter::MakeNative(
      [node](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        if (!args.empty()) node->RemoveAttribute("", args[0].ToString());
        return Value::Undefined();
      });

  Browser* browser = browser_;
  DomBinding* self = this;
  obj->props["addEventListener"] = Interpreter::MakeNative(
      [browser, self, state, node](std::vector<Value>& args, Value,
                                   Interpreter&) -> Result<Value> {
        if (args.size() < 2 || !args[1].is_object()) {
          return Status::Error("JSRT0005",
                               "addEventListener expects (type, fn)");
        }
        std::string type = args[0].ToString();
        Value fn = args[1];
        bool capture = args.size() > 2 && args[2].ToBoolean();
        browser::Listener listener;
        listener.id = "js:" + HexId(fn.obj().get());
        listener.capture = capture;
        listener.callback = [self, state, fn](Event& event) {
          std::vector<Value> call_args;
          call_args.push_back(self->MakeEventObject(state, event));
          xml::Node* obj_node = event.current_target != nullptr
                                    ? event.current_target
                                    : event.target;
          Value this_value = obj_node != nullptr
                                 ? self->WrapNode(state->window, obj_node)
                                 : Value::Undefined();
          Result<Value> r = state->interp->CallValue(
              fn, std::move(call_args), std::move(this_value));
          if (!r.ok()) self->last_error_ = r.status();
        };
        browser->events().AddListener(node, type, std::move(listener));
        return Value::Undefined();
      });
  obj->props["removeEventListener"] = Interpreter::MakeNative(
      [browser, node](std::vector<Value>& args, Value,
                      Interpreter&) -> Result<Value> {
        if (args.size() < 2 || !args[1].is_object()) {
          return Value::Undefined();
        }
        browser->events().RemoveListener(node, args[0].ToString(),
                                         "js:" + HexId(args[1].obj().get()));
        return Value::Undefined();
      });

  return Value::Object(std::move(obj));
}

// -------------------------------------------------------- host objects ---

Value DomBinding::MakeEventObject(WindowState* state, const Event& event) {
  auto obj = std::make_shared<JsObject>();
  obj->props["type"] = Value::String(event.type);
  obj->props["button"] = Value::Number(event.button);
  obj->props["altKey"] = Value::Boolean(event.alt_key);
  obj->props["ctrlKey"] = Value::Boolean(event.ctrl_key);
  obj->props["shiftKey"] = Value::Boolean(event.shift_key);
  obj->props["value"] = Value::String(event.value);
  obj->props["target"] = event.target != nullptr
                             ? WrapNode(state->window, event.target)
                             : Value::Null();
  return Value::Object(std::move(obj));
}

Value DomBinding::MakeDocumentObject(WindowState* state) {
  auto obj = std::make_shared<JsObject>();
  Window* window = state->window;
  DomBinding* self = this;

  obj->get_hook = [self, window](const std::string& name, Interpreter&,
                                 Value* out) -> bool {
    if (name == "documentElement") {
      xml::Node* root = window->document()->DocumentElement();
      *out = root != nullptr ? self->WrapNode(window, root) : Value::Null();
      return true;
    }
    if (name == "body") {
      xml::Node* root = window->document()->DocumentElement();
      if (root != nullptr) {
        for (xml::Node* c : root->children()) {
          if (c->is_element() &&
              AsciiEqualsIgnoreCase(c->name().local(), "body")) {
            *out = self->WrapNode(window, c);
            return true;
          }
        }
      }
      *out = Value::Null();
      return true;
    }
    return false;
  };

  obj->props["getElementById"] = Interpreter::MakeNative(
      [self, window](std::vector<Value>& args, Value,
                     Interpreter&) -> Result<Value> {
        if (args.empty()) return Value::Null();
        xml::Node* node =
            window->document()->GetElementById(args[0].ToString());
        return node != nullptr ? self->WrapNode(window, node) : Value::Null();
      });
  obj->props["createElement"] = Interpreter::MakeNative(
      [self, window](std::vector<Value>& args, Value,
                     Interpreter&) -> Result<Value> {
        std::string tag = args.empty() ? "div" : args[0].ToString();
        if (window->browser()->parse_options.ie_tag_folding) {
          tag = AsciiToUpper(tag);
        }
        return self->WrapNode(window,
                              window->document()->CreateElement(
                                  xml::QName(tag)));
      });
  obj->props["createTextNode"] = Interpreter::MakeNative(
      [self, window](std::vector<Value>& args, Value,
                     Interpreter&) -> Result<Value> {
        return self->WrapNode(
            window, window->document()->CreateText(
                        args.empty() ? "" : args[0].ToString()));
      });
  obj->props["write"] = Interpreter::MakeNative(
      [window](std::vector<Value>& args, Value,
               Interpreter&) -> Result<Value> {
        if (!args.empty()) window->Write(args[0].ToString());
        return Value::Undefined();
      });

  // document.evaluate(xpath, context, resolver, resultType, result):
  // returns an UNORDERED_NODE_SNAPSHOT-style object (paper §2.2).
  obj->props["evaluate"] = Interpreter::MakeNative(
      [self, window](std::vector<Value>& args, Value,
                     Interpreter&) -> Result<Value> {
        if (args.empty()) {
          return Status::Error("JSRT0005", "evaluate expects an XPath");
        }
        xml::Node* context = args.size() > 1 ? NodeOf(args[1]) : nullptr;
        if (context == nullptr) context = window->document()->root();
        XQ_ASSIGN_OR_RETURN(
            std::vector<xml::Node*> nodes,
            self->EvaluateXPath(args[0].ToString(), context));
        auto snapshot = std::make_shared<JsObject>();
        snapshot->props["snapshotLength"] =
            Value::Number(static_cast<double>(nodes.size()));
        snapshot->props["snapshotItem"] = Interpreter::MakeNative(
            [self, window, nodes](std::vector<Value>& idx_args, Value,
                                  Interpreter&) -> Result<Value> {
              size_t i = idx_args.empty()
                             ? 0
                             : static_cast<size_t>(idx_args[0].ToNumber());
              if (i >= nodes.size()) return Value::Null();
              return self->WrapNode(window, nodes[i]);
            });
        return Value::Object(std::move(snapshot));
      });
  return Value::Object(std::move(obj));
}

Value DomBinding::MakeWindowObject(WindowState* state) {
  auto obj = std::make_shared<JsObject>();
  Window* window = state->window;
  Browser* browser = browser_;
  DomBinding* self = this;

  obj->get_hook = [self, window, browser](const std::string& name,
                                          Interpreter&, Value* out) -> bool {
    if (name == "status") {
      *out = Value::String(window->status());
      return true;
    }
    if (name == "name") {
      *out = Value::String(window->name());
      return true;
    }
    if (name == "lastModified") {
      *out = Value::String(window->last_modified());
      return true;
    }
    if (name == "location") {
      auto loc = std::make_shared<JsObject>();
      loc->get_hook = [window](const std::string& prop, Interpreter&,
                               Value* v) -> bool {
        if (prop == "href") {
          *v = Value::String(window->url());
          return true;
        }
        return false;
      };
      loc->set_hook = [window](const std::string& prop, const Value& value,
                               Interpreter&) -> bool {
        if (prop == "href") {
          (void)window->Navigate(value.ToString());
          return true;
        }
        return false;
      };
      *out = Value::Object(std::move(loc));
      return true;
    }
    if (name == "navigator") {
      auto nav = std::make_shared<JsObject>();
      nav->props["appName"] = Value::String(browser->navigator.app_name);
      nav->props["appVersion"] =
          Value::String(browser->navigator.app_version);
      nav->props["userAgent"] = Value::String(browser->navigator.user_agent);
      *out = Value::Object(std::move(nav));
      return true;
    }
    if (name == "screen") {
      auto scr = std::make_shared<JsObject>();
      scr->props["width"] = Value::Number(browser->screen.width);
      scr->props["height"] = Value::Number(browser->screen.height);
      *out = Value::Object(std::move(scr));
      return true;
    }
    return false;
  };
  obj->set_hook = [window](const std::string& name, const Value& value,
                           Interpreter&) -> bool {
    if (name == "status") {
      window->set_status(value.ToString());
      return true;
    }
    if (name == "location") {
      (void)window->Navigate(value.ToString());
      return true;
    }
    return false;
  };

  obj->props["alert"] = Interpreter::MakeNative(
      [self](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        self->alert_sink(args.empty() ? "" : args[0].ToString());
        return Value::Undefined();
      });
  obj->props["setTimeout"] = Interpreter::MakeNative(
      [self, state, browser](std::vector<Value>& args, Value,
                             Interpreter&) -> Result<Value> {
        if (args.empty() || !args[0].is_object()) return Value::Number(0);
        Value fn = args[0];
        double delay = args.size() > 1 ? args[1].ToNumber() : 0;
        browser->loop().Post(
            [self, state, fn]() {
              std::vector<Value> no_args;
              Result<Value> r = state->interp->CallValue(fn, no_args,
                                                         Value::Undefined());
              if (!r.ok()) self->last_error_ = r.status();
            },
            delay);
        return Value::Number(0);
      });
  return Value::Object(std::move(obj));
}

void DomBinding::InstallGlobals(WindowState* state) {
  Interpreter* interp = state->interp.get();
  Value window_obj = MakeWindowObject(state);
  interp->SetGlobal("window", window_obj);
  interp->SetGlobal("self", window_obj);
  interp->SetGlobal("top", window_obj);  // single-window JS view
  interp->SetGlobal("document", MakeDocumentObject(state));
  // Globals JS exposes without the window. prefix.
  interp->SetGlobal("alert",
                    window_obj.obj()->props.count("alert")
                        ? window_obj.obj()->props["alert"]
                        : Value::Undefined());
  // navigator/screen read the live browser state at access time.
  Browser* browser = browser_;
  auto nav = std::make_shared<JsObject>();
  nav->get_hook = [browser](const std::string& prop, Interpreter&,
                            Value* v) -> bool {
    if (prop == "appName") {
      *v = Value::String(browser->navigator.app_name);
    } else if (prop == "appVersion") {
      *v = Value::String(browser->navigator.app_version);
    } else if (prop == "userAgent") {
      *v = Value::String(browser->navigator.user_agent);
    } else if (prop == "platform") {
      *v = Value::String(browser->navigator.platform);
    } else {
      return false;
    }
    return true;
  };
  interp->SetGlobal("navigator", Value::Object(std::move(nav)));
  auto scr = std::make_shared<JsObject>();
  scr->get_hook = [browser](const std::string& prop, Interpreter&,
                            Value* v) -> bool {
    if (prop == "width") {
      *v = Value::Number(browser->screen.width);
    } else if (prop == "height") {
      *v = Value::Number(browser->screen.height);
    } else if (prop == "availWidth") {
      *v = Value::Number(browser->screen.avail_width);
    } else if (prop == "availHeight") {
      *v = Value::Number(browser->screen.avail_height);
    } else {
      return false;
    }
    return true;
  };
  interp->SetGlobal("screen", Value::Object(std::move(scr)));
  interp->SetGlobal("setTimeout", window_obj.obj()->props["setTimeout"]);
  // XPathResult constants used with document.evaluate.
  auto xpr = std::make_shared<JsObject>();
  xpr->props["UNORDERED_NODE_SNAPSHOT_TYPE"] = Value::Number(6);
  xpr->props["ORDERED_NODE_SNAPSHOT_TYPE"] = Value::Number(7);
  interp->SetGlobal("XPathResult", Value::Object(std::move(xpr)));
  // Math essentials.
  auto math = std::make_shared<JsObject>();
  math->props["floor"] = Interpreter::MakeNative(
      [](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        return Value::Number(
            std::floor(args.empty() ? 0 : args[0].ToNumber()));
      });
  math->props["abs"] = Interpreter::MakeNative(
      [](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        return Value::Number(
            std::fabs(args.empty() ? 0 : args[0].ToNumber()));
      });
  interp->SetGlobal("Math", Value::Object(std::move(math)));
  interp->SetGlobal("String", Interpreter::MakeNative(
      [](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        return Value::String(args.empty() ? "" : args[0].ToString());
      }));
  interp->SetGlobal("Number", Interpreter::MakeNative(
      [](std::vector<Value>& args, Value, Interpreter&) -> Result<Value> {
        return Value::Number(args.empty() ? 0 : args[0].ToNumber());
      }));
}

}  // namespace xqib::minijs
