#include "xdm/stream.h"

#include <utility>

namespace xqib::xdm {

namespace {

class EmptyStreamImpl : public ItemStream {
 public:
  Result<bool> Next(Item*) override { return false; }
};

class SingletonStreamImpl : public ItemStream {
 public:
  explicit SingletonStreamImpl(Item item) : item_(std::move(item)) {}
  Result<bool> Next(Item* out) override {
    if (done_) return false;
    done_ = true;
    *out = std::move(item_);
    return true;
  }

 private:
  Item item_;
  bool done_ = false;
};

class SequenceStreamImpl : public ItemStream {
 public:
  explicit SequenceStreamImpl(Sequence seq) : seq_(std::move(seq)) {}
  Result<bool> Next(Item* out) override {
    if (pos_ >= seq_.size()) return false;
    *out = seq_[pos_++];
    return true;
  }

 private:
  Sequence seq_;
  size_t pos_ = 0;
};

class RangeStreamImpl : public ItemStream {
 public:
  RangeStreamImpl(int64_t lo, int64_t hi) : next_(lo), hi_(hi) {}
  Result<bool> Next(Item* out) override {
    if (next_ > hi_) return false;
    *out = Item::Integer(next_++);
    return true;
  }

 private:
  int64_t next_;
  int64_t hi_;
};

}  // namespace

StreamPtr EmptyStream(Arena* arena) {
  return MakeStream<EmptyStreamImpl>(arena);
}

StreamPtr SingletonStream(Item item, Arena* arena) {
  return MakeStream<SingletonStreamImpl>(arena, std::move(item));
}

StreamPtr SequenceStream(Sequence seq, Arena* arena) {
  return MakeStream<SequenceStreamImpl>(arena, std::move(seq));
}

StreamPtr RangeStream(int64_t lo, int64_t hi, Arena* arena) {
  return MakeStream<RangeStreamImpl>(arena, lo, hi);
}

Result<Sequence> MaterializeStream(ItemStream& s, StreamStats* stats) {
  Sequence out;
  Item item;
  while (true) {
    XQ_ASSIGN_OR_RETURN(bool more, s.Next(&item));
    if (!more) break;
    out.push_back(std::move(item));
  }
  if (stats != nullptr) stats->items_materialized += out.size();
  return out;
}

}  // namespace xqib::xdm
