// The XQuery 1.0 / XPath 2.0 Data Model (XDM): items are nodes or atomic
// values; sequences are flat vectors of items. Node items are live views
// over DOM nodes — this is the "XDM store wrapping the DOM" of the paper's
// Figure 1: reading the XDM reads the DOM, updating it updates the DOM.

#ifndef XQIB_XDM_ITEM_H_
#define XQIB_XDM_ITEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "xml/dom.h"
#include "xml/qname.h"

namespace xqib::xdm {

enum class AtomicType {
  kUntypedAtomic,
  kString,
  kBoolean,
  kInteger,   // xs:integer, 64-bit
  kDecimal,   // xs:decimal, stored as double (documented precision limit)
  kDouble,
  kQName,
  kAnyUri,
  kDateTime,  // ISO-8601 lexical form, normalized
  kDate,
  kTime,
  kDayTimeDuration,  // stored as seconds
};

const char* AtomicTypeName(AtomicType type);

// A typed atomic value. Small, copyable.
class AtomicValue {
 public:
  AtomicValue() : type_(AtomicType::kUntypedAtomic) {}

  static AtomicValue Untyped(std::string s);
  static AtomicValue String(std::string s);
  static AtomicValue Boolean(bool b);
  static AtomicValue Integer(int64_t i);
  static AtomicValue Decimal(double d);
  static AtomicValue Double(double d);
  static AtomicValue AnyUri(std::string s);
  static AtomicValue MakeQName(xml::QName q);
  static AtomicValue DateTime(std::string iso);
  static AtomicValue Date(std::string iso);
  static AtomicValue Time(std::string iso);
  static AtomicValue DayTimeDuration(double seconds);

  AtomicType type() const { return type_; }
  bool is_numeric() const {
    return type_ == AtomicType::kInteger || type_ == AtomicType::kDecimal ||
           type_ == AtomicType::kDouble;
  }
  bool is_untyped() const { return type_ == AtomicType::kUntypedAtomic; }

  // Raw accessors (valid only for the matching type).
  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return dbl_; }
  const std::string& string_value() const { return str_; }
  const xml::QName& qname_value() const { return qname_; }

  // The XPath string form of this value (fn:string semantics).
  std::string ToXPathString() const;

  // Numeric coercion; untyped and string values are parsed (FORG0001 on
  // failure). Booleans convert 0/1.
  Result<double> ToDouble() const;
  Result<int64_t> ToInteger() const;

  // Casts to a target type per XPath casting rules (subset).
  Result<AtomicValue> CastTo(AtomicType target) const;

  // Value equality/ordering for value comparisons & order by. Returns
  // <0/0/>0; error XPTY0004 for incomparable types.
  Result<int> Compare(const AtomicValue& other) const;

 private:
  AtomicType type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  xml::QName qname_;
};

// An XDM item: exactly one of {node, atomic value}.
class Item {
 public:
  Item() : node_(nullptr) {}  // default: empty-string untyped atomic
  explicit Item(xml::Node* node) : node_(node) {}
  explicit Item(AtomicValue atom) : node_(nullptr), atom_(std::move(atom)) {}

  static Item Node(xml::Node* n) { return Item(n); }
  static Item Atomic(AtomicValue v) { return Item(std::move(v)); }
  static Item String(std::string s) {
    return Item(AtomicValue::String(std::move(s)));
  }
  static Item Boolean(bool b) { return Item(AtomicValue::Boolean(b)); }
  static Item Integer(int64_t i) { return Item(AtomicValue::Integer(i)); }
  static Item Double(double d) { return Item(AtomicValue::Double(d)); }

  bool is_node() const { return node_ != nullptr; }
  xml::Node* node() const { return node_; }
  const AtomicValue& atomic() const { return atom_; }

  // fn:string of the item.
  std::string StringValue() const;
  // Appends fn:string of the item to `out` (single-buffer atomization).
  void AppendStringValue(std::string* out) const;

  // fn:data of the item: the typed value. Element/attribute/text content
  // atomizes to xs:untypedAtomic (we process untyped web pages, §3.1).
  AtomicValue Atomize() const;

 private:
  xml::Node* node_;
  AtomicValue atom_;
};

// A flat sequence of items (XDM sequences never nest).
using Sequence = std::vector<Item>;

// Effective boolean value (fn:boolean): empty -> false; first item node ->
// true; singleton atomic by type; else FORG0006.
Result<bool> EffectiveBooleanValue(const Sequence& seq);

// fn:data over a sequence.
Sequence Atomize(const Sequence& seq);

// Sorts node items into document order, removing duplicates (the
// semantics of path-expression results). Errors if a non-node slips in.
Status SortDocumentOrderDedup(Sequence* seq);

// True if all items are nodes.
bool AllNodes(const Sequence& seq);

// Serializes a sequence for display: space-joined item strings.
std::string SequenceToString(const Sequence& seq);

}  // namespace xqib::xdm

#endif  // XQIB_XDM_ITEM_H_
