#include "xdm/arena.h"

#include <algorithm>

namespace xqib::xdm {

void* Arena::Allocate(size_t bytes, size_t align) {
  Slab* slab = SlabFor(bytes + align);
  size_t base = reinterpret_cast<size_t>(slab->data.get()) + slab->used;
  size_t aligned = (base + align - 1) & ~(align - 1);
  size_t padding = aligned - base;
  slab->used += padding + bytes;
  stats_.bytes_used += bytes;
  stats_.live_bytes += bytes;
  return reinterpret_cast<void*>(aligned);
}

Arena::Slab* Arena::SlabFor(size_t bytes) {
  // Advance through retained slabs before growing.
  while (active_ < slabs_.size()) {
    Slab& s = slabs_[active_];
    if (s.size - s.used >= bytes) return &s;
    ++active_;
  }
  Slab fresh;
  fresh.size = std::max(slab_bytes_, bytes);
  fresh.data = std::make_unique<char[]>(fresh.size);
  slabs_.push_back(std::move(fresh));
  stats_.slabs = slabs_.size();
  active_ = slabs_.size() - 1;
  return &slabs_.back();
}

void Arena::Reset() {
  for (Slab& s : slabs_) s.used = 0;
  active_ = 0;
  ++stats_.resets;
  stats_.live_bytes = 0;
}

}  // namespace xqib::xdm
