#include "xdm/item.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "base/strings.h"

namespace xqib::xdm {

const char* AtomicTypeName(AtomicType type) {
  switch (type) {
    case AtomicType::kUntypedAtomic: return "xs:untypedAtomic";
    case AtomicType::kString: return "xs:string";
    case AtomicType::kBoolean: return "xs:boolean";
    case AtomicType::kInteger: return "xs:integer";
    case AtomicType::kDecimal: return "xs:decimal";
    case AtomicType::kDouble: return "xs:double";
    case AtomicType::kQName: return "xs:QName";
    case AtomicType::kAnyUri: return "xs:anyURI";
    case AtomicType::kDateTime: return "xs:dateTime";
    case AtomicType::kDate: return "xs:date";
    case AtomicType::kTime: return "xs:time";
    case AtomicType::kDayTimeDuration: return "xs:dayTimeDuration";
  }
  return "xs:anyAtomicType";
}

// ---------------------------------------------------------- AtomicValue ---

AtomicValue AtomicValue::Untyped(std::string s) {
  AtomicValue v;
  v.type_ = AtomicType::kUntypedAtomic;
  v.str_ = std::move(s);
  return v;
}

AtomicValue AtomicValue::String(std::string s) {
  AtomicValue v;
  v.type_ = AtomicType::kString;
  v.str_ = std::move(s);
  return v;
}

AtomicValue AtomicValue::Boolean(bool b) {
  AtomicValue v;
  v.type_ = AtomicType::kBoolean;
  v.bool_ = b;
  return v;
}

AtomicValue AtomicValue::Integer(int64_t i) {
  AtomicValue v;
  v.type_ = AtomicType::kInteger;
  v.int_ = i;
  return v;
}

AtomicValue AtomicValue::Decimal(double d) {
  AtomicValue v;
  v.type_ = AtomicType::kDecimal;
  v.dbl_ = d;
  return v;
}

AtomicValue AtomicValue::Double(double d) {
  AtomicValue v;
  v.type_ = AtomicType::kDouble;
  v.dbl_ = d;
  return v;
}

AtomicValue AtomicValue::AnyUri(std::string s) {
  AtomicValue v;
  v.type_ = AtomicType::kAnyUri;
  v.str_ = std::move(s);
  return v;
}

AtomicValue AtomicValue::MakeQName(xml::QName q) {
  AtomicValue v;
  v.type_ = AtomicType::kQName;
  v.qname_ = std::move(q);
  return v;
}

AtomicValue AtomicValue::DateTime(std::string iso) {
  AtomicValue v;
  v.type_ = AtomicType::kDateTime;
  v.str_ = std::move(iso);
  return v;
}

AtomicValue AtomicValue::Date(std::string iso) {
  AtomicValue v;
  v.type_ = AtomicType::kDate;
  v.str_ = std::move(iso);
  return v;
}

AtomicValue AtomicValue::Time(std::string iso) {
  AtomicValue v;
  v.type_ = AtomicType::kTime;
  v.str_ = std::move(iso);
  return v;
}

AtomicValue AtomicValue::DayTimeDuration(double seconds) {
  AtomicValue v;
  v.type_ = AtomicType::kDayTimeDuration;
  v.dbl_ = seconds;
  return v;
}

std::string AtomicValue::ToXPathString() const {
  switch (type_) {
    case AtomicType::kUntypedAtomic:
    case AtomicType::kString:
    case AtomicType::kAnyUri:
    case AtomicType::kDateTime:
    case AtomicType::kDate:
    case AtomicType::kTime:
      return str_;
    case AtomicType::kBoolean:
      return bool_ ? "true" : "false";
    case AtomicType::kInteger:
      return std::to_string(int_);
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return DoubleToXPathString(dbl_);
    case AtomicType::kQName:
      return qname_.Lexical();
    case AtomicType::kDayTimeDuration: {
      // PTnS form, seconds granularity.
      double s = dbl_;
      std::string sign = s < 0 ? "-" : "";
      s = std::fabs(s);
      return sign + "PT" + DoubleToXPathString(s) + "S";
    }
  }
  return {};
}

namespace {

Result<double> ParseDoubleLexical(const std::string& s) {
  std::string t(TrimWhitespace(s));
  if (t == "INF") return std::numeric_limits<double>::infinity();
  if (t == "-INF") return -std::numeric_limits<double>::infinity();
  if (t == "NaN") return std::nan("");
  if (t.empty()) {
    return Status::Error("FORG0001", "cannot cast '' to a number");
  }
  errno = 0;
  char* end = nullptr;
  double d = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size() || errno == ERANGE) {
    return Status::Error("FORG0001", "cannot cast '" + t + "' to a number");
  }
  return d;
}

Result<int64_t> ParseIntegerLexical(const std::string& s) {
  std::string t(TrimWhitespace(s));
  if (t.empty()) {
    return Status::Error("FORG0001", "cannot cast '' to xs:integer");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size() || errno == ERANGE) {
    return Status::Error("FORG0001",
                         "cannot cast '" + t + "' to xs:integer");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Result<double> AtomicValue::ToDouble() const {
  switch (type_) {
    case AtomicType::kInteger: return static_cast<double>(int_);
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
    case AtomicType::kDayTimeDuration:
      return dbl_;
    case AtomicType::kBoolean: return bool_ ? 1.0 : 0.0;
    case AtomicType::kUntypedAtomic:
    case AtomicType::kString:
      return ParseDoubleLexical(str_);
    default:
      return Status::TypeError(std::string("cannot treat ") +
                               AtomicTypeName(type_) + " as a number");
  }
}

Result<int64_t> AtomicValue::ToInteger() const {
  switch (type_) {
    case AtomicType::kInteger: return int_;
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return static_cast<int64_t>(dbl_);
    case AtomicType::kBoolean: return bool_ ? int64_t{1} : int64_t{0};
    case AtomicType::kUntypedAtomic:
    case AtomicType::kString:
      return ParseIntegerLexical(str_);
    default:
      return Status::TypeError(std::string("cannot treat ") +
                               AtomicTypeName(type_) + " as xs:integer");
  }
}

Result<AtomicValue> AtomicValue::CastTo(AtomicType target) const {
  if (target == type_) return *this;
  switch (target) {
    case AtomicType::kString:
      return String(ToXPathString());
    case AtomicType::kUntypedAtomic:
      return Untyped(ToXPathString());
    case AtomicType::kAnyUri:
      return AnyUri(ToXPathString());
    case AtomicType::kBoolean: {
      if (is_numeric()) {
        XQ_ASSIGN_OR_RETURN(double d, ToDouble());
        return Boolean(d != 0.0 && !std::isnan(d));
      }
      std::string t(TrimWhitespace(str_));
      if (t == "true" || t == "1") return Boolean(true);
      if (t == "false" || t == "0") return Boolean(false);
      return Status::Error("FORG0001",
                           "cannot cast '" + t + "' to xs:boolean");
    }
    case AtomicType::kInteger: {
      XQ_ASSIGN_OR_RETURN(int64_t i, ToInteger());
      return Integer(i);
    }
    case AtomicType::kDecimal: {
      XQ_ASSIGN_OR_RETURN(double d, ToDouble());
      return Decimal(d);
    }
    case AtomicType::kDouble: {
      XQ_ASSIGN_OR_RETURN(double d, ToDouble());
      return Double(d);
    }
    case AtomicType::kDateTime:
      return DateTime(ToXPathString());
    case AtomicType::kDate:
      return Date(ToXPathString());
    case AtomicType::kTime:
      return Time(ToXPathString());
    default:
      return Status::TypeError(std::string("unsupported cast to ") +
                               AtomicTypeName(target));
  }
}

Result<int> AtomicValue::Compare(const AtomicValue& other) const {
  // Numeric comparison when both sides are (or can be promoted to)
  // numbers; untyped compares as string against strings, as number
  // against numbers (general-comparison promotion is done by the caller).
  auto cmp3 = [](auto a, auto b) { return a < b ? -1 : (a > b ? 1 : 0); };

  if (type_ == AtomicType::kBoolean && other.type_ == AtomicType::kBoolean) {
    return cmp3(static_cast<int>(bool_), static_cast<int>(other.bool_));
  }
  if (is_numeric() || other.is_numeric()) {
    XQ_ASSIGN_OR_RETURN(double a, ToDouble());
    XQ_ASSIGN_OR_RETURN(double b, other.ToDouble());
    if (std::isnan(a) || std::isnan(b)) {
      // NaN is unordered; callers treat nonzero-compare-failure via eq
      // semantics. We model it as "incomparable => never equal/less".
      return 2;
    }
    return cmp3(a, b);
  }
  if (type_ == AtomicType::kDayTimeDuration &&
      other.type_ == AtomicType::kDayTimeDuration) {
    return cmp3(dbl_, other.dbl_);
  }
  if (type_ == AtomicType::kQName || other.type_ == AtomicType::kQName) {
    if (type_ != other.type_) {
      return Status::TypeError("cannot compare xs:QName with other types");
    }
    return qname_ == other.qname_ ? 0 : 2;  // QNames: equality only
  }
  // Everything else (strings, dates as ISO strings, URIs, untyped):
  // codepoint string comparison. ISO-8601 normalized forms order
  // correctly lexicographically.
  return cmp3(ToXPathString().compare(other.ToXPathString()), 0);
}

// ------------------------------------------------------------------ Item ---

std::string Item::StringValue() const {
  return is_node() ? node_->StringValue() : atom_.ToXPathString();
}

void Item::AppendStringValue(std::string* out) const {
  if (is_node()) {
    node_->AppendStringValue(out);
  } else {
    out->append(atom_.ToXPathString());
  }
}

AtomicValue Item::Atomize() const {
  if (!is_node()) return atom_;
  // Untyped documents: everything atomizes to xs:untypedAtomic.
  return AtomicValue::Untyped(node_->StringValue());
}

// ------------------------------------------------------------- Sequence ---

Result<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq[0].is_node()) return true;
  if (seq.size() > 1) {
    return Status::Error("FORG0006",
                         "effective boolean value of a sequence of more "
                         "than one atomic item");
  }
  const AtomicValue& v = seq[0].atomic();
  switch (v.type()) {
    case AtomicType::kBoolean:
      return v.bool_value();
    case AtomicType::kString:
    case AtomicType::kUntypedAtomic:
    case AtomicType::kAnyUri:
      return !v.string_value().empty();
    case AtomicType::kInteger:
      return v.int_value() != 0;
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return v.double_value() != 0.0 && !std::isnan(v.double_value());
    default:
      return Status::Error("FORG0006",
                           std::string("no effective boolean value for ") +
                               AtomicTypeName(v.type()));
  }
}

Sequence Atomize(const Sequence& seq) {
  Sequence out;
  out.reserve(seq.size());
  for (const Item& item : seq) out.push_back(Item::Atomic(item.Atomize()));
  return out;
}

bool AllNodes(const Sequence& seq) {
  return std::all_of(seq.begin(), seq.end(),
                     [](const Item& i) { return i.is_node(); });
}

Status SortDocumentOrderDedup(Sequence* seq) {
  if (!AllNodes(*seq)) {
    return Status::TypeError(
        "path step result contains atomic values mixed with nodes");
  }
  std::stable_sort(seq->begin(), seq->end(), [](const Item& a, const Item& b) {
    return a.node()->CompareDocumentOrder(b.node()) < 0;
  });
  seq->erase(std::unique(seq->begin(), seq->end(),
                         [](const Item& a, const Item& b) {
                           return a.node() == b.node();
                         }),
             seq->end());
  return Status();
}

std::string SequenceToString(const Sequence& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += " ";
    seq[i].AppendStringValue(&out);
  }
  return out;
}

}  // namespace xqib::xdm
