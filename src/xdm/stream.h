// Pull-based item streams — the lazy complement of xdm::Sequence.
//
// An ItemStream produces XDM items one Next() call at a time, so a
// pipeline of composed streams (path steps, FLWOR clauses, sequence
// concatenation) holds O(operators) state instead of materializing a
// full std::vector<Item> between every operator. Materialization stays
// an explicit, well-defined boundary: MaterializeStream drains a stream
// into a Sequence (and accounts the copy in the evaluation counters);
// variable bindings, document-order sort barriers, XQUF snapshot
// application, serialization and the plugin API surface all live on the
// materialized side.
//
// Contract for implementations:
//   * Next() returns true and fills *out, or returns false at end (or a
//     non-OK Result on a dynamic error). After end/error, further calls
//     keep returning end/error.
//   * Next() must leave any ambient evaluation state it touches (focus,
//     variable scopes) exactly as it found it, so interleaved pulls from
//     sibling streams cannot observe each other's state.

#ifndef XQIB_XDM_STREAM_H_
#define XQIB_XDM_STREAM_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "base/counters.h"
#include "base/result.h"
#include "xdm/arena.h"
#include "xdm/item.h"

namespace xqib::xdm {

// Counters for the streaming pipeline, shared by every stream of one
// evaluator. "Pulled" counts items yielded through Next() at consumer
// boundaries; "materialized" counts items copied into Sequence buffers
// (intermediate barriers and final results alike); "buffers avoided"
// counts operator edges that stayed lazy end to end.
// Relaxed atomics: ParallelStepStream's partition workers feed the
// owning evaluator's counters concurrently.
struct StreamStats {
  base::RelaxedCounter items_pulled;
  base::RelaxedCounter items_materialized;
  base::RelaxedCounter buffers_avoided;
};

class ItemStream {
 public:
  virtual ~ItemStream() = default;
  virtual Result<bool> Next(Item* out) = 0;

  // Set by MakeStream when the operator lives in an Arena: the deleter
  // then runs the destructor without freeing (Arena::Reset reclaims).
  bool arena_backed() const { return arena_backed_; }
  void set_arena_backed(bool v) { arena_backed_ = v; }

 private:
  bool arena_backed_ = false;
};

// Destroys a stream promptly (so held resources — input streams, buffers
// — release at the usual unique_ptr points) but returns arena-backed
// operators' memory only at the owning Arena's Reset.
struct StreamDeleter {
  void operator()(ItemStream* s) const {
    if (s == nullptr) return;
    if (s->arena_backed()) {
      s->~ItemStream();
    } else {
      delete s;
    }
  }
};

using StreamPtr = std::unique_ptr<ItemStream, StreamDeleter>;

// Allocates a stream operator on `arena` when non-null (bump pointer,
// reclaimed wholesale at Reset) or on the heap otherwise.
template <typename T, typename... Args>
StreamPtr MakeStream(Arena* arena, Args&&... args) {
  if (arena != nullptr) {
    T* p = arena->New<T>(std::forward<Args>(args)...);
    p->set_arena_backed(true);
    return StreamPtr(p);
  }
  return StreamPtr(new T(std::forward<Args>(args)...));
}

// The empty sequence. Factories take an optional arena, threaded from
// EvalOptions::arena_streams through the evaluator.
StreamPtr EmptyStream(Arena* arena = nullptr);

// Exactly one item.
StreamPtr SingletonStream(Item item, Arena* arena = nullptr);

// Streams an owned, already materialized sequence.
StreamPtr SequenceStream(Sequence seq, Arena* arena = nullptr);

// Lazy integer range lo..hi (empty when hi < lo) — `1 to 1000000`
// never materializes unless a consumer buffers it.
StreamPtr RangeStream(int64_t lo, int64_t hi, Arena* arena = nullptr);

// Materialization boundary: drains `s` into a Sequence. Every item
// drained is counted into stats->items_materialized (when stats is
// non-null).
Result<Sequence> MaterializeStream(ItemStream& s, StreamStats* stats);

}  // namespace xqib::xdm

#endif  // XQIB_XDM_STREAM_H_
