// Bump/slab arena for per-dispatch transients.
//
// The evaluator allocates its stream operators (and other short-lived
// scaffolding) out of an Arena owned by the DynamicContext instead of
// the heap: Allocate is a pointer bump, and after an evaluation round
// completes (for the plugin: after the XQUF apply pass of one event
// dispatch) the whole arena is Reset wholesale — slabs are kept and
// reused, so steady-state dispatch performs no allocator traffic at all.
//
// Lifetime contract: Reset() does NOT run destructors. Objects with
// non-trivial destructors must be destroyed explicitly before Reset —
// the stream pipeline does this through xdm::StreamPtr's deleter, which
// runs ~ItemStream() but returns the memory to the arena only at Reset.
// The arena is single-threaded, like the DynamicContext that owns it.

#ifndef XQIB_XDM_ARENA_H_
#define XQIB_XDM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "base/counters.h"

namespace xqib::xdm {

class Arena {
 public:
  static constexpr size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` with `align` alignment.
  void* Allocate(size_t bytes, size_t align);

  // Placement-constructs a T in the arena. The caller owns destruction
  // (see the lifetime contract above).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  // Reclaims every allocation wholesale. Slabs are retained and reused;
  // no destructors run.
  void Reset();

  // Counters are relaxed atomics so a worker-slot evaluator's arena can
  // be inspected from the loop thread while stats aggregation runs; the
  // arena's allocation path itself stays single-threaded per owner.
  struct Stats {
    base::RelaxedCounter bytes_used;  // cumulative bytes handed out
    base::RelaxedCounter resets;      // Reset() calls (monotone)
    base::RelaxedCounter slabs;       // slabs currently held
    base::RelaxedCounter live_bytes;  // bytes handed out since last Reset
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Slab {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  Slab* SlabFor(size_t bytes);

  size_t slab_bytes_;
  std::vector<Slab> slabs_;
  size_t active_ = 0;  // index of the slab currently being bumped
  Stats stats_;
};

}  // namespace xqib::xdm

#endif  // XQIB_XDM_ARENA_H_
