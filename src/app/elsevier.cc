#include "app/elsevier.h"

#include <sstream>

#include "xml/serializer.h"
#include "xquery/engine.h"

namespace xqib::app::elsevier {

namespace {

constexpr const char* kCorpusUri = "/corpus.xml";
constexpr const char* kServerBase = "http://elsevier.example.com/";

// Deterministic pseudo-random (corpus must be reproducible).
uint32_t Mix(uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352d;
  x ^= x >> 15;
  x *= 0x846ca68b;
  x ^= x >> 16;
  return x;
}

std::string BuildCorpusXml(const CorpusOptions& o) {
  std::ostringstream out;
  out << "<corpus>";
  int article_id = 0;
  for (int j = 0; j < o.journals; ++j) {
    out << "<journal name=\"Journal of Simulated Studies " << j << "\">";
    for (int v = 0; v < o.volumes; ++v) {
      out << "<volume number=\"" << (v + 1) << "\">";
      for (int i = 0; i < o.issues; ++i) {
        out << "<issue number=\"" << (i + 1) << "\">";
        for (int a = 0; a < o.articles_per_issue; ++a) {
          uint32_t seed = Mix(static_cast<uint32_t>(article_id) + 17);
          out << "<article id=\"a-" << article_id << "\">"
              << "<title>On topic " << (seed % 97) << " of journal " << j
              << "</title><references>";
          for (int r = 0; r < o.refs_per_article; ++r) {
            uint32_t rs = Mix(seed + static_cast<uint32_t>(r));
            out << "<ref year=\"" << (1990 + rs % 19) << "\" cites=\"a-"
                << (rs % 1000) << "\"/>";
          }
          out << "</references></article>";
          ++article_id;
        }
        out << "</issue>";
      }
      out << "</volume>";
    }
    out << "</journal>";
  }
  out << "</corpus>";
  return out.str();
}

// The server-side page renderer: the XQuery that the application server
// runs per request in the original architecture.
constexpr const char* kServerPageQuery = R"(
declare variable $aid external;
<html><head><title>Reference 2.0</title></head><body>
  <h1 id="title">{string(//article[@id=$aid]/title)}</h1>
  <p id="nrefs">{count(//article[@id=$aid]/references/ref)}</p>
  <ul id="years">{
    for $y in distinct-values(//article[@id=$aid]/references/ref/@year)
    order by $y
    return <li>{$y}: {count(//article[@id=$aid]/references/ref[@year=$y])}
      </li>
  }</ul>
</body></html>)";

// The migrated client-side page (§6.1: "the prolog is directly inserted
// into the script tag, the contents formerly computed by the server are
// put into insert expressions").
std::string ClientPageSource() {
  std::ostringstream out;
  out << R"(<html><head><title>Reference 2.0 (client)</title>
<script type="text/xqueryp"><![CDATA[
declare function local:cached() {
  //div[@id="cache"]/corpus
};
declare updating function local:show($evt, $obj) {
  declare variable $aid := string($obj/@article);
  delete nodes //div[@id="view"]/*;
  insert node <div>
    <h1 id="title">{string(local:cached()//article[@id=$aid]/title)}</h1>
    <p id="nrefs">{count(local:cached()//article[@id=$aid]
        /references/ref)}</p>
    <ul id="years">{
      for $y in distinct-values(local:cached()
          //article[@id=$aid]/references/ref/@year)
      order by $y
      return <li>{$y}</li>
    }</ul>
  </div> into //div[@id="view"]
};
insert node <div id="cache" style="display: none">{
    http:get(")"
      << kServerBase << R"(corpus.xml")/*
  }</div> into /html/body;
insert node <ul id="toc">{
    for $a in //div[@id="cache"]//article
    return <li><span class="art" id="link-{$a/@id}"
      article="{$a/@id}">{string($a/title)}</span></li>
  }</ul> into /html/body;
on event "onclick" at //ul[@id="toc"]//span
  attach listener local:show
]]></script>
</head><body><div id="view"/></body></html>)";
  return out.str();
}

}  // namespace

Status BuildCorpus(net::XmlStore* store, const CorpusOptions& options) {
  return store->Put(kCorpusUri, BuildCorpusXml(options));
}

std::vector<std::string> ArticleIds(const CorpusOptions& o) {
  std::vector<std::string> ids;
  int total = o.journals * o.volumes * o.issues * o.articles_per_issue;
  ids.reserve(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) ids.push_back("a-" + std::to_string(i));
  return ids;
}

Status DeployServer(net::XmlStore* store, net::HttpFabric* fabric) {
  // REST: the raw corpus document, whole-document serving.
  XQ_ASSIGN_OR_RETURN(std::string corpus, store->Serialize(kCorpusUri));
  fabric->PutResource(std::string(kServerBase) + "corpus.xml",
                      std::move(corpus));
  // The migrated client page.
  fabric->PutResource(std::string(kServerBase) + "client.xhtml",
                      ClientPageSource(), "application/xhtml+xml");

  // The original server-side application: one XQuery execution per page
  // request. The compiled query is shared; each request gets a fresh
  // dynamic context (stateless middle tier).
  auto engine = std::make_shared<xquery::Engine>();
  auto compiled_result = engine->Compile(kServerPageQuery);
  if (!compiled_result.ok()) return compiled_result.status();
  std::shared_ptr<xquery::CompiledQuery> compiled =
      std::move(compiled_result).value();

  fabric->SetHandler(
      std::string(kServerBase) + "page",
      [engine, compiled, store](const net::HttpRequest& request)
          -> Result<net::HttpResponse> {
        std::string aid;
        size_t pos = request.url.find("article=");
        if (pos != std::string::npos) aid = request.url.substr(pos + 8);
        xquery::DynamicContext ctx;
        ctx.doc_resolver = store->MakeDocResolver();
        XQ_ASSIGN_OR_RETURN(xml::Node* corpus_root, store->Get(kCorpusUri));
        xquery::DynamicContext::Focus focus;
        focus.item = xdm::Item::Node(corpus_root);
        focus.position = 1;
        focus.size = 1;
        focus.has_item = true;
        ctx.set_focus(focus);
        ctx.env().Bind(xml::QName("aid"),
                       xdm::Sequence{xdm::Item::String(aid)});
        XQ_RETURN_NOT_OK(compiled->BindGlobals(ctx));
        XQ_ASSIGN_OR_RETURN(xdm::Sequence result, compiled->Run(ctx));
        if (result.size() != 1 || !result[0].is_node()) {
          return Status::Error("NETW0500", "server render failed");
        }
        return net::HttpResponse{200, xml::Serialize(result[0].node()),
                                 "application/xhtml+xml"};
      });
  return Status();
}

Result<SessionReport> RunSession(BrowserEnvironment* env,
                                 Deployment deployment,
                                 const CorpusOptions& options,
                                 int interactions) {
  std::vector<std::string> ids = ArticleIds(options);
  if (ids.empty()) return Status::Error("NETW0500", "empty corpus");
  net::HttpFabric::Stats before = env->fabric().stats();
  SessionReport report;
  report.interactions = interactions;

  if (deployment == Deployment::kServerSide) {
    for (int i = 0; i < interactions; ++i) {
      const std::string& aid = ids[static_cast<size_t>(i) % ids.size()];
      XQ_RETURN_NOT_OK(env->Navigate(std::string(kServerBase) +
                                     "page?article=" + aid));
      xml::Node* title = env->ById("title");
      if (title == nullptr) {
        return Status::Error("NETW0500", "server page missing title");
      }
      report.last_title = title->StringValue();
    }
  } else {
    XQ_RETURN_NOT_OK(env->Navigate(std::string(kServerBase) +
                                   "client.xhtml"));
    std::string errors = env->ScriptErrors();
    if (!errors.empty()) {
      return Status::Error("BRWS0005", "client page error: " + errors);
    }
    for (int i = 0; i < interactions; ++i) {
      const std::string& aid = ids[static_cast<size_t>(i) % ids.size()];
      XQ_RETURN_NOT_OK(env->ClickId("link-" + aid));
      xml::Node* title = env->ById("title");
      if (title == nullptr) {
        return Status::Error("BRWS0005", "client view missing title");
      }
      report.last_title = title->StringValue();
    }
  }

  const net::HttpFabric::Stats& after = env->fabric().stats();
  report.requests = after.requests - before.requests;
  report.bytes = after.bytes_served - before.bytes_served;
  report.latency_ms =
      after.simulated_latency_ms - before.simulated_latency_ms;
  return report;
}

}  // namespace xqib::app::elsevier
