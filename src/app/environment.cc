#include "app/environment.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace xqib::app {

BrowserEnvironment::BrowserEnvironment(const Options& options)
    : services_(&fabric_, &store_) {
  browser_.policy().set_mode(options.security);
  browser_.parse_options.ie_tag_folding = options.ie_tag_folding;
  browser_.page_fetcher =
      [this](const std::string& url) -> Result<std::string> {
    XQ_ASSIGN_OR_RETURN(net::HttpResponse resp, fabric_.Get(url));
    return resp.body;
  };
  plugin_ = std::make_unique<plugin::XqibPlugin>(&browser_, &fabric_,
                                                 &services_);
  plugin_->Install();
  if (options.enable_minijs) {
    js_ = std::make_unique<minijs::DomBinding>(&browser_);
    plugin_->set_foreign_engine(js_.get());
  }
}

Status BrowserEnvironment::LoadPage(const std::string& url,
                                    const std::string& source) {
  XQ_RETURN_NOT_OK(browser_.top_window()->LoadSource(url, source));
  std::string errors = ScriptErrors();
  if (!errors.empty()) {
    return Status::Error("BRWS0005", "script error on load: " + errors);
  }
  return Status();
}

Status BrowserEnvironment::Navigate(const std::string& url) {
  return browser_.top_window()->Navigate(url);
}

xml::Node* BrowserEnvironment::ById(const std::string& id) {
  return browser_.top_window()->document()->GetElementById(id);
}

Status BrowserEnvironment::ClickId(const std::string& id) {
  xml::Node* target = ById(id);
  if (target == nullptr) {
    return Status::Error("BRWS0006", "no element with id '" + id + "'");
  }
  browser::Event event;
  event.type = "onclick";
  return Fire(target, event);
}

Status BrowserEnvironment::Fire(xml::Node* target, browser::Event event) {
  XQ_RETURN_NOT_OK(plugin_->FireEvent(target, std::move(event)));
  std::string errors = ScriptErrors();
  if (!errors.empty()) {
    return Status::Error("BRWS0005", "script error in listener: " + errors);
  }
  return Status();
}

std::string BrowserEnvironment::ScriptErrors() const {
  std::string out;
  if (!plugin_->last_script_error().ok()) {
    out += plugin_->last_script_error().ToString();
  }
  if (js_ != nullptr && !js_->last_error().ok()) {
    if (!out.empty()) out += "; ";
    out += js_->last_error().ToString();
  }
  return out;
}

Result<std::string> ReadPageFile(const std::string& name) {
  std::vector<std::string> candidates;
  if (const char* env = std::getenv("XQIB_PAGES_DIR")) {
    candidates.push_back(std::string(env) + "/" + name);
  }
#ifdef XQIB_PAGES_DIR
  candidates.push_back(std::string(XQIB_PAGES_DIR) + "/" + name);
#endif
  candidates.push_back("examples/pages/" + name);
  candidates.push_back("../examples/pages/" + name);
  for (const std::string& path : candidates) {
    std::ifstream in(path);
    if (in.good()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      return buf.str();
    }
  }
  return Status::Error("NETW0404", "page file not found: " + name);
}

}  // namespace xqib::app
