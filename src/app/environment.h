// BrowserEnvironment: one-stop assembly of the full XQIB stack — the
// simulated network fabric, XML store ("the XML database"), web-service
// host, headless browser, the XQIB plug-in, and the MiniJS engine, wired
// exactly as in Figure 1 of the paper. Examples and benchmarks start
// here; the individual pieces remain usable separately.

#ifndef XQIB_APP_ENVIRONMENT_H_
#define XQIB_APP_ENVIRONMENT_H_

#include <memory>
#include <string>

#include "browser/bom.h"
#include "minijs/dom_binding.h"
#include "net/http.h"
#include "net/webservice.h"
#include "net/xml_store.h"
#include "plugin/plugin.h"

namespace xqib::app {

class BrowserEnvironment {
 public:
  struct Options {
    browser::SecurityPolicy::Mode security =
        browser::SecurityPolicy::Mode::kSameOrigin;
    bool ie_tag_folding = false;
    bool enable_minijs = true;
  };

  BrowserEnvironment() : BrowserEnvironment(Options()) {}
  explicit BrowserEnvironment(const Options& options);

  net::HttpFabric& fabric() { return fabric_; }
  net::XmlStore& store() { return store_; }
  net::ServiceHost& services() { return services_; }
  browser::Browser& browser() { return browser_; }
  plugin::XqibPlugin& plugin() { return *plugin_; }
  minijs::DomBinding* js() { return js_.get(); }
  browser::Window* window() { return browser_.top_window(); }

  // Loads page source directly into the top window.
  Status LoadPage(const std::string& url, const std::string& source);
  // Navigates the top window (source fetched through the fabric).
  Status Navigate(const std::string& url);

  // Fires a click on the element with the given id and pumps the loop.
  Status ClickId(const std::string& id);
  // Fires an arbitrary event on a target node and pumps the loop.
  Status Fire(xml::Node* target, browser::Event event);

  // Element lookup in the current page.
  xml::Node* ById(const std::string& id);

  // Combined script errors from both engines ("" if none).
  std::string ScriptErrors() const;

 private:
  net::HttpFabric fabric_;
  net::XmlStore store_;
  net::ServiceHost services_;
  browser::Browser browser_;
  std::unique_ptr<plugin::XqibPlugin> plugin_;
  std::unique_ptr<minijs::DomBinding> js_;
};

// Reads a page file from the examples/pages directory (benchmarks and
// examples share the corpus). Path resolution order: $XQIB_PAGES_DIR,
// the compile-time default, "./examples/pages".
Result<std::string> ReadPageFile(const std::string& name);

}  // namespace xqib::app

#endif  // XQIB_APP_ENVIRONMENT_H_
