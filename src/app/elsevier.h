// The Elsevier Reference 2.0 scenario (paper §6.1, Figure 2): an article
// corpus in an XML database, browsed through reference-statistics pages.
// Two deployments of the same application:
//
//   * kServerSide — the original architecture: an XQuery application
//     server renders every page from the database; each user interaction
//     is one round trip that ships a rendered page.
//   * kClientSide — the migrated architecture: the served page contains
//     the XQuery code; the client fetches the WHOLE corpus document once
//     via REST, caches it in the page, and serves every further
//     interaction locally ("most user requests can be processed without
//     any interaction with the Elsevier server").
//
// The module builds the corpus, deploys both variants on a fabric, and
// drives user sessions against either, reporting the fabric stats that
// Figure 2's off-loading argument is about.

#ifndef XQIB_APP_ELSEVIER_H_
#define XQIB_APP_ELSEVIER_H_

#include <string>
#include <vector>

#include "app/environment.h"

namespace xqib::app::elsevier {

struct CorpusOptions {
  int journals = 3;
  int volumes = 2;
  int issues = 2;
  int articles_per_issue = 4;
  int refs_per_article = 10;
};

// Builds the corpus document and stores it at "/corpus.xml".
Status BuildCorpus(net::XmlStore* store, const CorpusOptions& options);

// All article ids of a corpus ("a-<n>").
std::vector<std::string> ArticleIds(const CorpusOptions& options);

// Mounts the Reference 2.0 server on the fabric at
// http://elsevier.example.com/ :
//   /page?article=ID  server-rendered reference-statistics page
//                     (server-side XQuery against the store)
//   /corpus.xml       the raw corpus (REST, whole-document serving —
//                     the §6.1 adjustment "serve whole documents rather
//                     than individual queries, to better enable caching")
//   /client.xhtml     the migrated client-side page (XQuery inside)
Status DeployServer(net::XmlStore* store, net::HttpFabric* fabric);

enum class Deployment { kServerSide, kClientSide };

struct SessionReport {
  uint64_t requests = 0;
  uint64_t bytes = 0;
  double latency_ms = 0;
  int interactions = 0;
  std::string last_title;  // correctness probe
};

// Runs one user session: loads the app, then views `interactions`
// articles round-robin. Stats cover the whole session.
Result<SessionReport> RunSession(BrowserEnvironment* env,
                                 Deployment deployment,
                                 const CorpusOptions& options,
                                 int interactions);

}  // namespace xqib::app::elsevier

#endif  // XQIB_APP_ELSEVIER_H_
