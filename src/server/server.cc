#include "server/server.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <utility>

#include "xml/interning.h"
#include "xml/xml_parser.h"
#include "xquery/plan/plan.h"

namespace xqib::server {

namespace {

// Splits "<base>/sessions/s1/dom?x=y" into segments {"sessions", "s1",
// "dom"} and the raw query string. False if `url` is outside `base`.
bool SplitFrontPath(const std::string& url, const std::string& base,
                    std::vector<std::string>* segments, std::string* query) {
  if (url.compare(0, base.size(), base) != 0) return false;
  std::string rest = url.substr(base.size());
  size_t q = rest.find('?');
  if (q != std::string::npos) {
    *query = rest.substr(q + 1);
    rest.resize(q);
  } else {
    query->clear();
  }
  segments->clear();
  size_t start = 0;
  while (start <= rest.size()) {
    size_t slash = rest.find('/', start);
    if (slash == std::string::npos) slash = rest.size();
    if (slash > start) segments->push_back(rest.substr(start, slash - start));
    start = slash + 1;
  }
  return true;
}

std::string QueryParam(const std::string& query, const std::string& key) {
  size_t start = 0;
  while (start < query.size()) {
    size_t amp = query.find('&', start);
    if (amp == std::string::npos) amp = query.size();
    std::string pair = query.substr(start, amp - start);
    if (pair.compare(0, key.size(), key) == 0 && pair.size() > key.size() &&
        pair[key.size()] == '=') {
      return pair.substr(key.size() + 1);
    }
    start = amp + 1;
  }
  return std::string();
}

net::HttpResponse ErrorResponse(int status, const std::string& message) {
  return net::HttpResponse{status, "<error>" + message + "</error>",
                           "application/xml"};
}

std::string AttrOr(const xml::Node* elem, const char* name,
                   const std::string& fallback) {
  const xml::Node* attr = elem->FindAttribute(name);
  return attr != nullptr ? attr->value() : fallback;
}

}  // namespace

PageServer::PageServer(const Options& options)
    : options_(options), services_(&backend_, &store_) {
  // Sessions share the process-wide response cache, like the plan cache
  // and intern pool: N sessions mashing up the same remote sources pay
  // each round trip once per TTL window, not once per session.
  backend_.set_response_cache(net::HttpResponseCache::Global());
  if (options_.workers > 0) {
    pool_ = std::make_unique<base::ThreadPool>(options_.workers);
  }
}

PageServer::~PageServer() {
  // Queued drains hold shared_ptrs to their sessions; destroying the
  // pool joins the workers, so no drain can outlive the server.
  DrainAll();
  pool_.reset();
}

Result<std::shared_ptr<Session>> PageServer::RegisterSession() {
  std::unique_lock<std::shared_mutex> lk(sessions_mu_);
  uint64_t seq = next_session_++;
  std::string id = "s" + std::to_string(seq);
  auto session = std::make_shared<Session>(id, seq, &backend_, &services_,
                                           pool_.get(), options_.session);
  sessions_.emplace(id, session);
  return session;
}

Result<std::shared_ptr<Session>> PageServer::CreateSession(
    const std::string& page_url) {
  XQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session, RegisterSession());
  Status st = session->Navigate(page_url);
  if (!st.ok()) {
    (void)CloseSession(session->id());
    return st;
  }
  return session;
}

Result<std::shared_ptr<Session>> PageServer::CreateSessionFromSource(
    const std::string& page_url, const std::string& source) {
  XQ_ASSIGN_OR_RETURN(std::shared_ptr<Session> session, RegisterSession());
  Status st = session->LoadSource(page_url, source);
  if (!st.ok()) {
    (void)CloseSession(session->id());
    return st;
  }
  return session;
}

std::shared_ptr<Session> PageServer::FindSession(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lk(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Status PageServer::CloseSession(const std::string& id) {
  std::shared_ptr<Session> session;
  {
    std::unique_lock<std::shared_mutex> lk(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::Error("SRVR0404", "no session '" + id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // In-flight drains still hold the shared_ptr; wait them out so close
  // is a clean point (nothing of the session runs afterwards).
  session->WaitIdle();
  return Status();
}

size_t PageServer::session_count() const {
  std::shared_lock<std::shared_mutex> lk(sessions_mu_);
  return sessions_.size();
}

Status PageServer::SubmitEvent(const std::string& session_id,
                               SessionEvent event, Session::Completion done) {
  std::shared_ptr<Session> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::Error("SRVR0404", "no session '" + session_id + "'");
  }
  session->Submit(std::move(event), std::move(done));
  return Status();
}

void PageServer::DrainAll() {
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    std::shared_lock<std::shared_mutex> lk(sessions_mu_);
    snapshot.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) snapshot.push_back(session);
  }
  for (const auto& session : snapshot) session->WaitIdle();
}

std::string PageServer::FormatSessionsReport() const {
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    std::shared_lock<std::shared_mutex> lk(sessions_mu_);
    snapshot.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) snapshot.push_back(session);
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a->seq() < b->seq(); });
  std::ostringstream out;
  out << "--- page server: " << snapshot.size() << " sessions, pool "
      << workers() << " ---\n";
  for (const auto& session : snapshot) {
    Session::StatsSnapshot s = session->stats();
    out << "  " << session->id() << ": url=" << session->page_url()
        << " events=" << s.dispatched << " queued="
        << (s.enqueued - s.dispatched) << " errors=" << s.errors
        << " alerts=" << s.alerts << "\n";
  }
  xml::InternPoolStats intern = xml::GetInternStats();
  out << "  shared substrate:\n";
  out << "    intern pool: " << intern.hits << " hits, " << intern.misses
      << " misses, " << intern.strings << " strings, " << intern.names
      << " names\n";
  xquery::plan::PlanCache& cache = xquery::plan::PlanCache::Global();
  xquery::plan::PlanCache::Stats plans = cache.stats();
  out << "    plan cache: " << cache.size() << " entries, " << plans.hits
      << " hits, " << plans.misses << " misses, " << plans.invalidations
      << " invalidations, " << plans.inserts << " compiles kept, "
      << plans.resident_bytes << " bytes\n";
  net::HttpResponseCache& responses = *net::HttpResponseCache::Global();
  net::HttpResponseCache::Stats rc = responses.stats();
  out << "    response cache: " << responses.size() << " entries, "
      << static_cast<uint64_t>(rc.hits) << " hits, "
      << static_cast<uint64_t>(rc.misses) << " misses, "
      << static_cast<uint64_t>(rc.invalidations) << " invalidations, "
      << static_cast<uint64_t>(rc.expirations) << " expirations\n";
  if (pool_ != nullptr) {
    const base::ThreadPool::Stats& ps = pool_->stats();
    out << "    thread pool: " << pool_->size() << " workers, "
        << static_cast<uint64_t>(ps.submitted) << " tasks, "
        << static_cast<uint64_t>(ps.stolen) << " stolen, "
        << static_cast<uint64_t>(ps.parallel_fors) << " parallel-fors\n";
  } else {
    out << "    thread pool: none (serial)\n";
  }
  return out.str();
}

void PageServer::InstallHttpFrontEnd(net::HttpFabric* front,
                                     const std::string& base_url) {
  std::string base = base_url;
  if (base.empty() || base.back() != '/') base += '/';
  front->SetHandler(base, [this, base](const net::HttpRequest& request) {
    return HandleFrontEnd(request, base);
  });
}

Result<net::HttpResponse> PageServer::HandleFrontEnd(
    const net::HttpRequest& request, const std::string& base_url) {
  std::vector<std::string> path;
  std::string query;
  if (!SplitFrontPath(request.url, base_url, &path, &query) || path.empty() ||
      path[0] != "sessions") {
    return ErrorResponse(404, "unknown endpoint: " + request.url);
  }

  // POST /sessions — create; GET /sessions — report.
  if (path.size() == 1) {
    if (request.method == "GET") {
      return net::HttpResponse{200, FormatSessionsReport(), "text/plain"};
    }
    if (request.method != "POST") {
      return ErrorResponse(405, "use GET or POST on /sessions");
    }
    Result<std::shared_ptr<Session>> session =
        request.body.empty()
            ? CreateSession(QueryParam(query, "page"))
            : CreateSessionFromSource(QueryParam(query, "page"),
                                      request.body);
    if (!session.ok()) {
      return ErrorResponse(400, session.status().ToString());
    }
    return net::HttpResponse{
        201, "<session id=\"" + (*session)->id() + "\"/>", "application/xml"};
  }

  std::shared_ptr<Session> session = FindSession(path[1]);
  if (session == nullptr) {
    return ErrorResponse(404, "no session '" + path[1] + "'");
  }
  const std::string& verb = path.size() > 2 ? path[2] : path[1];

  if (verb == "dom" && request.method == "GET") {
    return net::HttpResponse{200, session->SerializeDom(), "application/xml"};
  }
  if (verb == "close" && request.method == "POST") {
    XQ_RETURN_NOT_OK(CloseSession(session->id()));
    return net::HttpResponse{200, "<closed/>", "application/xml"};
  }
  if (verb == "events" && request.method == "POST") {
    auto parsed = xml::ParseDocument(request.body);
    if (!parsed.ok()) {
      return ErrorResponse(400, "event body: " + parsed.status().ToString());
    }
    const xml::Node* elem = (*parsed)->DocumentElement();
    if (elem == nullptr) return ErrorResponse(400, "event body: no element");
    SessionEvent event;
    event.target_id = AttrOr(elem, "target", "");
    event.type = AttrOr(elem, "type", "onclick");
    event.value = AttrOr(elem, "value", "");
    if (event.target_id.empty()) {
      return ErrorResponse(400, "event body: missing target attribute");
    }
    // Synchronous semantics: the response carries the event's fate.
    struct Sync {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      Status status;
      double latency_us = 0;
    };
    auto sync = std::make_shared<Sync>();
    session->Submit(std::move(event),
                    [sync](const Status& st, double latency_us) {
                      std::lock_guard<std::mutex> lk(sync->mu);
                      sync->status = st;
                      sync->latency_us = latency_us;
                      sync->done = true;
                      sync->cv.notify_all();
                    });
    std::unique_lock<std::mutex> lk(sync->mu);
    sync->cv.wait(lk, [&] { return sync->done; });
    if (!sync->status.ok()) {
      return ErrorResponse(500, sync->status.ToString());
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", sync->latency_us);
    return net::HttpResponse{
        200, "<ok latency-us=\"" + std::string(buf) + "\"/>",
        "application/xml"};
  }
  return ErrorResponse(404, "unknown session endpoint");
}

}  // namespace xqib::server
