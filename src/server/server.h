// xqib::server — the multi-tenant page server (the ROADMAP's
// "millions of users" pivot; PERFORMANCE.md §9, DESIGN.md "Server
// architecture"). Hosts many concurrent Page/XqibPlugin sessions in
// one process, executes XQuery pages server-side, and routes every
// session's events through ONE shared work-stealing thread pool:
// session-level parallelism layered on top of the intra-dispatch
// staging of PR 5/6.
//
// The front end reuses the net/http primitives: InstallHttpFrontEnd
// registers REST handlers on a fabric, so anything that can Perform a
// request (tests, examples, hosted pages of another server) is a
// client:
//
//   POST <base>/sessions           body = page source (or ?page=<url>
//                                  to fetch through the backend)
//                                  -> <session id="s1"/>
//   GET  <base>/sessions           -> the sessions/substrate report
//   POST <base>/sessions/<id>/events   body = <event type="onclick"
//                                  target="laptop" value=""/>
//                                  -> <ok latency-us="..."/> (synchronous)
//   GET  <base>/sessions/<id>/dom  -> serialized session DOM
//   POST <base>/sessions/<id>/close

#ifndef XQIB_SERVER_SERVER_H_
#define XQIB_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/thread_pool.h"
#include "net/http.h"
#include "net/webservice.h"
#include "net/xml_store.h"
#include "server/session.h"

namespace xqib::server {

class PageServer {
 public:
  struct Options {
    // Shared pool size. 0 = serial: every Submit executes inline on
    // the calling thread — the determinism oracle's baseline.
    size_t workers = 0;
    Session::Options session;
  };

  explicit PageServer(const Options& options);
  PageServer() : PageServer(Options()) {}
  ~PageServer();

  // The shared backend substrate (configure BEFORE serving traffic:
  // the fabric's resource/handler maps are read-mostly, not locked on
  // the request path).
  net::HttpFabric& backend() { return backend_; }
  net::XmlStore& store() { return store_; }
  net::ServiceHost& services() { return services_; }
  base::ThreadPool* pool() { return pool_.get(); }
  size_t workers() const { return pool_ != nullptr ? pool_->size() : 0; }

  // Session lifecycle. Creation runs the page's scripts on the calling
  // thread; the returned session is live for events immediately.
  Result<std::shared_ptr<Session>> CreateSession(const std::string& page_url);
  Result<std::shared_ptr<Session>> CreateSessionFromSource(
      const std::string& page_url, const std::string& source);
  std::shared_ptr<Session> FindSession(const std::string& id) const;
  Status CloseSession(const std::string& id);
  size_t session_count() const;

  // The hot path: enqueue on the session's strand (see session.h).
  Status SubmitEvent(const std::string& session_id, SessionEvent event,
                     Session::Completion done = nullptr);

  // Blocks until every session's queue has drained.
  void DrainAll();

  // Per-session event counts plus the shared-substrate stats (intern
  // pool, plan cache, thread pool) — the operator introspection behind
  // xq_repl's :sessions and GET <base>/sessions.
  std::string FormatSessionsReport() const;

  // Registers the REST endpoints above on `front` under `base_url`.
  // `front` may be the backend fabric itself or a separate one; it must
  // outlive this server. Event POSTs execute synchronously, so don't
  // call them from a hosted page's own script (a pool worker blocking
  // on the pool).
  void InstallHttpFrontEnd(net::HttpFabric* front,
                           const std::string& base_url);

 private:
  Result<std::shared_ptr<Session>> RegisterSession();
  Result<net::HttpResponse> HandleFrontEnd(const net::HttpRequest& request,
                                           const std::string& base_url);

  Options options_;
  net::HttpFabric backend_;
  net::XmlStore store_;
  net::ServiceHost services_;
  std::unique_ptr<base::ThreadPool> pool_;

  mutable std::shared_mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_ = 1;  // guarded by sessions_mu_
};

}  // namespace xqib::server

#endif  // XQIB_SERVER_SERVER_H_
