// One hosted page session of the multi-tenant page server
// (PERFORMANCE.md §9): a full client stack — headless browser, XQIB
// plug-in, optional MiniJS engine — executed server-side, the paper's
// §6 shopping-cart scenario run at scale and WebScript-style
// server-side page scripting.
//
// Isolation/sharing split: everything a session owns (DOM, event loop,
// listener registry, arenas, memo cache, name indexes, delta windows,
// per-dispatch stats) is private to it — no cross-session locks on the
// dispatch hot path. Everything read-mostly and process-wide (the
// QName/string interning pool, the compiled-plan cache, the backend
// HTTP fabric and web-service host, the work-stealing thread pool) is
// shared: N sessions compile each plan once and pointer-compare each
// other's names.
//
// Concurrency model: the session is a strand. Events enqueue from any
// thread; at most one drain runs at a time, on a shared-pool worker
// (or inline when the server is serial), and that drain thread IS the
// session's "loop thread" for the duration — the single-mutator
// discipline every lower layer (PR 5-8) was built on carries over
// unchanged, so per-session execution stays deterministic at every
// pool size.

#ifndef XQIB_SERVER_SESSION_H_
#define XQIB_SERVER_SESSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "browser/bom.h"
#include "browser/security.h"
#include "minijs/dom_binding.h"
#include "net/http.h"
#include "net/webservice.h"
#include "plugin/plugin.h"

namespace xqib::server {

// One client interaction, addressed by element id (what a real HTTP
// client can name). Target resolution happens at dispatch time against
// the session's current DOM.
struct SessionEvent {
  std::string target_id;
  std::string type = "onclick";
  std::string value;  // Event::value payload (text-box content etc.)
};

class Session : public std::enable_shared_from_this<Session> {
 public:
  struct Options {
    bool enable_minijs = true;
    browser::SecurityPolicy::Mode security =
        browser::SecurityPolicy::Mode::kSameOrigin;
  };

  // `latency_us` is enqueue-to-completion (queue wait included): the
  // number the load harness feeds its percentile summaries.
  using Completion = std::function<void(const Status&, double latency_us)>;

  // `backend` serves the pages' own REST traffic, `services` their
  // web-service imports, `pool` the shared worker substrate — all
  // owned by the PageServer, shared across sessions, never by this
  // session. Sessions must be owned by shared_ptr (the PageServer
  // creates them): pool drains keep the session alive via
  // shared_from_this.
  Session(std::string id, uint64_t seq, net::HttpFabric* backend,
          net::ServiceHost* services, base::ThreadPool* pool,
          const Options& options);

  // Page load (runs the page's scripts — Figure 1 steps 2-4). Call
  // before the first Submit, on the creating thread.
  Status Navigate(const std::string& url);  // source via the backend
  Status LoadSource(const std::string& url, const std::string& source);

  const std::string& id() const { return id_; }
  uint64_t seq() const { return seq_; }
  const std::string& page_url() const { return page_url_; }

  // The hot path: enqueues the event and, if no drain is in flight,
  // schedules one on the shared pool (inline when serial). `done` runs
  // on the draining thread right after the event's dispatch quiesced.
  // Thread-safe; per-session FIFO order is submission order.
  void Submit(SessionEvent event, Completion done = nullptr);

  // Blocks until the queue is empty and no drain is running.
  void WaitIdle();

  // Serialized current DOM (the determinism oracle's byte-compare
  // channel). Takes the strand, so the snapshot is between-events
  // consistent.
  std::string SerializeDom();

  struct StatsSnapshot {
    uint64_t enqueued = 0;
    uint64_t dispatched = 0;
    uint64_t errors = 0;  // missing target or script error
    uint64_t alerts = 0;  // browser:alert output drained (and dropped)
  };
  StatsSnapshot stats() const;

  // Moves out the recorded per-event latency samples (µs). Call only
  // when idle (after WaitIdle / DrainAll).
  std::vector<double> TakeLatencySamples();

  // Per-session internals for tests and introspection.
  browser::Browser& browser() { return browser_; }
  plugin::XqibPlugin& plugin() { return *plugin_; }

 private:
  struct Pending {
    SessionEvent event;
    Completion done;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void Drain();
  void Execute(Pending& pending);
  std::string ScriptErrors() const;

  const std::string id_;
  const uint64_t seq_;
  base::ThreadPool* pool_;  // shared, not owned; null = inline serial
  browser::Browser browser_;
  std::unique_ptr<plugin::XqibPlugin> plugin_;
  std::unique_ptr<minijs::DomBinding> js_;
  std::string page_url_;

  // Scheduling state: which events are queued and whether a drain owns
  // the strand.
  std::mutex queue_mu_;
  std::condition_variable idle_cv_;
  std::deque<Pending> queue_;
  bool draining_ = false;

  // The strand itself: held for the whole of every drain (and by
  // SerializeDom); whichever thread holds it is the session's loop
  // thread.
  std::mutex run_mu_;

  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> alerts_{0};
  std::vector<double> latency_us_;  // guarded by run_mu_
};

}  // namespace xqib::server

#endif  // XQIB_SERVER_SESSION_H_
