#include "server/session.h"

#include <utility>

#include "xml/serializer.h"

namespace xqib::server {

Session::Session(std::string id, uint64_t seq, net::HttpFabric* backend,
                 net::ServiceHost* services, base::ThreadPool* pool,
                 const Options& options)
    : id_(std::move(id)), seq_(seq), pool_(pool) {
  browser_.policy().set_mode(options.security);
  browser_.page_fetcher =
      [backend](const std::string& url) -> Result<std::string> {
    if (backend == nullptr) {
      return Status::Error("NETW0404", "session has no backend fabric");
    }
    XQ_ASSIGN_OR_RETURN(net::HttpResponse resp, backend->Get(url));
    return resp.body;
  };
  plugin_ = std::make_unique<plugin::XqibPlugin>(&browser_, backend, services);
  plugin_->Install();
  if (options.enable_minijs) {
    js_ = std::make_unique<minijs::DomBinding>(&browser_);
    plugin_->set_foreign_engine(js_.get());
  }
  // One pool, N sessions: intra-dispatch staging, off-thread behind
  // completions and partitioned scans all draw from the shared pool.
  plugin_->UseSharedThreadPool(pool_);
}

Status Session::Navigate(const std::string& url) {
  page_url_ = url;
  XQ_RETURN_NOT_OK(browser_.top_window()->Navigate(url));
  std::string errors = ScriptErrors();
  if (!errors.empty()) {
    return Status::Error("BRWS0005", "script error on load: " + errors);
  }
  return Status();
}

Status Session::LoadSource(const std::string& url, const std::string& source) {
  page_url_ = url;
  XQ_RETURN_NOT_OK(browser_.top_window()->LoadSource(url, source));
  std::string errors = ScriptErrors();
  if (!errors.empty()) {
    return Status::Error("BRWS0005", "script error on load: " + errors);
  }
  return Status();
}

std::string Session::ScriptErrors() const {
  std::string out;
  if (!plugin_->last_script_error().ok()) {
    out += plugin_->last_script_error().ToString();
  }
  if (js_ != nullptr && !js_->last_error().ok()) {
    if (!out.empty()) out += "; ";
    out += js_->last_error().ToString();
  }
  return out;
}

void Session::Submit(SessionEvent event, Completion done) {
  Pending pending;
  pending.event = std::move(event);
  pending.done = std::move(done);
  pending.enqueued_at = std::chrono::steady_clock::now();
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    queue_.push_back(std::move(pending));
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    if (!draining_) {
      draining_ = true;
      schedule = true;
    }
  }
  if (!schedule) return;  // the in-flight drain will pick it up
  if (pool_ != nullptr && pool_->size() > 0) {
    // The drain closure keeps the session alive even if the server
    // drops it from the map before the pool gets to the task.
    auto self = shared_from_this();
    pool_->Submit([self] { self->Drain(); });
  } else {
    Drain();  // serial baseline: the caller is the loop thread
  }
}

void Session::Drain() {
  std::lock_guard<std::mutex> run_lk(run_mu_);
  for (;;) {
    std::deque<Pending> batch;
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      if (queue_.empty()) {
        draining_ = false;
        idle_cv_.notify_all();
        return;
      }
      batch.swap(queue_);
    }
    for (Pending& pending : batch) Execute(pending);
  }
}

void Session::Execute(Pending& pending) {
  Status st;
  xml::Node* target = browser_.top_window()->document()->GetElementById(
      pending.event.target_id);
  if (target == nullptr) {
    st = Status::Error("SRVR0404", "session " + id_ + ": no element with id '" +
                                       pending.event.target_id + "'");
  } else {
    browser::Event event;
    event.type = pending.event.type;
    event.value = pending.event.value;
    plugin_->ClearScriptError();
    st = plugin_->FireEvent(target, std::move(event));
    if (st.ok() && !plugin_->last_script_error().ok()) {
      st = plugin_->last_script_error();
    }
  }
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (!st.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
  // The server has no user to show dialogs to: drain the alert channel
  // so long-lived sessions stay bounded, but keep the count.
  if (!plugin_->alerts().empty()) {
    alerts_.fetch_add(plugin_->alerts().size(), std::memory_order_relaxed);
    plugin_->ClearAlerts();
  }
  const double us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - pending.enqueued_at)
          .count();
  latency_us_.push_back(us);
  if (pending.done) pending.done(st, us);
}

void Session::WaitIdle() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && !draining_; });
}

std::string Session::SerializeDom() {
  std::lock_guard<std::mutex> run_lk(run_mu_);
  return xml::Serialize(browser_.top_window()->document()->root());
}

Session::StatsSnapshot Session::stats() const {
  StatsSnapshot snap;
  snap.enqueued = enqueued_.load(std::memory_order_relaxed);
  snap.dispatched = dispatched_.load(std::memory_order_relaxed);
  snap.errors = errors_.load(std::memory_order_relaxed);
  snap.alerts = alerts_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> Session::TakeLatencySamples() {
  std::lock_guard<std::mutex> run_lk(run_mu_);
  std::vector<double> out;
  out.swap(latency_us_);
  return out;
}

}  // namespace xqib::server
