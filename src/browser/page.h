// Page script extraction: finds <script> elements (and inline on*
// handler attributes) in a loaded document — the first step of the
// plug-in pipeline in Figure 1 of the paper.

#ifndef XQIB_BROWSER_PAGE_H_
#define XQIB_BROWSER_PAGE_H_

#include <string>
#include <vector>

#include "xml/dom.h"

namespace xqib::browser {

enum class ScriptLanguage {
  kXQuery,       // type="text/xquery"
  kXQueryP,      // type="text/xqueryp" (scripting dialect, paper §6.3)
  kJavaScript,   // type="text/javascript" (or no type)
  kUnknown,
};

struct Script {
  ScriptLanguage language = ScriptLanguage::kUnknown;
  std::string code;
  xml::Node* element = nullptr;
};

// An inline handler attribute, e.g. onkeyup="local:showHint(value)".
struct InlineHandler {
  xml::Node* element = nullptr;
  std::string event;  // attribute name: "onclick", "onkeyup", ...
  std::string code;
};

// Collects scripts in document order. Element-name matching is
// case-insensitive so IE-folded pages (SCRIPT) work too.
std::vector<Script> ExtractScripts(xml::Document* doc);

// Collects on* attributes from all elements, in document order.
std::vector<InlineHandler> ExtractInlineHandlers(xml::Document* doc);

ScriptLanguage ScriptLanguageFromType(const std::string& type);

// True if an inline handler looks like an XQuery call ("local:f(value)")
// rather than JavaScript. Shared by the plug-in's handler routing and
// the xq_lint static checker.
bool LooksLikeXQueryHandler(const std::string& code);

// Rewrites the JS-flavoured identifiers the paper uses in inline handler
// attributes (onkeyup="local:showHint(value)") into XQuery variables:
//   value -> $browser:value, event -> $browser:event,
//   this  -> $browser:target.
std::string RewriteInlineHandler(const std::string& code);

}  // namespace xqib::browser

#endif  // XQIB_BROWSER_PAGE_H_
