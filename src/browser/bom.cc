#include "browser/bom.h"

#include <cstdio>

#include "base/strings.h"

namespace xqib::browser {

namespace {

// Splits a URL into the location components the paper's window node
// exposes (href, protocol, host, port, pathname).
struct LocationParts {
  std::string href, protocol, host, port, pathname;
};

LocationParts SplitUrl(const std::string& url) {
  LocationParts parts;
  parts.href = url;
  Origin origin = OriginFromUrl(url);
  parts.protocol = origin.scheme.empty() ? "" : origin.scheme + ":";
  parts.host = origin.host;
  if (!origin.host.empty()) {
    parts.port = std::to_string(origin.EffectivePort());
  }
  size_t scheme_end = url.find("://");
  if (scheme_end != std::string::npos) {
    size_t path_start = url.find('/', scheme_end + 3);
    parts.pathname =
        path_start == std::string::npos ? "/" : url.substr(path_start);
  }
  return parts;
}

void AppendTextChild(xml::Node* parent, const std::string& name,
                     const std::string& value) {
  xml::Document* doc = parent->document();
  xml::Node* elem = doc->CreateElement(xml::QName(name));
  if (!value.empty()) elem->AppendChild(doc->CreateText(value));
  parent->AppendChild(elem);
}

std::string ChildText(const xml::Node* elem, const std::string& name) {
  for (const xml::Node* c : elem->children()) {
    if (c->is_element() && c->name().local() == name) return c->StringValue();
  }
  return "";
}

const xml::Node* ChildElement(const xml::Node* elem, const std::string& name) {
  for (const xml::Node* c : elem->children()) {
    if (c->is_element() && c->name().local() == name) return c;
  }
  return nullptr;
}

}  // namespace

// -------------------------------------------------------------- Window ---

Window::Window(Browser* browser, std::string name)
    : browser_(browser),
      name_(std::move(name)),
      document_(std::make_unique<xml::Document>()) {
  document_->set_uri(url_);
}

Window* Window::CreateFrame(std::string name) {
  frames_.push_back(std::make_unique<Window>(browser_, std::move(name)));
  frames_.back()->parent_ = this;
  return frames_.back().get();
}

void Window::CloseFrame(Window* frame) {
  for (auto it = frames_.begin(); it != frames_.end(); ++it) {
    if (it->get() == frame) {
      // Close nested frames first so every window gets its hook.
      while (!frame->frames_.empty()) {
        frame->CloseFrame(frame->frames_.back().get());
      }
      if (browser_->on_window_closed) browser_->on_window_closed(frame);
      browser_->events().ClearDocument(frame->document());
      frames_.erase(it);
      return;
    }
  }
}

Status Window::Navigate(const std::string& url) {
  if (browser_->page_fetcher == nullptr) {
    return Status::Error("BRWS0003", "no page fetcher configured");
  }
  XQ_ASSIGN_OR_RETURN(std::string source, browser_->page_fetcher(url));
  return LoadInternal(url, source, /*record_history=*/true);
}

Status Window::LoadSource(const std::string& url,
                          const std::string& source) {
  return LoadInternal(url, source, /*record_history=*/true);
}

Status Window::LoadInternal(const std::string& url,
                            const std::string& source, bool record_history) {
  xml::ParseOptions options = browser_->parse_options;
  options.document_uri = url;
  XQ_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                      xml::ParseDocument(source, options));
  // Unload the old page: its listeners die with it.
  browser_->events().ClearDocument(document_.get());
  document_ = std::move(doc);
  url_ = url;
  last_modified_ = browser_->CurrentTimestamp();
  if (record_history) {
    history_.resize(history_index_);
    history_.push_back(url);
    history_index_ = history_.size();
  }
  if (browser_->on_page_loaded) browser_->on_page_loaded(this);
  return Status();
}

Status Window::HistoryGo(int delta) {
  if (history_.empty()) return Status();
  // history_index_ points one past the current entry.
  int64_t target = static_cast<int64_t>(history_index_) - 1 + delta;
  if (target < 0 || target >= static_cast<int64_t>(history_.size())) {
    return Status();  // browsers silently ignore out-of-range goes
  }
  std::string url = history_[static_cast<size_t>(target)];
  if (browser_->page_fetcher == nullptr) {
    return Status::Error("BRWS0003", "no page fetcher configured");
  }
  XQ_ASSIGN_OR_RETURN(std::string source, browser_->page_fetcher(url));
  XQ_RETURN_NOT_OK(LoadInternal(url, source, /*record_history=*/false));
  history_index_ = static_cast<size_t>(target) + 1;
  return Status();
}

void Window::Write(const std::string& text) {
  xml::Node* root = document_->DocumentElement();
  if (root == nullptr) {
    root = document_->CreateElement(xml::QName("html"));
    document_->root()->AppendChild(root);
  }
  xml::Node* body = nullptr;
  for (xml::Node* c : root->children()) {
    if (c->is_element() && AsciiEqualsIgnoreCase(c->name().local(), "body")) {
      body = c;
      break;
    }
  }
  if (body == nullptr) {
    body = document_->CreateElement(xml::QName("body"));
    root->AppendChild(body);
  }
  body->AppendChild(document_->CreateText(text));
}

// ------------------------------------------------------------- Browser ---

Browser::Browser() {
  top_window_ = std::make_unique<Window>(this, "top_window");
}

std::string Browser::CurrentTimestamp() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "1970-01-01T00:00:00+%.0fms",
                loop_.now_ms());
  return buf;
}

void Browser::MaterializeInto(Window* window, xml::Node* parent_elem,
                              const std::string& accessor_url,
                              BomTree* tree) {
  xml::Document* doc = parent_elem->document();
  xml::Node* elem = doc->CreateElement(xml::QName("window"));
  parent_elem->AppendChild(elem);

  if (!policy_.CanAccess(accessor_url, window->url())) {
    // Denied: an empty shell. No name, no properties, no frames — the
    // accessor cannot learn anything (paper §4.2.1). We still record the
    // mapping so that *if* policy later allows, sync can find it — but
    // ResolveWindowNode re-checks on every use.
    tree->node_to_window[elem] = window;
    return;
  }
  tree->node_to_window[elem] = window;
  elem->SetAttribute(xml::QName("name"), window->name());
  AppendTextChild(elem, "status", window->status());
  LocationParts loc = SplitUrl(window->url());
  xml::Node* location = doc->CreateElement(xml::QName("location"));
  elem->AppendChild(location);
  AppendTextChild(location, "href", loc.href);
  AppendTextChild(location, "protocol", loc.protocol);
  AppendTextChild(location, "host", loc.host);
  AppendTextChild(location, "port", loc.port);
  AppendTextChild(location, "pathname", loc.pathname);
  AppendTextChild(elem, "lastModified", window->last_modified());
  AppendTextChild(elem, "historyLength",
                  std::to_string(window->history_length()));
  AppendTextChild(elem, "screenX", std::to_string(window->screen_x()));
  AppendTextChild(elem, "screenY", std::to_string(window->screen_y()));
  xml::Node* frames = doc->CreateElement(xml::QName("frames"));
  elem->AppendChild(frames);
  for (const auto& frame : window->frames()) {
    MaterializeInto(frame.get(), frames, accessor_url, tree);
  }
}

Browser::BomTree Browser::MaterializeWindowTree(
    xml::Document* doc, const std::string& accessor_url) {
  return MaterializeWindow(top_window_.get(), doc, accessor_url);
}

Browser::BomTree Browser::MaterializeWindow(Window* window,
                                            xml::Document* doc,
                                            const std::string& accessor_url) {
  BomTree tree;
  xml::Node* holder = doc->CreateElement(xml::QName("bom"));
  MaterializeInto(window, holder, accessor_url, &tree);
  tree.root = holder->children().empty() ? nullptr : holder->children()[0];
  return tree;
}

xml::Node* Browser::MaterializeNavigator(xml::Document* doc) const {
  xml::Node* elem = doc->CreateElement(xml::QName("navigator"));
  AppendTextChild(elem, "appName", navigator.app_name);
  AppendTextChild(elem, "appVersion", navigator.app_version);
  AppendTextChild(elem, "userAgent", navigator.user_agent);
  AppendTextChild(elem, "platform", navigator.platform);
  AppendTextChild(elem, "language", navigator.language);
  AppendTextChild(elem, "cookieEnabled",
                  navigator.cookie_enabled ? "true" : "false");
  return elem;
}

xml::Node* Browser::MaterializeScreen(xml::Document* doc) const {
  xml::Node* elem = doc->CreateElement(xml::QName("screen"));
  AppendTextChild(elem, "width", std::to_string(screen.width));
  AppendTextChild(elem, "height", std::to_string(screen.height));
  AppendTextChild(elem, "availWidth", std::to_string(screen.avail_width));
  AppendTextChild(elem, "availHeight", std::to_string(screen.avail_height));
  AppendTextChild(elem, "colorDepth", std::to_string(screen.color_depth));
  return elem;
}

Status Browser::SyncFromBomTree(const BomTree& tree,
                                const std::string& accessor_url) {
  for (const auto& [node, window] : tree.node_to_window) {
    // Pull semantics: the policy is re-checked at sync time too.
    if (!policy_.CanAccess(accessor_url, window->url())) continue;
    const xml::Node* elem = node;
    std::string new_status = ChildText(elem, "status");
    if (new_status != window->status()) {
      window->set_status(new_status);
    }
    const xml::Node* location = ChildElement(elem, "location");
    if (location != nullptr) {
      std::string new_href = ChildText(location, "href");
      if (!new_href.empty() && new_href != window->url()) {
        XQ_RETURN_NOT_OK(window->Navigate(new_href));
      }
    }
  }
  return Status();
}

Window* Browser::ResolveWindowNode(const BomTree& tree, const xml::Node* node,
                                   const std::string& accessor_url) {
  const xml::Node* n = node;
  while (n != nullptr) {
    auto it = tree.node_to_window.find(n);
    if (it != tree.node_to_window.end()) {
      if (!policy_.CanAccess(accessor_url, it->second->url())) {
        return nullptr;
      }
      return it->second;
    }
    n = n->parent();
  }
  return nullptr;
}

}  // namespace xqib::browser
