// Origin model and the pluggable security policy of paper §4.2.1: window
// accessors are pull-based and every access re-checks the policy ("this
// could be based on a same-origin policy like in JavaScript, or on any
// other suitable policy"). Failed checks yield empty content, never an
// error, so scripts cannot probe foreign windows.

#ifndef XQIB_BROWSER_SECURITY_H_
#define XQIB_BROWSER_SECURITY_H_

#include <string>
#include <string_view>

namespace xqib::browser {

struct Origin {
  std::string scheme;
  std::string host;
  int port = 0;  // 0 = scheme default

  bool operator==(const Origin& other) const {
    return scheme == other.scheme && host == other.host &&
           EffectivePort() == other.EffectivePort();
  }
  int EffectivePort() const {
    if (port != 0) return port;
    if (scheme == "https") return 443;
    return 80;
  }
  std::string ToString() const;
};

// Parses scheme://host[:port]/... ; relative or malformed URLs produce an
// opaque unique-ish origin (empty host) that matches nothing but itself.
Origin OriginFromUrl(std::string_view url);

class SecurityPolicy {
 public:
  enum class Mode {
    kSameOrigin,   // the JavaScript default the paper suggests
    kPermissive,   // everything allowed (tests, single-origin demos)
    kDenyAll,      // lockdown
  };

  explicit SecurityPolicy(Mode mode = Mode::kSameOrigin) : mode_(mode) {}

  Mode mode() const { return mode_; }
  void set_mode(Mode mode) { mode_ = mode; }

  // May code loaded from `accessor_url` touch a window at `target_url`?
  bool CanAccess(std::string_view accessor_url,
                 std::string_view target_url) const;

 private:
  Mode mode_;
};

}  // namespace xqib::browser

#endif  // XQIB_BROWSER_SECURITY_H_
