#include "browser/events.h"

#include <algorithm>

namespace xqib::browser {

namespace {

// Two-pointer scan over pointer-sorted interned-name lists.
bool Intersects(const std::vector<const xml::InternedName*>& a,
                const std::vector<const xml::InternedName*>& b) {
  size_t i = 0, j = 0;
  std::less<const xml::InternedName*> lt;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (lt(a[i], b[j])) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

// Could `w` committing its updates change something `r` read from the
// snapshot? A child read conflicts with names whose node sets the
// update changes; a value read conflicts with any name whose content
// the update affects (the target and its ancestors).
bool ReadsWrites(const ListenerEffects& r, const ListenerEffects& w) {
  if (!w.updating) return false;
  if (w.writes_top || w.scope_top || r.reads_top) return true;
  return Intersects(r.child_reads, w.writes) ||
         Intersects(r.value_reads, w.write_scope);
}

}  // namespace

bool Compatible(const ListenerEffects* a, const ListenerEffects* b) {
  // No published effects: pure (the engine only stages non-updating
  // listeners without a summary) but with unknown reads.
  static const ListenerEffects kUnknownReader = [] {
    ListenerEffects e;
    e.reads_top = true;
    return e;
  }();
  const ListenerEffects& ea = a != nullptr ? *a : kUnknownReader;
  const ListenerEffects& eb = b != nullptr ? *b : kUnknownReader;
  if (!ea.updating && !eb.updating) return true;
  if (ReadsWrites(ea, eb) || ReadsWrites(eb, ea)) return false;
  // Two updaters of the same name: commit order decides the final node
  // set, so serial visibility could differ — keep them serialized.
  // (writes_top on either side already failed the read/write check.)
  if (ea.updating && eb.updating && Intersects(ea.writes, eb.writes)) {
    return false;
  }
  return true;
}

void EventSystem::AddListener(xml::Node* target, const std::string& type,
                              Listener listener) {
  auto& vec = listeners_[Key{target, type}];
  for (const Listener& l : vec) {
    if (l.id == listener.id && l.capture == listener.capture) return;
  }
  vec.push_back(std::move(listener));
}

void EventSystem::RemoveListener(xml::Node* target, const std::string& type,
                                 const std::string& id) {
  auto it = listeners_.find(Key{target, type});
  if (it == listeners_.end()) return;
  auto& vec = it->second;
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [&](const Listener& l) { return l.id == id; }),
            vec.end());
  if (vec.empty()) listeners_.erase(it);
}

size_t EventSystem::Dispatch(xml::Node* target, Event event) {
  event.target = target;

  // Build the propagation path: ancestors from the root down to target.
  std::vector<xml::Node*> path;
  for (xml::Node* n = target->parent(); n != nullptr; n = n->parent()) {
    path.push_back(n);
  }
  std::reverse(path.begin(), path.end());

  size_t invocations = 0;
  auto run_phase = [&](xml::Node* node, Event::Phase phase) {
    if (event.stop_propagation) return;
    auto it = listeners_.find(Key{node, event.type});
    if (it == listeners_.end()) return;
    // Copy: listeners may mutate the registry while running.
    std::vector<Listener> snapshot = it->second;
    bool want_capture = phase == Event::Phase::kCapture;
    auto applies = [&](const Listener& l) {
      return phase == Event::Phase::kTarget || l.capture == want_capture;
    };
    for (size_t i = 0; i < snapshot.size(); ++i) {
      const Listener& l = snapshot[i];
      if (!applies(l)) continue;
      event.current_target = node;
      event.phase = phase;

      // Parallel path: collect the maximal run of consecutive stageable
      // listeners on this hop. Staged listeners see a const snapshot of
      // the event (they cannot stop propagation — nor could they
      // observably, being read-only), so the whole run executes
      // concurrently and its commits replay in registration order.
      // A single stageable listener just runs its serial callback: the
      // staging machinery would add overhead without concurrency.
      if (pool_ != nullptr && pool_->size() > 0 && l.stage != nullptr) {
        std::vector<const Listener*> run;
        run.push_back(&l);
        size_t j = i + 1;
        for (; j < snapshot.size(); ++j) {
          if (!applies(snapshot[j])) continue;
          if (snapshot[j].stage == nullptr) break;
          // Interference admission: a candidate joins only when its
          // effects are compatible with every listener already in the
          // run. An interfering listener ends the run — it must observe
          // the committed effects of everything before it.
          bool admitted = true;
          for (const Listener* member : run) {
            if (!Compatible(member->effects.get(),
                            snapshot[j].effects.get())) {
              admitted = false;
              break;
            }
          }
          if (!admitted) break;
          run.push_back(&snapshot[j]);
        }
        if (run.size() > 1) {
          const Event staged_event = event;  // one immutable copy for all
          std::vector<std::function<void()>> commits(run.size());
          pool_->ParallelFor(run.size(), [&](size_t k) {
            commits[k] = run[k]->stage(staged_event);
          });
          for (auto& commit : commits) {
            if (commit != nullptr) commit();
          }
          invocations += run.size();
          staged_invocations_ += run.size();
          // Resume after the run; j-1 is the last staged (or skipped)
          // listener consumed into the run.
          i = j - 1;
          continue;
        }
      }

      l.callback(event);
      ++invocations;
      if (event.stop_propagation) break;
    }
  };

  for (xml::Node* n : path) run_phase(n, Event::Phase::kCapture);
  run_phase(target, Event::Phase::kTarget);
  if (event.bubbles) {
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      run_phase(*it, Event::Phase::kBubble);
    }
  }
  return invocations;
}

size_t EventSystem::listener_count() const {
  size_t n = 0;
  for (const auto& [key, vec] : listeners_) n += vec.size();
  return n;
}

void EventSystem::ClearDocument(const xml::Document* doc) {
  for (auto it = listeners_.begin(); it != listeners_.end();) {
    if (it->first.node->document() == doc) {
      it = listeners_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace xqib::browser
