#include "browser/security.h"

#include <cstdlib>

namespace xqib::browser {

std::string Origin::ToString() const {
  return scheme + "://" + host + ":" + std::to_string(EffectivePort());
}

Origin OriginFromUrl(std::string_view url) {
  Origin origin;
  size_t scheme_end = url.find("://");
  if (scheme_end == std::string_view::npos) {
    return origin;  // opaque
  }
  origin.scheme = std::string(url.substr(0, scheme_end));
  std::string_view rest = url.substr(scheme_end + 3);
  size_t host_end = rest.find_first_of("/?#");
  std::string_view authority =
      host_end == std::string_view::npos ? rest : rest.substr(0, host_end);
  size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    origin.host = std::string(authority.substr(0, colon));
    origin.port = std::atoi(std::string(authority.substr(colon + 1)).c_str());
  } else {
    origin.host = std::string(authority);
  }
  return origin;
}

bool SecurityPolicy::CanAccess(std::string_view accessor_url,
                               std::string_view target_url) const {
  switch (mode_) {
    case Mode::kPermissive:
      return true;
    case Mode::kDenyAll:
      return false;
    case Mode::kSameOrigin: {
      Origin a = OriginFromUrl(accessor_url);
      Origin b = OriginFromUrl(target_url);
      if (a.host.empty() || b.host.empty()) return false;
      return a == b;
    }
  }
  return false;
}

}  // namespace xqib::browser
