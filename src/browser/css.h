// CSS inline-style handling (paper §4.5): the style attribute is a list
// of "property: value" pairs; the set/get style grammar extension reads
// and writes individual properties without exposing them as XML children
// ("which would not be correct XML").

#ifndef XQIB_BROWSER_CSS_H_
#define XQIB_BROWSER_CSS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "xml/dom.h"

namespace xqib::browser {

// Parses a style attribute value into ordered (property, value) pairs.
// Malformed declarations are skipped, like browsers do.
std::vector<std::pair<std::string, std::string>> ParseStyleAttribute(
    std::string_view style);

// Serializes pairs back to "a: b; c: d".
std::string SerializeStyleAttribute(
    const std::vector<std::pair<std::string, std::string>>& decls);

// Reads one property from an element's style attribute ("" if absent).
std::string GetStyleProperty(const xml::Node* element,
                             std::string_view property);

// Sets (or replaces) one property in the element's style attribute.
// An empty value removes the property.
void SetStyleProperty(xml::Node* element, std::string_view property,
                      std::string_view value);

}  // namespace xqib::browser

#endif  // XQIB_BROWSER_CSS_H_
