// A single-threaded event loop with simulated time. The browser queues
// DOM event dispatches and asynchronous completions (REST / web-service
// calls behind the paper's "behind" construct) here; benchmarks advance
// simulated time deterministically.

#ifndef XQIB_BROWSER_EVENT_LOOP_H_
#define XQIB_BROWSER_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xqib::browser {

class EventLoop {
 public:
  using Task = std::function<void()>;

  // Schedules `task` to run `delay_ms` of simulated time from now. Tasks
  // with equal due time run in posting order.
  void Post(Task task, double delay_ms = 0.0);

  // Runs the next due task, advancing simulated time to its deadline.
  // Returns false when the queue is empty.
  bool RunOne();

  // Drains the queue; returns the number of tasks run. `max_tasks` guards
  // against runaway task chains.
  size_t RunUntilIdle(size_t max_tasks = 1u << 20);

  bool idle() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  double now_ms() const { return now_ms_; }

 private:
  struct Entry {
    double due_ms;
    uint64_t seq;
    Task task;
    bool operator>(const Entry& other) const {
      if (due_ms != other.due_ms) return due_ms > other.due_ms;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  double now_ms_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace xqib::browser

#endif  // XQIB_BROWSER_EVENT_LOOP_H_
