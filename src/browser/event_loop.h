// The browser event loop with simulated time. The browser queues DOM
// event dispatches and asynchronous completions (REST / web-service
// calls behind the paper's "behind" construct) here; benchmarks advance
// simulated time deterministically.
//
// Threading model (PERFORMANCE.md §5): tasks always EXECUTE on the loop
// thread — it is the only thread that may mutate the DOM — but the
// queue is MPSC so pool workers can Post completions, and off-thread
// entries (PostOffThread) split into a read-only `work` closure that
// runs on a pool worker and a `commit` task that runs on the loop
// thread. Consecutive off-thread entries due at the same simulated
// instant form one batch: all works run concurrently against the state
// at batch start, then all commits run in posting order. Batch
// formation depends only on queue contents, never on the pool size, so
// results are identical whether the works ran on 0, 1 or 8 workers.

#ifndef XQIB_BROWSER_EVENT_LOOP_H_
#define XQIB_BROWSER_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "base/thread_pool.h"

namespace xqib::browser {

class EventLoop {
 public:
  using Task = std::function<void()>;
  // Off-thread unit: `work` runs on a pool worker (concurrently with
  // the rest of its batch; it must only read shared state) and returns
  // the commit to run on the loop thread — or an empty Task for "nothing
  // to commit".
  using OffThreadWork = std::function<Task()>;

  // Schedules `task` to run `delay_ms` of simulated time from now. Tasks
  // with equal due time run in posting order. Thread-safe.
  void Post(Task task, double delay_ms = 0.0);

  // Schedules an off-thread unit (see above). Without a thread pool the
  // work simply runs on the loop thread right before its commit — the
  // serial baseline with identical observable behaviour. Thread-safe.
  void PostOffThread(OffThreadWork work, double delay_ms = 0.0);

  // Worker pool for off-thread batches (null = serial). Not owned.
  void set_thread_pool(base::ThreadPool* pool) { pool_ = pool; }
  base::ThreadPool* thread_pool() const { return pool_; }

  // Runs the next due task (or the next batch of equal-due off-thread
  // entries), advancing simulated time to its deadline. Returns false
  // when the queue is empty. Loop thread only.
  bool RunOne();

  // Drains the queue; returns the number of tasks run. `max_tasks` guards
  // against runaway task chains. Loop thread only.
  size_t RunUntilIdle(size_t max_tasks = 1u << 20);

  bool idle() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.empty();
  }
  size_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
  }
  double now_ms() const { return now_ms_; }

  // Off-thread accounting (tests / EXPERIMENTS.md §P5): entries executed
  // through PostOffThread and the batches they were grouped into.
  uint64_t offthread_tasks() const { return offthread_tasks_; }
  uint64_t offthread_batches() const { return offthread_batches_; }

 private:
  struct Entry {
    double due_ms;
    uint64_t seq;
    Task task;            // regular entries
    OffThreadWork work;   // off-thread entries
    bool off_thread = false;
    bool operator>(const Entry& other) const {
      if (due_ms != other.due_ms) return due_ms > other.due_ms;
      return seq > other.seq;
    }
  };

  mutable std::mutex mu_;  // guards queue_ and next_seq_
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  uint64_t next_seq_ = 0;
  // Loop-thread-only state.
  double now_ms_ = 0.0;
  base::ThreadPool* pool_ = nullptr;
  uint64_t offthread_tasks_ = 0;
  uint64_t offthread_batches_ = 0;
};

}  // namespace xqib::browser

#endif  // XQIB_BROWSER_EVENT_LOOP_H_
