// DOM Level 3 events (paper §4.1/§4.3): listener registry per (node,
// event type) and capture → target → bubble dispatch. Listeners from
// different script engines (XQuery, MiniJS, native C++) coexist on one
// target and are serialized in registration order — the behaviour the
// paper's mash-up (§6.2) relies on.

#ifndef XQIB_BROWSER_EVENTS_H_
#define XQIB_BROWSER_EVENTS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/thread_pool.h"
#include "xml/dom.h"

namespace xqib::browser {

// A dispatched event instance (the "$evt" the paper passes to XQuery
// listeners and the Event object JavaScript sees).
struct Event {
  std::string type;           // "onclick", "onkeyup", "stateChanged", ...
  xml::Node* target = nullptr;
  xml::Node* current_target = nullptr;
  enum class Phase { kCapture, kTarget, kBubble };
  Phase phase = Phase::kTarget;
  bool bubbles = true;
  bool cancelable = true;

  // UI-event payload (subset of the DOM Event object, paper §4.3.2).
  bool alt_key = false;
  bool ctrl_key = false;
  bool shift_key = false;
  int button = 0;
  std::string value;  // e.g. text-box content for key events

  // Listener-controlled flags.
  bool stop_propagation = false;
  bool default_prevented = false;
};

// Static effect summary of a listener, produced by the engine's effect
// analysis. The dispatcher uses it to decide which staged listeners may
// share one concurrent run: an updating listener (its update list is
// applied at commit, on the loop thread) may run beside peers only when
// no peer reads what it writes and no two updaters write the same
// names — then snapshot evaluation plus registration-order commits is
// observably identical to the serial walk.
struct ListenerEffects {
  bool updating = false;   // produces update primitives at commit
  bool reads_top = false;  // read set unanalyzable (anything may be read)
  bool writes_top = false;  // set of written names unanalyzable
  bool scope_top = false;   // set of affected names unanalyzable
  // Interned-name identity, each list sorted by pointer. `child_reads`
  // are names whose element membership the listener navigates by;
  // `value_reads` are names whose content it observes. `writes` are
  // names whose node sets an update adds/removes; `write_scope` adds
  // every name whose content is affected (ancestors of the target).
  std::vector<const xml::InternedName*> child_reads;
  std::vector<const xml::InternedName*> value_reads;
  std::vector<const xml::InternedName*> writes;
  std::vector<const xml::InternedName*> write_scope;
};

// True when two staged listeners may evaluate in the same concurrent
// run. nullptr means "pure, unknown reads": compatible with any other
// non-updater, never with an updater.
bool Compatible(const ListenerEffects* a, const ListenerEffects* b);

// One registered listener. `id` identifies it for removal: engines use
// "<engine>:<function-name>" so detaching by name works across calls.
struct Listener {
  std::string id;
  bool capture = false;
  std::function<void(Event&)> callback;
  // Effect summary for staged-run admission; null for listeners whose
  // engine published none (treated as pure with unknown reads).
  std::shared_ptr<const ListenerEffects> effects;
  // Optional parallel path (PERFORMANCE.md §5). When set, the
  // dispatcher MAY run `stage` on a pool worker, concurrently with the
  // stages of adjacent stageable listeners on the same (node, phase)
  // hop; it returns the commit closure the dispatcher then runs on the
  // loop thread in registration order. The engine sets this only for
  // listeners its analyzer proved parallel-safe (read-only against the
  // DOM snapshot, no interactive host calls) or effect-stageable
  // updating (fully analyzed read/write sets; updates transfer at
  // commit); such listeners receive a const Event and therefore cannot
  // stop propagation. Listeners without a stage are serialization
  // barriers — `callback` remains the semantics of record and the
  // serial execution path.
  std::function<std::function<void()>(const Event&)> stage;
};

class EventSystem {
 public:
  // Adds a listener; duplicate (target, type, id, capture) registrations
  // are ignored, mirroring DOM addEventListener semantics.
  void AddListener(xml::Node* target, const std::string& type,
                   Listener listener);

  // Removes the listener with the given id (both capture and bubble).
  void RemoveListener(xml::Node* target, const std::string& type,
                      const std::string& id);

  // Synchronous DOM dispatch along capture → target → bubble. Returns
  // the number of listener invocations. With a thread pool attached,
  // maximal runs of consecutive stageable listeners within one
  // (node, phase) hop evaluate concurrently and commit in registration
  // order — observably identical to the serial walk.
  size_t Dispatch(xml::Node* target, Event event);

  // Worker pool for staged listener runs (null = serial). Not owned.
  void set_thread_pool(base::ThreadPool* pool) { pool_ = pool; }
  base::ThreadPool* thread_pool() const { return pool_; }

  // Listener invocations that went through the staged parallel path
  // (diagnostics for tests and EXPERIMENTS.md §P5).
  uint64_t staged_invocations() const { return staged_invocations_; }

  // Total listeners registered (diagnostics).
  size_t listener_count() const;

  // Drops all listeners registered on nodes of `doc` (page unload).
  void ClearDocument(const xml::Document* doc);

 private:
  struct Key {
    const xml::Node* node;
    std::string type;
    bool operator==(const Key& other) const {
      return node == other.node && type == other.type;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.node) ^
             (std::hash<std::string>()(k.type) * 1315423911u);
    }
  };
  std::unordered_map<Key, std::vector<Listener>, KeyHash> listeners_;
  base::ThreadPool* pool_ = nullptr;
  uint64_t staged_invocations_ = 0;
};

}  // namespace xqib::browser

#endif  // XQIB_BROWSER_EVENTS_H_
