#include "browser/event_loop.h"

namespace xqib::browser {

void EventLoop::Post(Task task, double delay_ms) {
  queue_.push(Entry{now_ms_ + (delay_ms < 0 ? 0 : delay_ms), next_seq_++,
                    std::move(task)});
}

bool EventLoop::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the task out before pop is the
  // standard idiom for move-only payloads.
  Entry& top = const_cast<Entry&>(queue_.top());
  Task task = std::move(top.task);
  if (top.due_ms > now_ms_) now_ms_ = top.due_ms;
  queue_.pop();
  task();
  return true;
}

size_t EventLoop::RunUntilIdle(size_t max_tasks) {
  size_t n = 0;
  while (n < max_tasks && RunOne()) ++n;
  return n;
}

}  // namespace xqib::browser
