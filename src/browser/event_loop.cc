#include "browser/event_loop.h"

namespace xqib::browser {

void EventLoop::Post(Task task, double delay_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry e;
  e.due_ms = now_ms_ + (delay_ms < 0 ? 0 : delay_ms);
  e.seq = next_seq_++;
  e.task = std::move(task);
  queue_.push(std::move(e));
}

void EventLoop::PostOffThread(OffThreadWork work, double delay_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry e;
  e.due_ms = now_ms_ + (delay_ms < 0 ? 0 : delay_ms);
  e.seq = next_seq_++;
  e.work = std::move(work);
  e.off_thread = true;
  queue_.push(std::move(e));
}

bool EventLoop::RunOne() {
  // Pop the next entry — and, when it is off-thread, every further
  // off-thread entry due at the same simulated instant. Entries at a
  // later time never join the batch: a commit may post tasks that are
  // due before them and must observably run first.
  std::vector<Entry> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (queue_.empty()) return false;
    // priority_queue::top() is const; moving the payload out before pop
    // is the standard idiom for move-only members.
    batch.push_back(std::move(const_cast<Entry&>(queue_.top())));
    queue_.pop();
    if (batch.front().off_thread) {
      while (!queue_.empty() && queue_.top().off_thread &&
             queue_.top().due_ms == batch.front().due_ms) {
        batch.push_back(std::move(const_cast<Entry&>(queue_.top())));
        queue_.pop();
      }
    }
  }

  if (batch.front().due_ms > now_ms_) now_ms_ = batch.front().due_ms;

  if (!batch.front().off_thread) {
    batch.front().task();
    return true;
  }

  // Off-thread batch: all works execute against the state at batch
  // start (concurrently when a pool is attached, sequentially
  // otherwise — same reads either way), then the commits run here in
  // posting order. The loop thread blocks inside ParallelFor, so no
  // mutation can interleave with the works.
  ++offthread_batches_;
  offthread_tasks_ += batch.size();
  std::vector<Task> commits(batch.size());
  auto run_work = [&](size_t i) {
    if (batch[i].work != nullptr) commits[i] = batch[i].work();
  };
  if (pool_ != nullptr && batch.size() > 1) {
    pool_->ParallelFor(batch.size(), run_work);
  } else {
    for (size_t i = 0; i < batch.size(); ++i) run_work(i);
  }
  for (Task& commit : commits) {
    if (commit != nullptr) commit();
  }
  return true;
}

size_t EventLoop::RunUntilIdle(size_t max_tasks) {
  size_t n = 0;
  while (n < max_tasks && RunOne()) ++n;
  return n;
}

}  // namespace xqib::browser
