#include "browser/page.h"

#include "base/strings.h"

namespace xqib::browser {

ScriptLanguage ScriptLanguageFromType(const std::string& type) {
  if (AsciiEqualsIgnoreCase(type, "text/xquery") ||
      AsciiEqualsIgnoreCase(type, "application/xquery")) {
    return ScriptLanguage::kXQuery;
  }
  if (AsciiEqualsIgnoreCase(type, "text/xqueryp") ||
      AsciiEqualsIgnoreCase(type, "application/xqueryp")) {
    return ScriptLanguage::kXQueryP;
  }
  if (type.empty() || AsciiEqualsIgnoreCase(type, "text/javascript") ||
      AsciiEqualsIgnoreCase(type, "application/javascript")) {
    return ScriptLanguage::kJavaScript;
  }
  return ScriptLanguage::kUnknown;
}

std::vector<Script> ExtractScripts(xml::Document* doc) {
  std::vector<Script> scripts;
  xml::VisitSubtree(doc->root(), [&](xml::Node* node) {
    if (!node->is_element()) return;
    if (!AsciiEqualsIgnoreCase(node->name().local(), "script")) return;
    Script s;
    s.element = node;
    s.language = ScriptLanguageFromType(node->GetAttributeValue("type"));
    const xml::Node* src = node->FindAttribute("src");
    if (src != nullptr) {
      // External scripts carry their URL; the plug-in fetches them.
      s.code = "";
    } else {
      s.code = node->StringValue();
    }
    scripts.push_back(std::move(s));
  });
  return scripts;
}

std::vector<InlineHandler> ExtractInlineHandlers(xml::Document* doc) {
  std::vector<InlineHandler> handlers;
  xml::VisitSubtree(doc->root(), [&](xml::Node* node) {
    if (!node->is_element()) return;
    for (const xml::Node* attr : node->attributes()) {
      const std::string& name = attr->name().local();
      if (name.size() > 2 && (name[0] == 'o' || name[0] == 'O') &&
          (name[1] == 'n' || name[1] == 'N')) {
        InlineHandler h;
        h.element = node;
        h.event = AsciiToLower(name);
        h.code = attr->value();
        handlers.push_back(std::move(h));
      }
    }
  });
  return handlers;
}

bool LooksLikeXQueryHandler(const std::string& code) {
  size_t colon = code.find(':');
  size_t paren = code.find('(');
  return colon != std::string::npos && paren != std::string::npos &&
         colon < paren;
}

std::string RewriteInlineHandler(const std::string& code) {
  std::string out;
  size_t i = 0;
  while (i < code.size()) {
    char c = code[i];
    if (IsNameStartChar(c)) {
      size_t start = i;
      while (i < code.size() && (IsNameChar(code[i]) || code[i] == ':')) ++i;
      std::string word = code.substr(start, i - start);
      bool call = i < code.size() && code[i] == '(';
      bool prefixed = start > 0 && (code[start - 1] == '$' ||
                                    code[start - 1] == ':');
      if (!call && !prefixed && word == "value") {
        out += "$browser:value";
      } else if (!call && !prefixed && word == "event") {
        out += "$browser:event";
      } else if (!call && !prefixed && word == "this") {
        out += "$browser:target";
      } else {
        out += word;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      size_t end = code.find(c, i + 1);
      if (end == std::string::npos) end = code.size() - 1;
      out += code.substr(i, end - i + 1);
      i = end + 1;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

}  // namespace xqib::browser
