// Browser Object Model: the window/frame tree, navigator, screen,
// location and history — everything paper §4.2 exposes to XQuery via the
// browser: namespace. Window state is materialized on demand ("pull") as
// XML elements with per-access security checks, and edits to the
// materialized tree are synchronized back (so `replace value of node
// $win/location/href with ...` really navigates).

#ifndef XQIB_BROWSER_BOM_H_
#define XQIB_BROWSER_BOM_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "browser/event_loop.h"
#include "browser/events.h"
#include "browser/security.h"
#include "xml/dom.h"
#include "xml/xml_parser.h"

namespace xqib::browser {

class Browser;

struct NavigatorInfo {
  std::string app_name = "XQIB";
  std::string app_version = "1.0 (simulated)";
  std::string user_agent = "XQIB/1.0 (headless; paper-reproduction)";
  std::string platform = "Simulated";
  std::string language = "en";
  bool cookie_enabled = true;
};

struct ScreenInfo {
  int width = 1280;
  int height = 1024;
  int avail_width = 1280;
  int avail_height = 994;
  int color_depth = 24;
};

// One browser window or frame. Owns its Document.
class Window {
 public:
  Window(Browser* browser, std::string name);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& status() const { return status_; }
  void set_status(std::string status) { status_ = std::move(status); }

  const std::string& url() const { return url_; }
  const std::string& last_modified() const { return last_modified_; }

  xml::Document* document() { return document_.get(); }
  const xml::Document* document() const { return document_.get(); }

  Window* parent() { return parent_; }
  const std::vector<std::unique_ptr<Window>>& frames() const {
    return frames_;
  }
  Window* CreateFrame(std::string name);
  // Closes (removes) a child frame; no-op if not a child.
  void CloseFrame(Window* frame);

  // Fetches `url` through the browser's page fetcher, parses it, replaces
  // the document, records history, and invokes the browser's page-loaded
  // hook (which runs scripts — the plug-in's Figure 1 loop).
  Status Navigate(const std::string& url);

  // Replaces the document without fetching (tests, direct loads).
  Status LoadSource(const std::string& url, const std::string& source);

  // History traversal (§4.2.4 history functions).
  Status HistoryGo(int delta);
  Status HistoryBack() { return HistoryGo(-1); }
  Status HistoryForward() { return HistoryGo(1); }
  size_t history_length() const { return history_.size(); }

  // document.write-style append into <body> (§4.2.4 write/writeln).
  void Write(const std::string& text);

  // Window geometry (§4.2.4 windowMoveBy / windowMoveTo).
  int screen_x() const { return screen_x_; }
  int screen_y() const { return screen_y_; }
  void MoveTo(int x, int y) {
    screen_x_ = x;
    screen_y_ = y;
  }
  void MoveBy(int dx, int dy) {
    screen_x_ += dx;
    screen_y_ += dy;
  }

  Browser* browser() { return browser_; }

 private:
  Status LoadInternal(const std::string& url, const std::string& source,
                      bool record_history);

  Browser* browser_;
  Window* parent_ = nullptr;
  std::string name_;
  std::string status_;
  std::string url_ = "about:blank";
  std::string last_modified_;
  std::unique_ptr<xml::Document> document_;
  std::vector<std::unique_ptr<Window>> frames_;
  std::vector<std::string> history_;
  size_t history_index_ = 0;
  int screen_x_ = 0;
  int screen_y_ = 0;
};

// The headless browser: top window, navigator/screen info, the event
// system and loop, the security policy, and BOM materialization.
class Browser {
 public:
  Browser();

  Window* top_window() { return top_window_.get(); }
  EventLoop& loop() { return loop_; }
  EventSystem& events() { return events_; }
  SecurityPolicy& policy() { return policy_; }

  NavigatorInfo navigator;
  ScreenInfo screen;
  xml::ParseOptions parse_options;

  // Resolves a URL to page source (plugged by the net fabric).
  std::function<Result<std::string>(const std::string& url)> page_fetcher;
  // Invoked after a window (re)loads its document; the plug-in runs the
  // page's scripts here.
  std::function<void(Window*)> on_page_loaded;
  // Invoked just before a window is destroyed (frame closed); script
  // engines drop their per-window state here.
  std::function<void(Window*)> on_window_closed;

  // The wall-clock used for lastModified stamps; defaults to loop time.
  std::string CurrentTimestamp() const;

  // ---- BOM materialization (paper §4.2.1/4.2.2) ----

  // A materialized snapshot of browser state, backed by `doc`, plus the
  // node→Window mapping needed to push edits back and resolve
  // browser:document($w) calls.
  struct BomTree {
    xml::Node* root = nullptr;
    std::unordered_map<const xml::Node*, Window*> node_to_window;
  };

  // Builds the <window> tree for browser:top() into `doc`. Windows the
  // accessor origin may not touch materialize as empty <window/> shells
  // (the paper's "all accessors return an empty sequence").
  BomTree MaterializeWindowTree(xml::Document* doc,
                                const std::string& accessor_url);
  // Same, but rooted at a specific window (browser:self()).
  BomTree MaterializeWindow(Window* window, xml::Document* doc,
                            const std::string& accessor_url);

  xml::Node* MaterializeNavigator(xml::Document* doc) const;
  xml::Node* MaterializeScreen(xml::Document* doc) const;

  // Pushes edits made to a materialized tree back into the BOM: status
  // changes apply directly; location/href changes trigger navigation.
  // Security is re-checked per window ("pull" semantics).
  Status SyncFromBomTree(const BomTree& tree, const std::string& accessor_url);

  // Finds the window that materialized `node` (any descendant of its
  // <window> element works); nullptr if unknown or denied.
  Window* ResolveWindowNode(const BomTree& tree, const xml::Node* node,
                            const std::string& accessor_url);

 private:
  void MaterializeInto(Window* window, xml::Node* parent_elem,
                       const std::string& accessor_url, BomTree* tree);

  std::unique_ptr<Window> top_window_;
  EventLoop loop_;
  EventSystem events_;
  SecurityPolicy policy_{SecurityPolicy::Mode::kSameOrigin};
};

}  // namespace xqib::browser

#endif  // XQIB_BROWSER_BOM_H_
