#include "browser/css.h"

#include "base/strings.h"

namespace xqib::browser {

std::vector<std::pair<std::string, std::string>> ParseStyleAttribute(
    std::string_view style) {
  std::vector<std::pair<std::string, std::string>> decls;
  for (const std::string& decl : SplitChar(style, ';')) {
    size_t colon = decl.find(':');
    if (colon == std::string::npos) continue;
    std::string prop(TrimWhitespace(decl.substr(0, colon)));
    std::string value(TrimWhitespace(decl.substr(colon + 1)));
    if (prop.empty() || value.empty()) continue;
    decls.emplace_back(std::move(prop), std::move(value));
  }
  return decls;
}

std::string SerializeStyleAttribute(
    const std::vector<std::pair<std::string, std::string>>& decls) {
  std::string out;
  for (const auto& [prop, value] : decls) {
    if (!out.empty()) out += "; ";
    out += prop + ": " + value;
  }
  return out;
}

std::string GetStyleProperty(const xml::Node* element,
                             std::string_view property) {
  const xml::Node* attr = element->FindAttribute("style");
  if (attr == nullptr) return "";
  for (const auto& [prop, value] : ParseStyleAttribute(attr->value())) {
    if (AsciiEqualsIgnoreCase(prop, property)) return value;
  }
  return "";
}

void SetStyleProperty(xml::Node* element, std::string_view property,
                      std::string_view value) {
  const xml::Node* attr = element->FindAttribute("style");
  auto decls = ParseStyleAttribute(attr == nullptr ? "" : attr->value());
  bool found = false;
  for (auto it = decls.begin(); it != decls.end();) {
    if (AsciiEqualsIgnoreCase(it->first, property)) {
      if (value.empty()) {
        it = decls.erase(it);
        continue;
      }
      it->second = std::string(value);
      found = true;
    }
    ++it;
  }
  if (!found && !value.empty()) {
    decls.emplace_back(std::string(property), std::string(value));
  }
  std::string serialized = SerializeStyleAttribute(decls);
  if (serialized.empty()) {
    element->RemoveAttribute("", "style");
  } else {
    element->SetAttribute(xml::QName("style"), serialized);
  }
}

}  // namespace xqib::browser
