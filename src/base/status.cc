#include "base/status.h"

namespace xqib {

namespace {
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

Status Status::Error(std::string_view code, std::string_view message) {
  Status st;
  st.rep_ = std::make_shared<const Rep>(
      Rep{std::string(code), std::string(message)});
  return st;
}

const std::string& Status::code() const {
  return rep_ ? rep_->code : EmptyString();
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return "[" + rep_->code + "] " + rep_->message;
}

}  // namespace xqib
