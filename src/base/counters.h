// Statistics counters that stay accurate when bumped from worker
// threads. Every stats struct in the tree (EvalStats, StreamStats,
// EventStats, arena / intern-pool / HTTP accounting) holds these instead
// of raw integers: the parallel dispatch runtime bumps them from pool
// workers concurrently, and a torn or lost increment would silently
// corrupt the benchmark numbers the CI regression guard compares.
//
// All operations use relaxed ordering — the counters carry no
// synchronization duty (the dispatch scheduler's own commit protocol
// orders the *data*); they only need atomicity. Copying a stats struct
// (the before/after delta idiom all over the plugin) snapshots each
// counter with a relaxed load, which is exactly the old plain-integer
// semantics on the thread that owns the struct.

#ifndef XQIB_BASE_COUNTERS_H_
#define XQIB_BASE_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <ostream>

namespace xqib::base {

class RelaxedCounter {
 public:
  constexpr RelaxedCounter(uint64_t value = 0) : v_(value) {}  // NOLINT
  RelaxedCounter(const RelaxedCounter& o)
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t value) {
    v_.store(value, std::memory_order_relaxed);
    return *this;
  }

  // Implicit read keeps the arithmetic call sites (`after.x - before.x`,
  // JSON emission, EXPECT_EQ) unchanged.
  operator uint64_t() const { return v_.load(std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  RelaxedCounter& operator+=(uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator-=(uint64_t n) {
    v_.fetch_sub(n, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() { return *this += 1; }
  uint64_t operator++(int) {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }

  friend std::ostream& operator<<(std::ostream& os,
                                  const RelaxedCounter& c) {
    return os << c.value();
  }

 private:
  std::atomic<uint64_t> v_;
};

// Same idea for accumulated floating-point totals (simulated latency).
// CAS loop instead of atomic<double>::fetch_add keeps this portable to
// pre-C++20 standard libraries.
class RelaxedDouble {
 public:
  constexpr RelaxedDouble(double value = 0.0) : v_(value) {}  // NOLINT
  RelaxedDouble(const RelaxedDouble& o)
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  RelaxedDouble& operator=(const RelaxedDouble& o) {
    v_.store(o.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }
  RelaxedDouble& operator=(double value) {
    v_.store(value, std::memory_order_relaxed);
    return *this;
  }

  operator double() const { return v_.load(std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

  RelaxedDouble& operator+=(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, const RelaxedDouble& c) {
    return os << c.value();
  }

 private:
  std::atomic<double> v_;
};

}  // namespace xqib::base

#endif  // XQIB_BASE_COUNTERS_H_
