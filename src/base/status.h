// Status: the error model used across the XQIB library.
//
// Errors never cross API boundaries as exceptions. Every fallible operation
// returns a Status (or a Result<T>, see result.h). Error identities follow
// the W3C XQuery error-code convention: a short code such as "XPST0003"
// (static syntax error) or "XPDY0002" (undefined context item) plus a
// human-readable message. A code beginning with:
//   XPST / XQST  - static (compile-time) errors
//   XPDY / XQDY  - dynamic (evaluation-time) errors
//   XPTY / XQTY  - type errors
//   XUST / XUDY  - XQuery Update Facility errors
//   XSST / XSDY  - Scripting Extension errors (non-normative, ours)
//   FO*          - function/operator errors (e.g. FOAR0001 division by zero)
//   SEPM / SERE  - serialization errors
//   BRWS         - browser-binding errors (ours, for the browser profile)
//   NETW         - simulated-network errors (ours)

#ifndef XQIB_BASE_STATUS_H_
#define XQIB_BASE_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace xqib {

class Status {
 public:
  // Creates an OK status. Carries no allocation.
  Status() = default;

  // Named constructors for the major error families.
  static Status Error(std::string_view code, std::string_view message);
  static Status StaticError(std::string_view code, std::string_view message) {
    return Error(code, message);
  }
  static Status DynamicError(std::string_view code, std::string_view message) {
    return Error(code, message);
  }
  static Status TypeError(std::string_view message) {
    return Error("XPTY0004", message);
  }
  static Status SyntaxError(std::string_view message) {
    return Error("XPST0003", message);
  }
  static Status NotImplemented(std::string_view message) {
    return Error("XQIB0001", message);
  }

  bool ok() const { return rep_ == nullptr; }

  // The W3C error code ("XPST0003", ...). Empty string when ok().
  const std::string& code() const;

  // The human-readable message. Empty string when ok().
  const std::string& message() const;

  // "OK" or "[CODE] message".
  std::string ToString() const;

  bool IsSyntaxError() const { return ok() ? false : code() == "XPST0003"; }

 private:
  struct Rep {
    std::string code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // nullptr == OK
};

}  // namespace xqib

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define XQ_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::xqib::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (false)

#endif  // XQIB_BASE_STATUS_H_
