// A small work-stealing worker pool — the execution substrate of the
// parallel dispatch runtime (PERFORMANCE.md §5). Each worker owns a
// deque: its own work pops LIFO (cache-warm), idle workers steal FIFO
// from victims (oldest task first, the classic Chase-Lev discipline in
// mutex-guarded form — task bodies here are whole listener evaluations,
// microseconds to milliseconds, so lock cost is noise).
//
// The pool is deliberately oblivious to XQuery: it runs closures. All
// ordering guarantees (registration-order commits, document-order
// merges) live in the callers — the event-loop batcher, the dispatch
// scheduler, and ParallelStepStream.

#ifndef XQIB_BASE_THREAD_POOL_H_
#define XQIB_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/counters.h"

namespace xqib::base {

class ThreadPool {
 public:
  // A pool of `workers` threads. Zero is legal and means "no threads":
  // Submit runs inline and ParallelFor degrades to a plain loop — the
  // serial baseline every determinism oracle compares against.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Fire-and-forget. Tasks may themselves Submit; they must not block on
  // other pool tasks (ParallelFor is the blocking primitive and the
  // calling thread participates, so it is safe from non-pool threads).
  void Submit(std::function<void()> task);

  // Runs fn(0) ... fn(n-1), distributed across the workers with the
  // calling thread participating, and returns when all n indices have
  // completed. Indices are claimed dynamically (atomic counter), so
  // uneven task costs balance automatically. fn must be safe to call
  // concurrently with itself for distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  struct Stats {
    RelaxedCounter submitted;
    RelaxedCounter stolen;    // tasks executed by a non-owning worker
    RelaxedCounter parallel_fors;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerMain(size_t self);
  // Pops own-back or steals a victim's front. Returns false if no work
  // was found anywhere.
  bool FindWork(size_t self, std::function<void()>* out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};
  Stats stats_;
};

}  // namespace xqib::base

#endif  // XQIB_BASE_THREAD_POOL_H_
