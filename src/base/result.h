// Result<T>: value-or-Status, the return type of fallible producers.
// Mirrors arrow::Result / absl::StatusOr.

#ifndef XQIB_BASE_RESULT_H_
#define XQIB_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace xqib {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or from a non-OK Status keeps call
  // sites natural: `return value;` / `return Status::TypeError(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;           // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace xqib

#define XQ_CONCAT_IMPL(a, b) a##b
#define XQ_CONCAT(a, b) XQ_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on error returns the Status, otherwise
// moves the value into `lhs` (which may be a declaration).
#define XQ_ASSIGN_OR_RETURN(lhs, expr)                      \
  XQ_ASSIGN_OR_RETURN_IMPL(XQ_CONCAT(_xq_res_, __LINE__), lhs, expr)

#define XQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#endif  // XQIB_BASE_RESULT_H_
