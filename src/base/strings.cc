#include "base/strings.h"

#include <cmath>
#include <cstdio>

namespace xqib {

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsXmlWhitespace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsXmlWhitespace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string NormalizeSpace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_ws = false;
  for (char c : TrimWhitespace(s)) {
    if (IsXmlWhitespace(c)) {
      in_ws = true;
    } else {
      if (in_ws) out.push_back(' ');
      in_ws = false;
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::string> SplitChar(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view sub) {
  return s.find(sub) != std::string_view::npos;
}

std::vector<uint32_t> Utf8ToCodepoints(std::string_view s) {
  std::vector<uint32_t> cps;
  cps.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    uint32_t cp = 0xFFFD;
    size_t len = 1;
    if (c < 0x80) {
      cp = c;
    } else if ((c & 0xE0) == 0xC0 && i + 1 < s.size()) {
      cp = (c & 0x1F) << 6 | (s[i + 1] & 0x3F);
      len = 2;
    } else if ((c & 0xF0) == 0xE0 && i + 2 < s.size()) {
      cp = (c & 0x0F) << 12 | (s[i + 1] & 0x3F) << 6 | (s[i + 2] & 0x3F);
      len = 3;
    } else if ((c & 0xF8) == 0xF0 && i + 3 < s.size()) {
      cp = (c & 0x07) << 18 | (s[i + 1] & 0x3F) << 12 |
           (s[i + 2] & 0x3F) << 6 | (s[i + 3] & 0x3F);
      len = 4;
    }
    cps.push_back(cp);
    i += len;
  }
  return cps;
}

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string CodepointsToUtf8(const std::vector<uint32_t>& cps) {
  std::string out;
  out.reserve(cps.size());
  for (uint32_t cp : cps) AppendUtf8(cp, &out);
  return out;
}

size_t Utf8Length(std::string_view s) {
  size_t n = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    // Count bytes that are not UTF-8 continuation bytes.
    if ((static_cast<unsigned char>(s[i]) & 0xC0) != 0x80) ++n;
  }
  return n;
}

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsValidNCName(std::string_view s) {
  if (s.empty() || !IsNameStartChar(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

LineCol OffsetToLineCol(std::string_view text, size_t offset) {
  if (offset > text.size()) offset = text.size();
  LineCol lc;
  for (size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++lc.line;
      lc.column = 1;
    } else {
      ++lc.column;
    }
  }
  return lc;
}

std::string FormatLineCol(std::string_view text, size_t offset) {
  LineCol lc = OffsetToLineCol(text, offset);
  return "line " + std::to_string(lc.line) + ", column " +
         std::to_string(lc.column);
}

std::string DoubleToXPathString(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "INF" : "-INF";
  if (d == 0.0) return std::signbit(d) ? "-0" : "0";
  // Integral values within the safe range print as integers.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  return buf;
}

}  // namespace xqib
