#include "base/thread_pool.h"

namespace xqib::base {

ThreadPool::ThreadPool(size_t workers) {
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: pairs with the wait's predicate check so a
    // worker between "predicate false" and "sleep" still sees the stop.
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ++stats_.submitted;
  if (workers_.empty()) {
    task();
    return;
  }
  size_t victim =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lk(queues_[victim]->mu);
    queues_[victim]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_one();
}

bool ThreadPool::FindWork(size_t self, std::function<void()>* out) {
  // Own queue first, newest task (LIFO: it is the cache-warm one).
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the others, starting just past ourselves so
  // thieves spread out instead of mobbing queue 0.
  for (size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      ++stats_.stolen;
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerMain(size_t self) {
  std::function<void()> task;
  while (true) {
    if (FindWork(self, &task)) {
      task();
      task = nullptr;
      pending_.fetch_sub(1, std::memory_order_release);
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  ++stats_.parallel_fors;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Helpers and the caller claim indices from one shared counter. The
  // job outlives the caller only through the shared_ptr — a helper that
  // wakes after everything is claimed touches nothing but the counters.
  struct Job {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t total = 0;
    const std::function<void(size_t)>* fn = nullptr;  // valid while done<total
  };
  auto job = std::make_shared<Job>();
  job->total = n;
  job->fn = &fn;

  auto drain = [](const std::shared_ptr<Job>& j) {
    while (true) {
      size_t i = j->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= j->total) return;
      (*j->fn)(i);
      if (j->done.fetch_add(1, std::memory_order_acq_rel) + 1 == j->total) {
        std::lock_guard<std::mutex> lk(j->mu);
        j->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([job, drain] { drain(job); });
  }
  drain(job);
  std::unique_lock<std::mutex> lk(job->mu);
  job->cv.wait(lk, [&] {
    return job->done.load(std::memory_order_acquire) == job->total;
  });
}

}  // namespace xqib::base
