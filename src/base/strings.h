// Small string utilities shared across the library. Strings are UTF-8;
// codepoint-aware helpers decode UTF-8 explicitly.

#ifndef XQIB_BASE_STRINGS_H_
#define XQIB_BASE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xqib {

// Removes leading/trailing XML whitespace (space, tab, CR, LF).
std::string_view TrimWhitespace(std::string_view s);

// Collapses internal whitespace runs to single spaces and trims (the
// semantics of fn:normalize-space).
std::string NormalizeSpace(std::string_view s);

// Splits on a single character; keeps empty fields.
std::vector<std::string> SplitChar(std::string_view s, char sep);

// ASCII-only case conversion (sufficient for HTML tag folding and the
// fn:upper-case / fn:lower-case subset we support).
std::string AsciiToUpper(std::string_view s);
std::string AsciiToLower(std::string_view s);

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

// True if `s` starts with / ends with / contains `sub`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view sub);

// Decodes a UTF-8 string into Unicode codepoints. Invalid bytes are mapped
// to U+FFFD rather than failing: browser content is best-effort.
std::vector<uint32_t> Utf8ToCodepoints(std::string_view s);

// Encodes codepoints back to UTF-8.
std::string CodepointsToUtf8(const std::vector<uint32_t>& cps);

// Appends one codepoint, UTF-8 encoded, to `out`.
void AppendUtf8(uint32_t cp, std::string* out);

// Number of Unicode codepoints in a UTF-8 string.
size_t Utf8Length(std::string_view s);

// 1-based line/column of a byte offset inside a source text. Columns
// count bytes (adequate for the ASCII-dominant scripts we diagnose).
struct LineCol {
  int line = 1;
  int column = 1;
};
LineCol OffsetToLineCol(std::string_view text, size_t offset);

// Renders "line L, column C" for diagnostics.
std::string FormatLineCol(std::string_view text, size_t offset);

// True for XML whitespace characters.
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

// NCName checks per XML Namespaces (ASCII approximation plus multi-byte
// pass-through, which is how lenient browser parsers behave).
bool IsNameStartChar(char c);
bool IsNameChar(char c);
bool IsValidNCName(std::string_view s);

// Formats a double the way XPath's fn:string does for xs:double (integral
// values print without a trailing ".0"; NaN/INF use XPath spellings).
std::string DoubleToXPathString(double d);

}  // namespace xqib

#endif  // XQIB_BASE_STRINGS_H_
