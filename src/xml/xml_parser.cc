#include "xml/xml_parser.h"

#include <cassert>
#include <unordered_map>
#include <vector>

#include "base/strings.h"

namespace xqib::xml {

namespace {

Status ParseError(std::string_view message, size_t pos) {
  return Status::Error(
      "FODC0006", std::string(message) + " at offset " + std::to_string(pos));
}

// In-scope namespace bindings, one map per open element (copy-on-push is
// fine: documents rarely nest namespace declarations deeply).
using NsBindings = std::unordered_map<std::string, std::string>;

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : in_(input), options_(options) {}

  // Parses a whole document into `doc`.
  Status ParseDocumentInto(Document* doc) {
    SkipBom();
    XQ_RETURN_NOT_OK(SkipMisc(doc->root()));
    if (!AtElementStart()) {
      return ParseError("expected document element", pos_);
    }
    NsBindings ns;
    ns["xml"] = std::string(kXmlNamespace);
    XQ_RETURN_NOT_OK(ParseElement(doc->root(), ns));
    XQ_RETURN_NOT_OK(SkipMisc(doc->root()));
    if (pos_ != in_.size()) {
      return ParseError("content after document element", pos_);
    }
    return Status();
  }

  // Parses mixed content (text + elements) until end of input.
  Status ParseFragment(Node* parent) {
    NsBindings ns;
    ns["xml"] = std::string(kXmlNamespace);
    return ParseContent(parent, ns, /*in_fragment=*/true);
  }

 private:
  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return in_.size() - pos_ >= s.size() && in_.substr(pos_, s.size()) == s;
  }
  void SkipBom() {
    if (LookingAt("\xEF\xBB\xBF")) pos_ += 3;
  }
  void SkipWhitespace() {
    while (!Eof() && IsXmlWhitespace(Peek())) ++pos_;
  }
  bool AtElementStart() const {
    return pos_ < in_.size() && in_[pos_] == '<' && pos_ + 1 < in_.size() &&
           IsNameStartChar(in_[pos_ + 1]);
  }

  // Skips XML decl, doctype, comments, PIs, whitespace at document level.
  Status SkipMisc(Node* doc_root) {
    while (!Eof()) {
      SkipWhitespace();
      if (LookingAt("<?xml")) {
        size_t end = in_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return ParseError("unterminated XML declaration", pos_);
        }
        pos_ = end + 2;
      } else if (LookingAt("<!DOCTYPE") || LookingAt("<!doctype")) {
        // Skip to matching '>' (no internal subset support needed for
        // XHTML doctypes).
        int depth = 0;
        while (!Eof()) {
          char c = in_[pos_++];
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth == 0) break;
        }
      } else if (LookingAt("<!--")) {
        XQ_RETURN_NOT_OK(ParseComment(doc_root));
      } else if (LookingAt("<?")) {
        XQ_RETURN_NOT_OK(ParsePI(doc_root));
      } else {
        break;
      }
    }
    return Status();
  }

  Status ParseName(std::string* out) {
    size_t start = pos_;
    if (Eof() || !IsNameStartChar(Peek())) {
      return ParseError("expected name", pos_);
    }
    while (!Eof() && (IsNameChar(Peek()) || Peek() == ':')) ++pos_;
    *out = std::string(in_.substr(start, pos_ - start));
    return Status();
  }

  // Splits "p:local" and resolves against bindings. For attributes,
  // unprefixed names are in no namespace (is_attribute=true).
  Result<QName> ResolveQName(const std::string& raw, const NsBindings& ns,
                             bool is_attribute) {
    size_t colon = raw.find(':');
    if (colon == std::string::npos) {
      if (is_attribute) return QName("", "", raw);
      auto it = ns.find("");
      return QName(it == ns.end() ? "" : it->second, "", raw);
    }
    std::string prefix = raw.substr(0, colon);
    std::string local = raw.substr(colon + 1);
    auto it = ns.find(prefix);
    if (it == ns.end()) {
      return ParseError("undeclared namespace prefix '" + prefix + "'", pos_);
    }
    return QName(it->second, prefix, local);
  }

  Status ParseComment(Node* parent) {
    pos_ += 4;  // "<!--"
    size_t end = in_.find("-->", pos_);
    if (end == std::string_view::npos) {
      return ParseError("unterminated comment", pos_);
    }
    Node* c = parent->document()->CreateComment(
        std::string(in_.substr(pos_, end - pos_)));
    parent->AppendChild(c);
    pos_ = end + 3;
    return Status();
  }

  Status ParsePI(Node* parent) {
    pos_ += 2;  // "<?"
    std::string target;
    XQ_RETURN_NOT_OK(ParseName(&target));
    size_t end = in_.find("?>", pos_);
    if (end == std::string_view::npos) {
      return ParseError("unterminated processing instruction", pos_);
    }
    std::string data(TrimWhitespace(in_.substr(pos_, end - pos_)));
    Node* pi = parent->document()->CreateProcessingInstruction(
        std::move(target), std::move(data));
    parent->AppendChild(pi);
    pos_ = end + 2;
    return Status();
  }

  Status ParseCData(Node* parent) {
    pos_ += 9;  // "<![CDATA["
    size_t end = in_.find("]]>", pos_);
    if (end == std::string_view::npos) {
      return ParseError("unterminated CDATA section", pos_);
    }
    Node* t = parent->document()->CreateText(
        std::string(in_.substr(pos_, end - pos_)));
    parent->AppendChild(t);
    pos_ = end + 3;
    return Status();
  }

  Status ParseAttributes(NsBindings* ns,
                         std::vector<std::pair<std::string, std::string>>*
                             pending_attrs) {
    while (true) {
      SkipWhitespace();
      if (Eof()) return ParseError("unterminated start tag", pos_);
      if (Peek() == '>' || Peek() == '/') return Status();
      std::string raw_name;
      XQ_RETURN_NOT_OK(ParseName(&raw_name));
      SkipWhitespace();
      if (Eof() || Peek() != '=') {
        return ParseError("expected '=' after attribute name", pos_);
      }
      ++pos_;
      SkipWhitespace();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return ParseError("expected quoted attribute value", pos_);
      }
      char quote = Peek();
      ++pos_;
      size_t end = in_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return ParseError("unterminated attribute value", pos_);
      }
      XQ_ASSIGN_OR_RETURN(std::string value,
                          DecodeEntities(in_.substr(pos_, end - pos_)));
      pos_ = end + 1;

      if (raw_name == "xmlns") {
        (*ns)[""] = value;
      } else if (StartsWith(raw_name, "xmlns:")) {
        (*ns)[raw_name.substr(6)] = value;
      } else {
        pending_attrs->emplace_back(std::move(raw_name), std::move(value));
      }
    }
  }

  Status ParseElement(Node* parent, const NsBindings& outer_ns) {
    assert(Peek() == '<');
    ++pos_;
    std::string raw_name;
    XQ_RETURN_NOT_OK(ParseName(&raw_name));

    NsBindings ns = outer_ns;
    std::vector<std::pair<std::string, std::string>> pending_attrs;
    Node* element = parent->document()->CreateElement(QName());
    XQ_RETURN_NOT_OK(ParseAttributes(&ns, &pending_attrs));

    if (options_.ie_tag_folding) raw_name = FoldTagName(raw_name);
    XQ_ASSIGN_OR_RETURN(QName name, ResolveQName(raw_name, ns, false));
    element->Rename(name);
    for (auto& [attr_raw, attr_value] : pending_attrs) {
      XQ_ASSIGN_OR_RETURN(QName attr_name, ResolveQName(attr_raw, ns, true));
      element->SetAttribute(attr_name, std::move(attr_value));
    }
    parent->AppendChild(element);

    if (Peek() == '/') {
      ++pos_;
      if (Eof() || Peek() != '>') return ParseError("expected '>'", pos_);
      ++pos_;
      return Status();
    }
    assert(Peek() == '>');
    ++pos_;

    // Browser rule: <script> and <style> content is raw text, never
    // markup (pages embed XQuery/JavaScript with '<' freely).
    if (AsciiEqualsIgnoreCase(raw_name, "script") ||
        AsciiEqualsIgnoreCase(raw_name, "style")) {
      return ParseRawTextElement(element, raw_name);
    }

    XQ_RETURN_NOT_OK(ParseContent(element, ns, /*in_fragment=*/false));

    // End tag.
    if (!LookingAt("</")) return ParseError("expected end tag", pos_);
    pos_ += 2;
    std::string end_name;
    XQ_RETURN_NOT_OK(ParseName(&end_name));
    if (options_.ie_tag_folding) end_name = FoldTagName(end_name);
    if (end_name != raw_name) {
      return ParseError("mismatched end tag </" + end_name + "> for <" +
                            raw_name + ">",
                        pos_);
    }
    SkipWhitespace();
    if (Eof() || Peek() != '>') return ParseError("expected '>'", pos_);
    ++pos_;
    return Status();
  }

  // Scans raw content up to the matching end tag (case-insensitive) and
  // stores it as one text node. A wrapping <![CDATA[ ... ]]> (the XHTML
  // idiom for scripts) is stripped.
  Status ParseRawTextElement(Node* element, const std::string& raw_name) {
    std::string close = "</" + AsciiToLower(raw_name);
    size_t end = std::string_view::npos;
    for (size_t i = pos_; i + close.size() <= in_.size(); ++i) {
      if (AsciiEqualsIgnoreCase(in_.substr(i, close.size()), close)) {
        end = i;
        break;
      }
    }
    if (end == std::string_view::npos) {
      return ParseError("unterminated <" + raw_name + "> element", pos_);
    }
    std::string_view content = in_.substr(pos_, end - pos_);
    std::string_view trimmed = TrimWhitespace(content);
    if (StartsWith(trimmed, "<![CDATA[") && EndsWith(trimmed, "]]>")) {
      content = trimmed.substr(9, trimmed.size() - 12);
    }
    if (!TrimWhitespace(content).empty()) {
      element->AppendChild(
          element->document()->CreateText(std::string(content)));
    }
    pos_ = end + close.size();
    SkipWhitespace();
    if (Eof() || Peek() != '>') return ParseError("expected '>'", pos_);
    ++pos_;
    return Status();
  }

  Status ParseContent(Node* parent, const NsBindings& ns, bool in_fragment) {
    std::string text;
    auto flush_text = [&]() -> Status {
      if (text.empty()) return Status();
      bool ws_only = TrimWhitespace(text).empty();
      if (!ws_only || options_.keep_whitespace_text) {
        XQ_ASSIGN_OR_RETURN(std::string decoded, DecodeEntities(text));
        parent->AppendChild(parent->document()->CreateText(std::move(decoded)));
      }
      text.clear();
      return Status();
    };

    while (!Eof()) {
      if (Peek() == '<') {
        if (LookingAt("</")) {
          if (in_fragment) {
            return ParseError("unexpected end tag in fragment", pos_);
          }
          XQ_RETURN_NOT_OK(flush_text());
          return Status();
        }
        XQ_RETURN_NOT_OK(flush_text());
        if (LookingAt("<!--")) {
          XQ_RETURN_NOT_OK(ParseComment(parent));
        } else if (LookingAt("<![CDATA[")) {
          XQ_RETURN_NOT_OK(ParseCData(parent));
        } else if (LookingAt("<?")) {
          XQ_RETURN_NOT_OK(ParsePI(parent));
        } else if (AtElementStart()) {
          XQ_RETURN_NOT_OK(ParseElement(parent, ns));
        } else {
          return ParseError("malformed markup", pos_);
        }
      } else {
        text.push_back(Peek());
        ++pos_;
      }
    }
    XQ_RETURN_NOT_OK(flush_text());
    if (!in_fragment) return ParseError("unexpected end of input", pos_);
    return Status();
  }

  // IE folding: only names without a prefix and without multi-byte chars
  // are folded (namespaced content such as SVG is untouched by IE too).
  std::string FoldTagName(const std::string& raw) const {
    if (raw.find(':') != std::string::npos) return raw;
    return AsciiToUpper(raw);
  }

  std::string_view in_;
  const ParseOptions& options_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::string> DecodeEntities(std::string_view text) {
  if (text.find('&') == std::string_view::npos) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos) {
      return ParseError("unterminated entity reference", i);
    }
    std::string_view ent = text.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      uint32_t cp = 0;
      bool ok = ent.size() > 1;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        for (char c : ent.substr(2)) {
          if (c >= '0' && c <= '9') cp = cp * 16 + (c - '0');
          else if (c >= 'a' && c <= 'f') cp = cp * 16 + (c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') cp = cp * 16 + (c - 'A' + 10);
          else { ok = false; break; }
        }
      } else {
        for (char c : ent.substr(1)) {
          if (c >= '0' && c <= '9') cp = cp * 10 + (c - '0');
          else { ok = false; break; }
        }
      }
      if (!ok) return ParseError("bad character reference", i);
      AppendUtf8(cp, &out);
    } else {
      return ParseError("unknown entity '&" + std::string(ent) + ";'", i);
    }
    i = semi + 1;
  }
  return out;
}

Result<std::unique_ptr<Document>> ParseDocument(std::string_view input,
                                                const ParseOptions& options) {
  auto doc = std::make_unique<Document>();
  doc->set_uri(options.document_uri);
  Parser parser(input, options);
  XQ_RETURN_NOT_OK(parser.ParseDocumentInto(doc.get()));
  return doc;
}

Result<std::unique_ptr<Document>> ParseDocument(std::string_view input) {
  return ParseDocument(input, ParseOptions());
}

Status ParseFragmentInto(std::string_view input, Node* parent,
                         const ParseOptions& options) {
  Parser parser(input, options);
  return parser.ParseFragment(parent);
}

}  // namespace xqib::xml
