#include "xml/interning.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

namespace xqib::xml {

namespace {

std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};

// Storage is a deque so entry addresses survive growth; the index keys
// are string_views into that storage.
class StringPool {
 public:
  const std::string* Intern(std::string_view s) {
    {
      std::shared_lock lock(mu_);
      auto it = index_.find(s);
      if (it != index_.end()) {
        g_hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    std::unique_lock lock(mu_);
    auto it = index_.find(s);
    if (it != index_.end()) {
      g_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    g_misses.fetch_add(1, std::memory_order_relaxed);
    const std::string& stored = storage_.emplace_back(s);
    index_.emplace(stored, &stored);
    return &stored;
  }

  uint64_t size() const {
    std::shared_lock lock(mu_);
    return storage_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, const std::string*> index_;
};

class NamePool {
 public:
  const InternedName* Intern(const std::string* ns, const std::string* local) {
    Key key{ns, local};
    {
      std::shared_lock lock(mu_);
      auto it = index_.find(key);
      if (it != index_.end()) {
        g_hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    std::unique_lock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      g_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    g_misses.fetch_add(1, std::memory_order_relaxed);
    const InternedName& stored = storage_.emplace_back(InternedName{ns, local});
    index_.emplace(key, &stored);
    return &stored;
  }

  uint64_t size() const {
    std::shared_lock lock(mu_);
    return storage_.size();
  }

 private:
  using Key = std::pair<const std::string*, const std::string*>;
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept {
      size_t a = std::hash<const void*>{}(k.first);
      size_t b = std::hash<const void*>{}(k.second);
      return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    }
  };
  mutable std::shared_mutex mu_;
  std::deque<InternedName> storage_;
  std::unordered_map<Key, const InternedName*, KeyHash> index_;
};

StringPool& Strings() {
  static StringPool pool;
  return pool;
}

NamePool& Names() {
  static NamePool pool;
  return pool;
}

}  // namespace

const std::string* InternString(std::string_view s) {
  return Strings().Intern(s);
}

const InternedName* InternName(std::string_view ns, std::string_view local) {
  return Names().Intern(InternString(ns), InternString(local));
}

InternPoolStats GetInternStats() {
  InternPoolStats stats;
  stats.hits = g_hits.load(std::memory_order_relaxed);
  stats.misses = g_misses.load(std::memory_order_relaxed);
  stats.strings = Strings().size();
  stats.names = Names().size();
  return stats;
}

}  // namespace xqib::xml
