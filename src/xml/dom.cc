#include "xml/dom.h"

#include <algorithm>
#include <cassert>

namespace xqib::xml {

namespace {

// Attached-tree order keys live in [1, kAttachedKeyLimit); detached
// fragments above, partitioned by tree id (tree_id << 32).
constexpr uint64_t kAttachedKeyLimit = 1ull << 32;

// Last node of `n`'s subtree in preorder (attributes precede children).
const Node* PreorderLast(const Node* n) {
  while (true) {
    if (!n->children().empty()) {
      n = n->children().back();
      continue;
    }
    if (!n->attributes().empty()) return n->attributes().back();
    return n;
  }
}

// First node after `x`'s entire subtree in preorder, or nullptr at the
// end of `x`'s tree.
const Node* PreorderSuccessor(const Node* x) {
  while (x->parent() != nullptr) {
    const Node* p = x->parent();
    if (x->kind() == NodeKind::kAttribute) {
      const auto& attrs = p->attributes();
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (attrs[i] == x) {
          if (i + 1 < attrs.size()) return attrs[i + 1];
          break;
        }
      }
      if (!p->children().empty()) return p->children().front();
    } else {
      const auto& kids = p->children();
      for (size_t i = 0; i < kids.size(); ++i) {
        if (kids[i] == x) {
          if (i + 1 < kids.size()) return kids[i + 1];
          break;
        }
      }
    }
    x = p;
  }
  return nullptr;
}

}  // namespace

// ------------------------------------------------------------- DomDelta ---

void DomDelta::Clear() {
  element_ops.clear();
  touched.clear();
  whole_tree = false;
  mutations = 0;
  op_entries = 0;
}

void DomDelta::Touch(const InternedName* token) {
  if (whole_tree) return;
  if (touched.size() >= kTrackingCap) {
    Overflow();
    return;
  }
  touched.insert(token);
}

void DomDelta::ElementOp(Node* node, const InternedName* token,
                         bool inserted) {
  if (whole_tree) return;
  if (op_entries >= kTrackingCap) {
    Overflow();
    return;
  }
  if (element_ops[token].insert_or_assign(node, inserted).second) {
    ++op_entries;
  }
}

void DomDelta::Overflow() {
  whole_tree = true;
  element_ops.clear();
  touched.clear();
  op_entries = 0;
}

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument: return "document";
    case NodeKind::kElement: return "element";
    case NodeKind::kAttribute: return "attribute";
    case NodeKind::kText: return "text";
    case NodeKind::kComment: return "comment";
    case NodeKind::kProcessingInstruction: return "processing-instruction";
  }
  return "unknown";
}

// ---------------------------------------------------------------- Node ---

Node* Node::Root() {
  Node* n = this;
  while (true) {
    Node* up = n->parent_;
    if (up == nullptr) return n;
    n = up;
  }
}

namespace {

// Total length of the text descendants of `node` (string-value size for
// elements/documents), so StringValue can reserve once.
size_t TextLength(const Node* node) {
  size_t total = 0;
  for (const Node* c : node->children()) {
    if (c->is_text()) {
      total += c->value().size();
    } else if (c->is_element()) {
      total += TextLength(c);
    }
  }
  return total;
}

}  // namespace

void Node::AppendStringValue(std::string* out) const {
  switch (kind_) {
    case NodeKind::kText:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
    case NodeKind::kAttribute:
      out->append(value_);
      return;
    case NodeKind::kElement:
    case NodeKind::kDocument:
      for (const Node* c : children_) {
        if (c->kind_ == NodeKind::kText) {
          out->append(c->value_);
        } else if (c->kind_ == NodeKind::kElement) {
          c->AppendStringValue(out);
        }
      }
      return;
  }
}

std::string Node::StringValue() const {
  if (kind_ == NodeKind::kElement || kind_ == NodeKind::kDocument) {
    std::string out;
    out.reserve(TextLength(this));
    AppendStringValue(&out);
    return out;
  }
  return value_;
}

Node* Node::FindAttribute(std::string_view ns, std::string_view local) const {
  for (Node* a : attributes_) {
    if (a->name_.local() == local && a->name_.ns() == ns) return a;
  }
  return nullptr;
}

std::string Node::GetAttributeValue(std::string_view local) const {
  const Node* a = FindAttribute(local);
  return a ? a->value() : std::string();
}

void Node::CheckAdoptable(const Node* child) const {
  (void)child;
  assert(child != nullptr);
  assert(child->document_ == document_ &&
         "node belongs to a different document; use ImportCopy");
  assert(child->parent_ == nullptr && "node is already attached");
  assert(child->kind_ != NodeKind::kAttribute &&
         "attributes attach via AttachAttribute");
  assert(child->kind_ != NodeKind::kDocument);
}

void Node::AppendChild(Node* child) {
  CheckAdoptable(child);
  child->parent_ = this;
  children_.push_back(child);
  document_->RecordSubtree(child, /*inserted=*/true);
  if (!document_->TryAssignGapKeys(this, child, children_.size() - 1)) {
    document_->InvalidateOrder();
  }
  document_->NotifyMutation(this);
}

void Node::InsertBefore(Node* child, Node* ref) {
  if (ref == nullptr) {
    AppendChild(child);
    return;
  }
  CheckAdoptable(child);
  size_t idx = ChildIndex(ref);
  assert(idx != static_cast<size_t>(-1) && "ref is not a child");
  child->parent_ = this;
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(idx), child);
  document_->RecordSubtree(child, /*inserted=*/true);
  if (!document_->TryAssignGapKeys(this, child, idx)) {
    document_->InvalidateOrder();
  }
  document_->NotifyMutation(this);
}

void Node::InsertAfter(Node* child, Node* ref) {
  if (ref == nullptr) {
    AppendChild(child);
    return;
  }
  size_t idx = ChildIndex(ref);
  assert(idx != static_cast<size_t>(-1) && "ref is not a child");
  if (idx + 1 >= children_.size()) {
    AppendChild(child);
  } else {
    InsertBefore(child, children_[idx + 1]);
  }
}

void Node::InsertFirst(Node* child) {
  InsertBefore(child, children_.empty() ? nullptr : children_.front());
}

void Node::RemoveChild(Node* child) {
  size_t idx = ChildIndex(child);
  assert(idx != static_cast<size_t>(-1) && "not a child of this node");
  document_->RecordSubtree(child, /*inserted=*/false);  // while still attached
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(idx));
  child->parent_ = nullptr;
  child->tree_id_ = document_->next_tree_id_++;
  // Re-keying the detached fragment eagerly (instead of invalidating the
  // whole order) leaves every attached key valid: the vacated key range
  // simply has no occupants, and the fragment's keys move to its fresh
  // tree-id region so they can never collide with a later gap insert.
  document_->AssignDetachedKeys(child);
  document_->NotifyMutation(this);
}

void Node::Detach() {
  if (parent_ == nullptr) return;
  if (kind_ == NodeKind::kAttribute) {
    Node* owner = parent_;
    for (size_t i = 0; i < owner->attributes_.size(); ++i) {
      if (owner->attributes_[i] == this) {
        owner->attributes_.erase(owner->attributes_.begin() +
                                 static_cast<ptrdiff_t>(i));
        break;
      }
    }
    parent_ = nullptr;
    document_->RecordNameTouch(owner, name_.token());
    tree_id_ = document_->next_tree_id_++;
    document_->AssignDetachedKeys(this);
    document_->NotifyMutation(owner);
  } else {
    parent_->RemoveChild(this);
  }
}

Node* Node::SetAttribute(const QName& name, std::string value) {
  assert(kind_ == NodeKind::kElement);
  if (Node* existing = FindAttribute(name.ns(), name.local())) {
    existing->value_ = std::move(value);
    document_->RecordNameTouch(this, name.token());
    document_->NotifyMutation(this);
    return existing;
  }
  Node* attr = document_->CreateAttribute(name, std::move(value));
  attr->parent_ = this;
  attributes_.push_back(attr);
  document_->RecordNameTouch(this, name.token());
  if (!document_->TryAssignGapKeys(this, attr, attributes_.size() - 1)) {
    document_->InvalidateOrder();
  }
  document_->NotifyMutation(this);
  return attr;
}

void Node::RemoveAttribute(std::string_view ns, std::string_view local) {
  if (Node* attr = FindAttribute(ns, local)) attr->Detach();
}

void Node::AttachAttribute(Node* attr) {
  assert(kind_ == NodeKind::kElement);
  assert(attr->kind_ == NodeKind::kAttribute && attr->parent_ == nullptr);
  assert(attr->document_ == document_);
  // Replace any attribute with the same expanded name.
  RemoveAttribute(attr->name_.ns(), attr->name_.local());
  attr->parent_ = this;
  attributes_.push_back(attr);
  document_->RecordNameTouch(this, attr->name_.token());
  if (!document_->TryAssignGapKeys(this, attr, attributes_.size() - 1)) {
    document_->InvalidateOrder();
  }
  document_->NotifyMutation(this);
}

void Node::SetValue(std::string value) {
  if (kind_ == NodeKind::kElement || kind_ == NodeKind::kDocument) {
    for (Node* c : children_) {
      document_->RecordSubtree(c, /*inserted=*/false);  // while still attached
      c->parent_ = nullptr;
      c->tree_id_ = document_->next_tree_id_++;
      document_->AssignDetachedKeys(c);
    }
    children_.clear();
    if (!value.empty()) {
      Node* text = document_->CreateText(std::move(value));
      text->parent_ = this;
      children_.push_back(text);
      if (!document_->TryAssignGapKeys(this, text, 0)) {
        document_->InvalidateOrder();
      }
    }
  } else {
    value_ = std::move(value);
  }
  document_->NotifyMutation(this);
}

void Node::Rename(const QName& new_name) {
  const InternedName* old_name = name_.token();
  name_ = new_name;
  // Both the vacated and the adopted name's node sets change; the
  // site-names walk in NotifyMutation covers the new name (it reads the
  // node's current name), the old name's touch and both index-bucket
  // membership ops need explicit recording.
  document_->RecordRenameOps(this, old_name);
  document_->NotifyMutation(this);
}

size_t Node::ChildIndex(const Node* child) const {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i] == child) return i;
  }
  return static_cast<size_t>(-1);
}

uint64_t Node::OrderKey() const {
  const uint64_t doc_version = document_->order_version();
  if (order_version_.load(std::memory_order_acquire) != doc_version) {
    // Attached nodes get keys 1..n from one DFS of the document tree;
    // detached subtrees get keys lazily, offset by their tree id, so a
    // session that detaches many fragments (every replaced text node)
    // never pays for them again. Racing readers (pool workers comparing
    // document order concurrently) serialize on the rebuild; the losers
    // re-check under the lock and find their key already published.
    std::lock_guard<std::mutex> lk(document_->lazy_mu_);
    if (order_version_.load(std::memory_order_relaxed) != doc_version) {
      Node* root = const_cast<Node*>(this)->Root();
      if (root == document_->root()) {
        document_->RecomputeOrder();
      } else {
        document_->AssignDetachedKeys(root);
      }
    }
  }
  return order_key_.load(std::memory_order_relaxed);
}

int Node::CompareDocumentOrder(const Node* other) const {
  if (this == other) return 0;
  uint64_t a = OrderKey();
  uint64_t b = other->OrderKey();
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

// ------------------------------------------------------------ Document ---

Document::Document() {
  root_ = NewNode(NodeKind::kDocument);
}

Node* Document::NewNode(NodeKind kind) {
  Node* n;
  {
    // Staged updating listeners construct detached update content from
    // pool workers; the deque push must not race them or the id-cache
    // scan in GetElementById.
    std::lock_guard<std::mutex> lk(alloc_mu_);
    nodes_.push_back(std::unique_ptr<Node>(new Node(this, kind)));
    n = nodes_.back().get();
  }
  n->tree_id_ = next_tree_id_++;
  // No order invalidation: the fresh node starts with a stale key version
  // and is keyed lazily (detached region) or on attach (gap assignment).
  // Invalidating here would poison the attached keys on every allocation
  // and defeat gap assignment during update-content construction.
  return n;
}

Node* Document::DocumentElement() const {
  for (Node* c : root_->children()) {
    if (c->is_element()) return c;
  }
  return nullptr;
}

Node* Document::CreateElement(const QName& name) {
  Node* n = NewNode(NodeKind::kElement);
  n->name_ = name;
  return n;
}

Node* Document::CreateAttribute(const QName& name, std::string value) {
  Node* n = NewNode(NodeKind::kAttribute);
  n->name_ = name;
  n->value_ = std::move(value);
  return n;
}

Node* Document::CreateText(std::string value) {
  Node* n = NewNode(NodeKind::kText);
  n->value_ = std::move(value);
  return n;
}

Node* Document::CreateComment(std::string value) {
  Node* n = NewNode(NodeKind::kComment);
  n->value_ = std::move(value);
  return n;
}

Node* Document::CreateProcessingInstruction(std::string target,
                                            std::string value) {
  Node* n = NewNode(NodeKind::kProcessingInstruction);
  n->name_ = QName(std::move(target));
  n->value_ = std::move(value);
  return n;
}

Node* Document::ImportCopy(const Node* src) {
  switch (src->kind()) {
    case NodeKind::kElement: {
      Node* copy = CreateElement(src->name());
      for (const Node* a : src->attributes()) {
        copy->SetAttribute(a->name(), a->value());
      }
      for (const Node* c : src->children()) {
        Node* child_copy = ImportCopy(c);
        child_copy->parent_ = copy;
        copy->children_.push_back(child_copy);
      }
      return copy;
    }
    case NodeKind::kAttribute:
      return CreateAttribute(src->name(), src->value());
    case NodeKind::kText:
      return CreateText(src->value());
    case NodeKind::kComment:
      return CreateComment(src->value());
    case NodeKind::kProcessingInstruction:
      return CreateProcessingInstruction(src->name().local(), src->value());
    case NodeKind::kDocument: {
      // Copying a document node yields a copy of its children under a new
      // element-less fragment: we model it as a copy of the document
      // element, which is what the update primitives need in practice.
      Node* elem = const_cast<Node*>(src)->document()->DocumentElement();
      assert(elem != nullptr);
      return ImportCopy(elem);
    }
  }
  return nullptr;
}

Node* Document::GetElementById(std::string_view id) const {
  // Ids can change through arbitrary attribute mutation, so the cache is
  // dropped wholesale on every mutation and rebuilt on the next lookup —
  // lookup bursts between mutations (event handlers resolving targets)
  // are O(1), and correctness never depends on tracking which mutation
  // touched which id. The first reader after a mutation rebuilds under
  // lazy_mu_ and publishes with a release store; validated readers skip
  // the lock entirely (mutation cannot interleave while workers read —
  // the loop thread, the only mutator, is barriered).
  const uint64_t mv = mutation_version();
  if (id_cache_version_.load(std::memory_order_acquire) != mv) {
    std::lock_guard<std::mutex> lk(lazy_mu_);
    if (id_cache_version_.load(std::memory_order_relaxed) != mv) {
      id_cache_.clear();
      // The scan walks the whole node pool, which concurrent staged
      // updaters may be growing; hold alloc_mu_ (always after lazy_mu_).
      std::lock_guard<std::mutex> alk(alloc_mu_);
      for (const auto& n : nodes_) {
        if (n->kind() == NodeKind::kElement && n->parent() != nullptr) {
          const Node* a = n->FindAttribute("id");
          if (a != nullptr && !a->value().empty() && n->Root() == root_) {
            id_cache_.emplace(a->value(), n.get());  // first wins
          }
        }
      }
      id_cache_version_.store(mv, std::memory_order_release);
    }
  }
  auto it = id_cache_.find(std::string(id));
  return it == id_cache_.end() ? nullptr : it->second;
}

const std::vector<Node*>& Document::ElementsByName(const QName& name) const {
  // Same wholesale scheme as the id cache: renames, inserts, detaches and
  // value edits all bump mutation_version_, so a stale index can never be
  // observed. Rebuilding is one DFS of the attached tree; lookup bursts
  // between mutations (the plug-in's per-event listener paths) are O(1)
  // plus the size of the answer.
  static const std::vector<Node*> kNoNodes;
  const uint64_t mv = mutation_version();
  if (name_index_version_.load(std::memory_order_acquire) != mv) {
    std::lock_guard<std::mutex> lk(lazy_mu_);
    if (name_index_version_.load(std::memory_order_relaxed) != mv) {
      // Delta splice: when tracking is on and a previous build exists,
      // apply the accumulated membership delta to the touched buckets in
      // place — the whole index becomes exact again without a rebuild.
      const bool spliced =
          delta_tracking_ &&
          name_index_version_.load(std::memory_order_relaxed) != 0 &&
          TrySpliceNameIndex();
      if (!spliced) {
        // Fine-grained survival: the index is globally stale, but if this
        // name's counter has not moved since the last rebuild, its bucket
        // is still exact — membership, attachment, and relative document
        // order of `name` elements cannot change without a mutation that
        // bumps the name (ancestor moves bump every subtree name). Serve
        // the bucket without rebuilding and leave the index stale for
        // other names to check the same way.
        if (fine_grained_ && index_names_snapshot_) {
          auto snap = index_name_versions_.find(name.token());
          const uint64_t recorded =
              snap == index_name_versions_.end() ? 0 : snap->second;
          if (recorded == name_version(name.token())) {
            ++name_index_fine_hits_;
            auto hit = name_index_.find(name.token());
            return hit == name_index_.end() ? kNoNodes : hit->second;
          }
        }
        name_index_.clear();
        std::function<void(const Node*)> visit = [&](const Node* n) {
          for (const Node* c : n->children_) {
            if (c->kind_ == NodeKind::kElement) {
              name_index_[c->name_.token()].push_back(const_cast<Node*>(c));
              visit(c);
            }
          }
        };
        visit(root_);
        ++name_index_builds_;
        // The rebuild observed the current tree; the pending delta is
        // subsumed by it.
        pending_index_delta_.Clear();
        if (fine_grained_) {
          index_name_versions_ = name_versions_;
          index_names_snapshot_ = true;
        }
      }
      name_index_version_.store(mv, std::memory_order_release);
    }
  }
  auto it = name_index_.find(name.token());
  return it == name_index_.end() ? kNoNodes : it->second;
}

bool Document::TrySpliceNameIndex() const {
  const DomDelta& d = pending_index_delta_;
  if (d.whole_tree) return false;
  auto order_of = [](const Node* n) {
    return n->order_key_.load(std::memory_order_relaxed);
  };
  if (!d.element_ops.empty()) {
    // Insertions are merged by document-order key, so every key in every
    // touched bucket must be current. The global check suffices: every
    // attach either gap-assigned keys at the current order version or
    // invalidated it (see TryAssignGapKeys), so computed_version_ ==
    // order_version_ implies every attached key is exact. Removal-only
    // deltas need no keys and always proceed.
    bool have_insertions = false;
    for (const auto& [token, ops] : d.element_ops) {
      (void)token;
      for (const auto& [node, inserted] : ops) {
        if (inserted && AttachedToRoot(node)) {
          have_insertions = true;
          break;
        }
      }
      if (have_insertions) break;
    }
    if (have_insertions &&
        computed_version_ != order_version_.load(std::memory_order_relaxed)) {
      // An attach failed to gap-assign since the last recompute. Refresh
      // the keys here (lazy_mu_ is held by our caller, the same lock
      // discipline as the OrderKey path) — one DFS, after which the
      // splice and every later gap assignment work off current keys.
      // Still cheaper than rebuilding: the recompute is one walk for ALL
      // names, a rebuild walks once per stale lookup window.
      RecomputeOrder();
    }
    for (const auto& [token, ops] : d.element_ops) {
      std::vector<Node*>& bucket = name_index_[token];
      // Drop every op node first (removed, moved, or about to be
      // re-inserted at its new position).
      bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                  [&](Node* n) { return ops.count(n) != 0; }),
                   bucket.end());
      std::vector<Node*> add;
      for (const auto& [node, inserted] : ops) {
        // Guard on the node's CURRENT name: a node renamed twice in one
        // window carries an insert op under an intermediate name it no
        // longer bears.
        if (inserted && node->name_.token() == token && AttachedToRoot(node)) {
          add.push_back(node);
        }
      }
      if (!add.empty()) {
        std::sort(add.begin(), add.end(), [&](Node* a, Node* b) {
          return order_of(a) < order_of(b);
        });
        const auto mid = static_cast<ptrdiff_t>(bucket.size());
        bucket.insert(bucket.end(), add.begin(), add.end());
        std::inplace_merge(bucket.begin(), bucket.begin() + mid, bucket.end(),
                           [&](Node* a, Node* b) {
                             return order_of(a) < order_of(b);
                           });
      }
      if (bucket.empty()) name_index_.erase(token);
      ++index_splices_;
    }
  }
  // Buckets are exact again under the current counters: refresh the
  // snapshot for the touched names so per-name survival keeps working.
  if (fine_grained_ && index_names_snapshot_) {
    for (const InternedName* token : d.touched) {
      index_name_versions_[token] = name_version(token);
    }
  }
  pending_index_delta_.Clear();
  ++bucket_rebuilds_avoided_;
  return true;
}

void Document::NotifyMutation(Node* target) {
  // One shared recording gate for every mutation path: the per-name
  // counters and every delta sink observe exactly the same attached
  // mutations (the site's ancestor-chain names here; subtree names and
  // membership ops at the attach/detach sites).
  if (RecordingActive() && AttachedToRoot(target)) {
    RecordSiteNames(target);
    CountDeltaMutation();
  }
  mutation_version_.fetch_add(1, std::memory_order_release);
  for (const MutationHook& hook : mutation_hooks_) hook(target);
}

void Document::set_delta_tracking(bool on) {
  if (on == delta_tracking_) return;
  delta_tracking_ = on;
  // Mutations made under the previous mode were not (or were partially)
  // recorded; poison both windows so consumers fall back to one full
  // rebuild / full dispatch pass before incremental deltas are trusted.
  pending_index_delta_.Clear();
  pending_index_delta_.whole_tree = true;
  pending_dispatch_delta_.Clear();
  pending_dispatch_delta_.whole_tree = true;
}

void Document::TakeDispatchDelta(DomDelta* out) {
  *out = std::move(pending_dispatch_delta_);
  pending_dispatch_delta_.Clear();
}

void Document::set_fine_grained_versions(bool on) {
  if (on == fine_grained_) return;
  fine_grained_ = on;
  // Counters accumulated under the previous mode miss every mutation
  // made while tracking was off; drop them and force the next lookup
  // through a full rebuild before per-name survival is trusted again.
  name_versions_.clear();
  index_name_versions_.clear();
  index_names_snapshot_ = false;
}

bool Document::AttachedToRoot(const Node* n) const {
  while (n != nullptr) {
    if (n == root_) return true;
    n = n->parent_;
  }
  return false;
}

void Document::TouchName(const InternedName* token) {
  if (fine_grained_) ++name_versions_[token];
  if (delta_tracking_) {
    pending_index_delta_.Touch(token);
    pending_dispatch_delta_.Touch(token);
  }
  if (capture_ != nullptr) capture_->Touch(token);
}

void Document::RecordElementOp(const Node* node, const InternedName* token,
                               bool inserted) {
  Node* n = const_cast<Node*>(node);
  if (delta_tracking_) {
    pending_index_delta_.ElementOp(n, token, inserted);
    pending_dispatch_delta_.ElementOp(n, token, inserted);
  }
  if (capture_ != nullptr) capture_->ElementOp(n, token, inserted);
}

void Document::RecordSiteNames(const Node* site) {
  for (const Node* n = site; n != nullptr; n = n->parent_) {
    if (n->kind_ == NodeKind::kElement || n->kind_ == NodeKind::kAttribute) {
      TouchName(n->name_.token());
    }
  }
}

void Document::RecordSubtree(const Node* subtree, bool inserted) {
  if (!RecordingActive()) return;
  if (!AttachedToRoot(subtree)) return;
  std::function<void(const Node*)> visit = [&](const Node* n) {
    if (n->kind_ == NodeKind::kElement) {
      TouchName(n->name_.token());
      RecordElementOp(n, n->name_.token(), inserted);
    } else if (n->kind_ == NodeKind::kAttribute) {
      TouchName(n->name_.token());
    }
    for (const Node* a : n->attributes_) visit(a);
    for (const Node* c : n->children_) visit(c);
  };
  visit(subtree);
}

void Document::RecordNameTouch(const Node* site, const InternedName* token) {
  if (!RecordingActive()) return;
  if (!AttachedToRoot(site)) return;
  TouchName(token);
}

void Document::RecordRenameOps(const Node* node, const InternedName* old_token) {
  if (!RecordingActive()) return;
  if (!AttachedToRoot(node)) return;
  TouchName(old_token);
  if (node->kind_ == NodeKind::kElement) {
    RecordElementOp(node, old_token, /*inserted=*/false);
    RecordElementOp(node, node->name_.token(), /*inserted=*/true);
  }
}

void Document::CountDeltaMutation() {
  if (delta_tracking_) {
    pending_index_delta_.CountMutation();
    pending_dispatch_delta_.CountMutation();
  }
  if (capture_ != nullptr) capture_->CountMutation();
}

// Assigns stride-spaced keys starting at `next` across one subtree.
void Document::AssignKeysDfs(const Node* root, uint64_t next, uint64_t stride,
                             uint64_t version) {
  std::function<void(const Node*)> visit = [&](const Node* n) {
    // Key first, then version with release: a reader that acquire-loads
    // a current version is guaranteed to see the matching key.
    n->order_key_.store(next, std::memory_order_relaxed);
    n->order_version_.store(version, std::memory_order_release);
    next += stride;
    for (const Node* a : n->attributes_) {
      a->order_key_.store(next, std::memory_order_relaxed);
      a->order_version_.store(version, std::memory_order_release);
      next += stride;
    }
    for (const Node* c : n->children_) visit(c);
  };
  visit(root);
}

void Document::RecomputeOrder() const {
  // Attached nodes occupy stride-spaced keys in [stride, 2^32); detached
  // fragments live above, partitioned by tree id (AssignDetachedKeys).
  // Mixed comparisons stay stable: attached before detached, detached
  // ordered by creation. The stride leaves gaps so attaches can key new
  // subtrees between existing neighbours (TryAssignGapKeys) without
  // touching any other key — which is what keeps the order globally
  // valid across churn and lets the name index splice by key.
  uint64_t pool = 0;
  {
    // nodes_ may be growing under concurrent staged-updater allocation;
    // lock order lazy_mu_ (held by our callers) then alloc_mu_ matches
    // GetElementById.
    std::lock_guard<std::mutex> lk(alloc_mu_);
    pool = nodes_.size();
  }
  const uint64_t stride =
      std::max<uint64_t>(1, kAttachedKeyLimit / (pool * 2 + 2));
  AssignKeysDfs(root_, stride, stride, order_version_);
  computed_version_ = order_version_;
  ++order_rebuilds_;
}

void Document::AssignDetachedKeys(const Node* detached_root) const {
  AssignKeysDfs(detached_root, detached_root->tree_id_ << 32, /*stride=*/1,
                order_version_);
}

bool Document::TryAssignGapKeys(const Node* parent, const Node* node,
                                size_t index) {
  const uint64_t cur = order_version_.load(std::memory_order_relaxed);
  auto current_key = [cur](const Node* n, uint64_t* out) {
    if (n->order_version_.load(std::memory_order_relaxed) != cur) return false;
    *out = n->order_key_.load(std::memory_order_relaxed);
    return true;
  };
  // A stale parent in a detached fragment means the whole fragment is
  // unkeyed at the current version: the lazy path will enumerate it
  // (node included) on first read, and no published key exists that the
  // new node could contradict — nothing to do. A stale parent in the
  // attached tree means we cannot key the node consistently; the caller
  // must invalidate.
  uint64_t parent_key = 0;
  if (!current_key(parent, &parent_key)) return !AttachedToRoot(parent);

  const bool is_attr = node->kind_ == NodeKind::kAttribute;

  // Preorder predecessor among the already-keyed nodes (`node` is
  // already linked at `index`, so neighbours read around it).
  const Node* pred;
  if (is_attr) {
    pred = index == 0 ? parent : parent->attributes_[index - 1];
  } else if (index > 0) {
    pred = PreorderLast(parent->children_[index - 1]);
  } else if (!parent->attributes_.empty()) {
    pred = parent->attributes_.back();
  } else {
    pred = parent;
  }
  uint64_t pred_key = 0;
  if (!current_key(pred, &pred_key)) return false;

  // Preorder successor, or the end of the key region when there is none
  // (attached limit / the next detached tree-id region).
  const Node* succ = nullptr;
  if (is_attr) {
    if (index + 1 < parent->attributes_.size()) {
      succ = parent->attributes_[index + 1];
    } else if (!parent->children_.empty()) {
      succ = parent->children_.front();
    } else {
      succ = PreorderSuccessor(parent);
    }
  } else if (index + 1 < parent->children_.size()) {
    succ = parent->children_[index + 1];
  } else {
    succ = PreorderSuccessor(parent);
  }
  uint64_t succ_key = 0;
  if (succ == nullptr) {
    const Node* root = parent;
    while (root->parent_ != nullptr) root = root->parent_;
    succ_key = root == root_ ? kAttachedKeyLimit : (root->tree_id_ + 1) << 32;
  } else if (!current_key(succ, &succ_key)) {
    return false;
  }

  // Preorder slots the new subtree needs (node + attributes +
  // descendants).
  uint64_t slots = 0;
  std::function<void(const Node*)> count = [&](const Node* n) {
    slots += 1 + n->attributes_.size();
    for (const Node* c : n->children_) count(c);
  };
  count(node);

  if (succ_key <= pred_key || succ_key - pred_key <= slots) return false;
  const uint64_t step = (succ_key - pred_key) / (slots + 1);
  AssignKeysDfs(node, pred_key + step, step, cur);
  return true;
}

void VisitSubtree(Node* node, const std::function<void(Node*)>& fn) {
  fn(node);
  for (Node* c : node->children()) VisitSubtree(c, fn);
}

}  // namespace xqib::xml
