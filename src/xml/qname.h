// Expanded qualified names (namespace URI + local name, plus the lexical
// prefix kept for serialization round-trips).
//
// A QName is an interned token: construction resolves (ns, local) against
// the process-wide pool in xml/interning.h, so copies are two pointers,
// equality is one pointer compare, and hashing a QName hashes an address.
// The prefix is interned separately — it is not part of the identity.

#ifndef XQIB_XML_QNAME_H_
#define XQIB_XML_QNAME_H_

#include <string>
#include <string_view>

#include "xml/interning.h"

namespace xqib::xml {

// Well-known namespace URIs.
inline constexpr std::string_view kXmlNamespace =
    "http://www.w3.org/XML/1998/namespace";
inline constexpr std::string_view kXmlnsNamespace =
    "http://www.w3.org/2000/xmlns/";
inline constexpr std::string_view kFnNamespace =
    "http://www.w3.org/2005/xpath-functions";
inline constexpr std::string_view kXsNamespace =
    "http://www.w3.org/2001/XMLSchema";
// The browser-binding namespace proposed in Section 4.2 of the paper.
inline constexpr std::string_view kBrowserNamespace =
    "http://www.example.com/browser";
// Our simulated-HTTP client functions (REST support, Section 3.4).
inline constexpr std::string_view kHttpNamespace =
    "http://www.example.com/http";

class QName {
 public:
  QName() : name_(EmptyName()), prefix_(EmptyString()) {}
  explicit QName(std::string_view local_name)
      : name_(InternName({}, local_name)), prefix_(EmptyString()) {}
  QName(std::string_view ns_uri, std::string_view local_name)
      : name_(InternName(ns_uri, local_name)), prefix_(EmptyString()) {}
  QName(std::string_view ns_uri, std::string_view pfx,
        std::string_view local_name)
      : name_(InternName(ns_uri, local_name)), prefix_(InternString(pfx)) {}

  // Namespace URI; empty means "no namespace".
  const std::string& ns() const { return *name_->ns; }
  // Lexical prefix; not part of the identity.
  const std::string& prefix() const { return *prefix_; }
  const std::string& local() const { return *name_->local; }

  // Identity token: equal QNames share one InternedName per process, so
  // the pointer doubles as a hash/map key.
  const InternedName* token() const { return name_; }
  const std::string* ns_token() const { return name_->ns; }
  const std::string* local_token() const { return name_->local; }

  // Identity per XDM: namespace URI + local name only.
  friend bool operator==(const QName& a, const QName& b) {
    return a.name_ == b.name_;
  }
  friend bool operator!=(const QName& a, const QName& b) { return !(a == b); }

  // The lexical form: "prefix:local" or "local".
  std::string Lexical() const {
    return prefix().empty() ? local() : prefix() + ":" + local();
  }

  // Clark notation "{ns}local", used in diagnostics and map keys.
  std::string Clark() const {
    return ns().empty() ? local() : "{" + ns() + "}" + local();
  }

 private:
  static const std::string* EmptyString() {
    static const std::string* empty = InternString({});
    return empty;
  }
  static const InternedName* EmptyName() {
    static const InternedName* empty = InternName({}, {});
    return empty;
  }

  const InternedName* name_;
  const std::string* prefix_;
};

}  // namespace xqib::xml

#endif  // XQIB_XML_QNAME_H_
