// Expanded qualified names (namespace URI + local name, plus the lexical
// prefix kept for serialization round-trips).

#ifndef XQIB_XML_QNAME_H_
#define XQIB_XML_QNAME_H_

#include <string>
#include <string_view>

namespace xqib::xml {

// Well-known namespace URIs.
inline constexpr std::string_view kXmlNamespace =
    "http://www.w3.org/XML/1998/namespace";
inline constexpr std::string_view kXmlnsNamespace =
    "http://www.w3.org/2000/xmlns/";
inline constexpr std::string_view kFnNamespace =
    "http://www.w3.org/2005/xpath-functions";
inline constexpr std::string_view kXsNamespace =
    "http://www.w3.org/2001/XMLSchema";
// The browser-binding namespace proposed in Section 4.2 of the paper.
inline constexpr std::string_view kBrowserNamespace =
    "http://www.example.com/browser";
// Our simulated-HTTP client functions (REST support, Section 3.4).
inline constexpr std::string_view kHttpNamespace =
    "http://www.example.com/http";

struct QName {
  std::string ns;      // namespace URI; empty means "no namespace"
  std::string prefix;  // lexical prefix; not part of the identity
  std::string local;

  QName() = default;
  explicit QName(std::string local_name) : local(std::move(local_name)) {}
  QName(std::string ns_uri, std::string local_name)
      : ns(std::move(ns_uri)), local(std::move(local_name)) {}
  QName(std::string ns_uri, std::string pfx, std::string local_name)
      : ns(std::move(ns_uri)),
        prefix(std::move(pfx)),
        local(std::move(local_name)) {}

  // Identity per XDM: namespace URI + local name only.
  friend bool operator==(const QName& a, const QName& b) {
    return a.ns == b.ns && a.local == b.local;
  }
  friend bool operator!=(const QName& a, const QName& b) { return !(a == b); }

  // The lexical form: "prefix:local" or "local".
  std::string Lexical() const {
    return prefix.empty() ? local : prefix + ":" + local;
  }

  // Clark notation "{ns}local", used in diagnostics and map keys.
  std::string Clark() const {
    return ns.empty() ? local : "{" + ns + "}" + local;
  }
};

}  // namespace xqib::xml

#endif  // XQIB_XML_QNAME_H_
