#include "xml/serializer.h"

#include <sstream>

#include "base/strings.h"

namespace xqib::xml {

namespace {

class Serializer {
 public:
  explicit Serializer(const SerializeOptions& options) : options_(options) {}

  void Write(const Node* node, int depth) {
    switch (node->kind()) {
      case NodeKind::kDocument:
        for (const Node* c : node->children()) Write(c, depth);
        break;
      case NodeKind::kElement:
        WriteElement(node, depth);
        break;
      case NodeKind::kText:
        out_ << (verbatim_ ? std::string(node->value())
                           : EscapeText(node->value()));
        break;
      case NodeKind::kComment:
        out_ << "<!--" << node->value() << "-->";
        break;
      case NodeKind::kProcessingInstruction:
        out_ << "<?" << node->name().local() << " " << node->value() << "?>";
        break;
      case NodeKind::kAttribute:
        // A bare attribute serializes as name="value".
        out_ << node->name().Lexical() << "=\""
             << EscapeAttribute(node->value()) << "\"";
        break;
    }
  }

  std::string TakeOutput() { return out_.str(); }

 private:
  void Indent(int depth) {
    if (!options_.indent) return;
    out_ << "\n";
    for (int i = 0; i < depth; ++i) out_ << "  ";
  }

  void WriteElement(const Node* node, int depth) {
    if (options_.indent && depth > 0) Indent(depth);
    out_ << "<" << node->name().Lexical();
    // Emit a namespace declaration when the element's namespace is not
    // inherited lexically; a pragmatic rule that keeps round-trips sane.
    if (!node->name().ns().empty() && NeedsNsDecl(node)) {
      if (node->name().prefix().empty()) {
        out_ << " xmlns=\"" << EscapeAttribute(node->name().ns()) << "\"";
      } else {
        out_ << " xmlns:" << node->name().prefix() << "=\""
             << EscapeAttribute(node->name().ns()) << "\"";
      }
    }
    for (const Node* a : node->attributes()) {
      out_ << " " << a->name().Lexical() << "=\""
           << EscapeAttribute(a->value()) << "\"";
    }
    if (node->children().empty()) {
      out_ << "/>";
      return;
    }
    out_ << ">";
    bool was_verbatim = verbatim_;
    if (options_.html_script_mode &&
        (AsciiEqualsIgnoreCase(node->name().local(), "script") ||
         AsciiEqualsIgnoreCase(node->name().local(), "style"))) {
      verbatim_ = true;
    }
    bool element_children = false;
    for (const Node* c : node->children()) {
      if (c->is_element()) element_children = true;
      Write(c, depth + 1);
    }
    verbatim_ = was_verbatim;
    if (options_.indent && element_children) Indent(depth);
    out_ << "</" << node->name().Lexical() << ">";
  }

  bool NeedsNsDecl(const Node* node) const {
    const Node* p = node->parent();
    while (p != nullptr && !p->is_element()) p = p->parent();
    if (p == nullptr) return true;
    // Same prefix & ns on the nearest element ancestor => inherited.
    return !(p->name().ns() == node->name().ns() &&
             p->name().prefix() == node->name().prefix());
  }

  const SerializeOptions& options_;
  std::ostringstream out_;
  bool verbatim_ = false;
};

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Serialize(const Node* node, const SerializeOptions& options) {
  Serializer s(options);
  s.Write(node, 0);
  return s.TakeOutput();
}

std::string Serialize(const Node* node) {
  return Serialize(node, SerializeOptions());
}

}  // namespace xqib::xml
