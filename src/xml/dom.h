// A mutable DOM, the substrate the XQIB plug-in wraps with an XDM store
// (paper Section 5.2, Figure 1). Nodes are owned by their Document and
// referenced by raw pointers everywhere else; node identity is pointer
// identity, exactly as XDM node identity requires.

#ifndef XQIB_XML_DOM_H_
#define XQIB_XML_DOM_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/counters.h"
#include "xml/qname.h"

namespace xqib::xml {

class Document;

enum class NodeKind {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

const char* NodeKindName(NodeKind kind);

// One DOM node. Created only through Document factory methods.
class Node {
 public:
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  const QName& name() const { return name_; }
  // Text content for text/comment/PI/attribute nodes.
  const std::string& value() const { return value_; }
  Node* parent() const { return parent_; }
  Document* document() const { return document_; }

  const std::vector<Node*>& children() const { return children_; }
  const std::vector<Node*>& attributes() const { return attributes_; }

  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_attribute() const { return kind_ == NodeKind::kAttribute; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  // The root of the tree this node belongs to (a Document node for
  // attached trees, else the topmost detached node).
  Node* Root();

  // XDM string-value: concatenated descendant text for elements/documents,
  // the literal value otherwise.
  std::string StringValue() const;
  // Appends the string-value to `out`. StringValue() reserves the exact
  // length up front and delegates here; atomization-heavy callers can
  // reuse one buffer across nodes.
  void AppendStringValue(std::string* out) const;

  // Attribute access by expanded name; nullptr if absent.
  Node* FindAttribute(std::string_view ns, std::string_view local) const;
  // Convenience for the common no-namespace case.
  Node* FindAttribute(std::string_view local) const {
    return FindAttribute("", local);
  }
  std::string GetAttributeValue(std::string_view local) const;

  // --- Mutation (drives Document mutation hooks & order invalidation) ---

  // Appends `child` (must be detached, same document, not an attribute).
  void AppendChild(Node* child);
  // Inserts `child` before `ref` (a current child), or appends if ref null.
  void InsertBefore(Node* child, Node* ref);
  void InsertAfter(Node* child, Node* ref);
  void InsertFirst(Node* child);
  // Detaches `child`; it stays owned by the Document.
  void RemoveChild(Node* child);
  // Detaches this node from its parent (no-op if already detached).
  void Detach();

  // Sets/replaces an attribute value; creates the attribute if missing.
  Node* SetAttribute(const QName& name, std::string value);
  void RemoveAttribute(std::string_view ns, std::string_view local);
  // Attaches an existing detached attribute node.
  void AttachAttribute(Node* attr);

  // Replaces the value of a text/comment/PI/attribute node, or for an
  // element: removes all children and inserts a single text node.
  void SetValue(std::string value);

  void Rename(const QName& new_name);

  // Position of `child` among children_, or npos.
  size_t ChildIndex(const Node* child) const;

  // Document-order comparison: -1, 0, +1. Nodes in different trees are
  // ordered by an arbitrary-but-stable tree id.
  int CompareDocumentOrder(const Node* other) const;

  // Stable, doc-order-consistent key (lazily recomputed after mutation).
  uint64_t OrderKey() const;

 private:
  friend class Document;
  Node(Document* doc, NodeKind kind) : document_(doc), kind_(kind) {}

  void CheckAdoptable(const Node* child) const;

  Document* document_;
  NodeKind kind_;
  QName name_;
  std::string value_;
  Node* parent_ = nullptr;
  std::vector<Node*> children_;    // element/document content
  std::vector<Node*> attributes_;  // element attributes
  // Atomics: pool workers compare document order concurrently while the
  // loop thread is barriered inside a dispatch batch. The recompute
  // publishes each key with a release store on order_version_; readers
  // acquire-load the version before touching the key (see OrderKey).
  mutable std::atomic<uint64_t> order_key_{0};
  mutable std::atomic<uint64_t> order_version_{0};
  uint64_t tree_id_ = 0;  // assigned at creation; used as inter-tree order
};

// A structured description of the attached-tree mutations accumulated
// between two sync points (PERFORMANCE.md §8). The update layer emits
// one per PUL application; the Document keeps two rolling windows of its
// own (one consumed by the element-name index splice, one by the
// plug-in's dispatch skip), all fed by the same recording walk that
// maintains the per-name mutation counters — the counters are a derived
// view of this delta.
struct DomDelta {
  // Details stop being recorded past this many touched names / ops in
  // one window; the delta degrades to whole_tree (conservative).
  static constexpr size_t kTrackingCap = 4096;

  // Per element name: nodes whose index-bucket membership changed.
  // Last op wins (true = attached under the name, false = detached), so
  // a node detached and re-attached in one window resolves to `true` and
  // splicing re-inserts it at its new document-order position.
  std::unordered_map<const InternedName*, std::unordered_map<Node*, bool>>
      element_ops;
  // Every name whose per-name mutation counter bumped in the window:
  // each mutation's ancestor-chain element/attribute names plus the
  // names inside attached/detached subtrees (value edits included).
  // This is the write-name set dispatch intersects listener read sets
  // against.
  std::unordered_set<const InternedName*> touched;
  // Conservative escape hatch: recording was off for part of the window
  // or the window overflowed kTrackingCap. Consumers must treat every
  // name and every bucket as potentially changed.
  bool whole_tree = false;
  // Attached-tree mutations observed. 0 with !whole_tree means nothing
  // an attached-tree reader can observe has changed (detached
  // construction bumps only the global version).
  uint64_t mutations = 0;
  // Total element_ops entries (cap bookkeeping).
  uint64_t op_entries = 0;

  bool Empty() const { return !whole_tree && mutations == 0; }
  void Clear();
  // Recording primitives (respect kTrackingCap; no-ops once whole_tree).
  void Touch(const InternedName* token);
  void ElementOp(Node* node, const InternedName* token, bool inserted);
  void CountMutation() { ++mutations; }
  void Overflow();
};

// Owns all nodes of one XML tree (plus any detached fragments created
// against it). Tracks id->element for fn:id / getElementById.
class Document {
 public:
  Document();
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  Node* root() { return root_; }
  const Node* root() const { return root_; }

  // The single element child of the document node, or nullptr.
  Node* DocumentElement() const;

  // --- Node factories (all created detached except the doc root) ---
  Node* CreateElement(const QName& name);
  Node* CreateAttribute(const QName& name, std::string value);
  Node* CreateText(std::string value);
  Node* CreateComment(std::string value);
  Node* CreateProcessingInstruction(std::string target, std::string value);

  // Deep-copies `src` (possibly from another document) into this document;
  // the copy is detached. Implements XQuery Update's copy-on-insert.
  Node* ImportCopy(const Node* src);

  // The first attached element (in creation order) whose "id" attribute
  // equals `id`, or nullptr. Backed by a lazily rebuilt cache that any
  // mutation invalidates: lookup bursts between mutations are O(1).
  Node* GetElementById(std::string_view id) const;

  // All attached elements with expanded name `name`, in document order.
  // Backed by a lazily rebuilt whole-tree index with the same wholesale
  // invalidation scheme as the id cache: any mutation drops it, the next
  // lookup rebuilds it in one DFS. The evaluator routes whole-tree
  // descendant name steps (//name) through this so per-event path
  // evaluation touches only matching nodes.
  const std::vector<Node*>& ElementsByName(const QName& name) const;
  // Number of times the name index has been (re)built (tests/benchmarks).
  uint64_t name_index_builds() const { return name_index_builds_; }

  // The document URI (doc("...") key / page URL).
  const std::string& uri() const { return uri_; }
  void set_uri(std::string uri) { uri_ = std::move(uri); }

  // Mutation observers (the browser event system and BOM hook in here).
  using MutationHook = std::function<void(Node* target)>;
  void AddMutationHook(MutationHook hook) {
    mutation_hooks_.push_back(std::move(hook));
  }

  // Total number of nodes ever created (diagnostics/benchmarks).
  size_t node_count() const { return nodes_.size(); }

  uint64_t order_version() const {
    return order_version_.load(std::memory_order_relaxed);
  }

  // Bumped by every structural or value mutation. External caches keyed
  // on document content (the plugin's pure-listener memo cache) validate
  // against this — the same versioning scheme that guards the id cache
  // and the element-name index. Atomic so worker threads can validate
  // snapshots; mutation itself stays loop-thread-only.
  uint64_t mutation_version() const {
    return mutation_version_.load(std::memory_order_acquire);
  }

  // --- Name-granular invalidation ------------------------------------
  //
  // When enabled, every ATTACHED mutation additionally bumps a per-name
  // counter for each element/attribute name on the mutation site's
  // ancestor chain, plus the names inside any subtree the mutation
  // attaches or detaches. A cached result that recorded the counters of
  // every name it reads stays provably valid across mutations touching
  // disjoint names, even though mutation_version() moved. Detached
  // construction (worker-built update content) bumps only the global
  // version, never the per-name map, so the map stays loop-thread-only.
  void set_fine_grained_versions(bool on);
  bool fine_grained_versions() const { return fine_grained_; }
  // Mutation counter for one interned name: 0 until the first attached
  // mutation touches the name. Same read discipline as the name index
  // (loop thread, or barriered workers).
  uint64_t name_version(const InternedName* token) const {
    auto it = name_versions_.find(token);
    return it == name_versions_.end() ? 0 : it->second;
  }
  // Globally-stale ElementsByName lookups served from a per-name bucket
  // whose name counter did not move (tests/benchmarks).
  uint64_t name_index_fine_hits() const { return name_index_fine_hits_; }

  // --- Delta propagation (PERFORMANCE.md §8) --------------------------
  //
  // When enabled, the same recording walk that bumps the per-name
  // counters also appends structured membership/touch ops to two rolling
  // DomDelta windows: one consumed by ElementsByName (bucket splicing
  // instead of full rebuilds), one drained by the plug-in's dispatch
  // loop (listener skip). Recording is loop-thread-only and gated on
  // AttachedToRoot, exactly like the counters.
  void set_delta_tracking(bool on);
  bool delta_tracking() const { return delta_tracking_; }
  // Moves the accumulated dispatch-window delta into `out` and resets
  // the window. Loop-thread-only (the window is written by mutations).
  void TakeDispatchDelta(DomDelta* out);
  // Brackets a PUL application: every recorded op is additionally
  // mirrored into `sink` (regardless of the tracking toggles), so the
  // update layer can emit the structured delta of one apply pass.
  void BeginDeltaCapture(DomDelta* sink) { capture_ = sink; }
  void EndDeltaCapture() { capture_ = nullptr; }
  // Per-bucket splice operations applied in place of index rebuilds,
  // full index rebuilds avoided by consuming a delta, and wholesale
  // document-order recomputations (tests/benchmarks).
  uint64_t index_splices() const { return index_splices_; }
  uint64_t bucket_rebuilds_avoided() const { return bucket_rebuilds_avoided_; }
  uint64_t order_rebuilds() const { return order_rebuilds_; }

 private:
  friend class Node;

  Node* NewNode(NodeKind kind);
  void InvalidateOrder() {
    order_version_.fetch_add(1, std::memory_order_relaxed);
  }
  void NotifyMutation(Node* target);
  // True when `n`'s parent chain reaches this document's root node.
  bool AttachedToRoot(const Node* n) const;

  // --- Unified mutation recording ------------------------------------
  // One shared core for every mutation path: the per-name counters and
  // every DomDelta sink are fed from the same walks, so the counters are
  // a derived view of the delta and the two can never drift.
  bool RecordingActive() const {
    return fine_grained_ || delta_tracking_ || capture_ != nullptr;
  }
  // Counter bump + touched-set insertion for one name.
  void TouchName(const InternedName* token);
  // Element membership op on every delta sink.
  void RecordElementOp(const Node* node, const InternedName* token,
                       bool inserted);
  // The ancestor-chain walk performed on every mutation: element and
  // attribute names from `site` to the root.
  void RecordSiteNames(const Node* site);
  // The attach/detach walk: every element/attribute name inside
  // `subtree` (inclusive) plus a membership op per element. Call BEFORE
  // detaching a subtree and AFTER attaching one; no-op when the subtree
  // does not hang off the attached tree.
  void RecordSubtree(const Node* subtree, bool inserted);
  // Single-name touch when `site` is attached (attribute value edits,
  // the vacated name of a rename).
  void RecordNameTouch(const Node* site, const InternedName* token);
  // Membership fixup for a rename: the node leaves `old_token`'s bucket
  // and enters its current name's bucket.
  void RecordRenameOps(const Node* node, const InternedName* old_token);
  void CountDeltaMutation();

  // Attempts to assign document-order keys to the just-linked `node`
  // (child or attribute of `parent` at `index`) from the gap between its
  // preorder neighbours, leaving every other key valid. Returns false —
  // caller must InvalidateOrder() — when a neighbour key is stale or the
  // gap is too small. Keeping keys valid across attaches is what lets
  // the index splice inserted entries in document order without a
  // wholesale key recomputation.
  bool TryAssignGapKeys(const Node* parent, const Node* node, size_t index);
  // Applies the pending index delta to the touched buckets in place of a
  // full rebuild. Caller holds lazy_mu_. Returns false (nothing changed)
  // when the delta is conservative or insertions lack valid order keys.
  bool TrySpliceNameIndex() const;
  void RecomputeOrder() const;
  void AssignDetachedKeys(const Node* detached_root) const;
  static void AssignKeysDfs(const Node* root, uint64_t next, uint64_t stride,
                            uint64_t version);

  std::deque<std::unique_ptr<Node>> nodes_;
  Node* root_;
  std::string uri_;
  mutable std::atomic<uint64_t> order_version_{1};
  mutable uint64_t computed_version_ = 0;
  std::atomic<uint64_t> next_tree_id_{1};
  std::vector<MutationHook> mutation_hooks_;

  // Guards nodes_ (and the id-cache scan over it): staged updating
  // listeners allocate detached update content into the page document
  // from pool workers concurrently. Node FIELDS need no lock — a
  // worker's fresh nodes are unreachable from the attached tree, and
  // the only whole-pool scan (GetElementById) can only run concurrently
  // from a listener whose read set is ⊤, which the interference gate
  // keeps out of any staged run containing an updater.
  mutable std::mutex alloc_mu_;

  // Per-name mutation counters (fine-grained mode; see accessors).
  bool fine_grained_ = false;
  std::unordered_map<const InternedName*, uint64_t> name_versions_;
  // Snapshot of name_versions_ taken when name_index_ was last rebuilt:
  // a globally-stale bucket whose name counter matches the snapshot is
  // still exact and can be served without a rebuild.
  mutable std::unordered_map<const InternedName*, uint64_t>
      index_name_versions_;
  // True once a full rebuild has snapshotted under the current mode;
  // cleared on mode toggles so per-name survival is never trusted across
  // a window where counters were not being maintained.
  mutable bool index_names_snapshot_ = false;
  mutable base::RelaxedCounter name_index_fine_hits_;

  // Delta-propagation state (see the public accessors). The two rolling
  // windows and the capture sink are written only from mutation paths
  // (loop thread); pending_index_delta_ is additionally consumed under
  // lazy_mu_ by the splice, hence mutable.
  bool delta_tracking_ = false;
  mutable DomDelta pending_index_delta_;
  DomDelta pending_dispatch_delta_;
  DomDelta* capture_ = nullptr;
  mutable base::RelaxedCounter index_splices_;
  mutable base::RelaxedCounter bucket_rebuilds_avoided_;
  mutable base::RelaxedCounter order_rebuilds_;

  // Serializes the lazy rebuilds (order keys, id cache, name index) when
  // several pool workers race to be the first reader after a mutation.
  // Each rebuild publishes with a release store on its version counter;
  // readers that acquire-load a matching version then use the cache
  // without the lock — mutation is loop-thread-only and the loop thread
  // is barriered while workers read, so a validated cache cannot change
  // underneath them.
  mutable std::mutex lazy_mu_;

  // id -> element cache; valid while mutation_version_ matches.
  std::atomic<uint64_t> mutation_version_{1};
  mutable std::atomic<uint64_t> id_cache_version_{0};
  mutable std::unordered_map<std::string, Node*> id_cache_;
  // Interned name token -> attached elements in doc order; same validity
  // rule. Token keys make each rebuild insertion a pointer hash — no
  // Clark-notation string is built per element.
  mutable std::atomic<uint64_t> name_index_version_{0};
  mutable base::RelaxedCounter name_index_builds_;
  mutable std::unordered_map<const InternedName*, std::vector<Node*>>
      name_index_;
};

// Visits `node` and all descendants (attributes excluded) in doc order.
void VisitSubtree(Node* node, const std::function<void(Node*)>& fn);

}  // namespace xqib::xml

#endif  // XQIB_XML_DOM_H_
