// A mutable DOM, the substrate the XQIB plug-in wraps with an XDM store
// (paper Section 5.2, Figure 1). Nodes are owned by their Document and
// referenced by raw pointers everywhere else; node identity is pointer
// identity, exactly as XDM node identity requires.

#ifndef XQIB_XML_DOM_H_
#define XQIB_XML_DOM_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/counters.h"
#include "xml/qname.h"

namespace xqib::xml {

class Document;

enum class NodeKind {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

const char* NodeKindName(NodeKind kind);

// One DOM node. Created only through Document factory methods.
class Node {
 public:
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  const QName& name() const { return name_; }
  // Text content for text/comment/PI/attribute nodes.
  const std::string& value() const { return value_; }
  Node* parent() const { return parent_; }
  Document* document() const { return document_; }

  const std::vector<Node*>& children() const { return children_; }
  const std::vector<Node*>& attributes() const { return attributes_; }

  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_attribute() const { return kind_ == NodeKind::kAttribute; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  // The root of the tree this node belongs to (a Document node for
  // attached trees, else the topmost detached node).
  Node* Root();

  // XDM string-value: concatenated descendant text for elements/documents,
  // the literal value otherwise.
  std::string StringValue() const;
  // Appends the string-value to `out`. StringValue() reserves the exact
  // length up front and delegates here; atomization-heavy callers can
  // reuse one buffer across nodes.
  void AppendStringValue(std::string* out) const;

  // Attribute access by expanded name; nullptr if absent.
  Node* FindAttribute(std::string_view ns, std::string_view local) const;
  // Convenience for the common no-namespace case.
  Node* FindAttribute(std::string_view local) const {
    return FindAttribute("", local);
  }
  std::string GetAttributeValue(std::string_view local) const;

  // --- Mutation (drives Document mutation hooks & order invalidation) ---

  // Appends `child` (must be detached, same document, not an attribute).
  void AppendChild(Node* child);
  // Inserts `child` before `ref` (a current child), or appends if ref null.
  void InsertBefore(Node* child, Node* ref);
  void InsertAfter(Node* child, Node* ref);
  void InsertFirst(Node* child);
  // Detaches `child`; it stays owned by the Document.
  void RemoveChild(Node* child);
  // Detaches this node from its parent (no-op if already detached).
  void Detach();

  // Sets/replaces an attribute value; creates the attribute if missing.
  Node* SetAttribute(const QName& name, std::string value);
  void RemoveAttribute(std::string_view ns, std::string_view local);
  // Attaches an existing detached attribute node.
  void AttachAttribute(Node* attr);

  // Replaces the value of a text/comment/PI/attribute node, or for an
  // element: removes all children and inserts a single text node.
  void SetValue(std::string value);

  void Rename(const QName& new_name);

  // Position of `child` among children_, or npos.
  size_t ChildIndex(const Node* child) const;

  // Document-order comparison: -1, 0, +1. Nodes in different trees are
  // ordered by an arbitrary-but-stable tree id.
  int CompareDocumentOrder(const Node* other) const;

  // Stable, doc-order-consistent key (lazily recomputed after mutation).
  uint64_t OrderKey() const;

 private:
  friend class Document;
  Node(Document* doc, NodeKind kind) : document_(doc), kind_(kind) {}

  void CheckAdoptable(const Node* child) const;

  Document* document_;
  NodeKind kind_;
  QName name_;
  std::string value_;
  Node* parent_ = nullptr;
  std::vector<Node*> children_;    // element/document content
  std::vector<Node*> attributes_;  // element attributes
  // Atomics: pool workers compare document order concurrently while the
  // loop thread is barriered inside a dispatch batch. The recompute
  // publishes each key with a release store on order_version_; readers
  // acquire-load the version before touching the key (see OrderKey).
  mutable std::atomic<uint64_t> order_key_{0};
  mutable std::atomic<uint64_t> order_version_{0};
  uint64_t tree_id_ = 0;  // assigned at creation; used as inter-tree order
};

// Owns all nodes of one XML tree (plus any detached fragments created
// against it). Tracks id->element for fn:id / getElementById.
class Document {
 public:
  Document();
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  Node* root() { return root_; }
  const Node* root() const { return root_; }

  // The single element child of the document node, or nullptr.
  Node* DocumentElement() const;

  // --- Node factories (all created detached except the doc root) ---
  Node* CreateElement(const QName& name);
  Node* CreateAttribute(const QName& name, std::string value);
  Node* CreateText(std::string value);
  Node* CreateComment(std::string value);
  Node* CreateProcessingInstruction(std::string target, std::string value);

  // Deep-copies `src` (possibly from another document) into this document;
  // the copy is detached. Implements XQuery Update's copy-on-insert.
  Node* ImportCopy(const Node* src);

  // The first attached element (in creation order) whose "id" attribute
  // equals `id`, or nullptr. Backed by a lazily rebuilt cache that any
  // mutation invalidates: lookup bursts between mutations are O(1).
  Node* GetElementById(std::string_view id) const;

  // All attached elements with expanded name `name`, in document order.
  // Backed by a lazily rebuilt whole-tree index with the same wholesale
  // invalidation scheme as the id cache: any mutation drops it, the next
  // lookup rebuilds it in one DFS. The evaluator routes whole-tree
  // descendant name steps (//name) through this so per-event path
  // evaluation touches only matching nodes.
  const std::vector<Node*>& ElementsByName(const QName& name) const;
  // Number of times the name index has been (re)built (tests/benchmarks).
  uint64_t name_index_builds() const { return name_index_builds_; }

  // The document URI (doc("...") key / page URL).
  const std::string& uri() const { return uri_; }
  void set_uri(std::string uri) { uri_ = std::move(uri); }

  // Mutation observers (the browser event system and BOM hook in here).
  using MutationHook = std::function<void(Node* target)>;
  void AddMutationHook(MutationHook hook) {
    mutation_hooks_.push_back(std::move(hook));
  }

  // Total number of nodes ever created (diagnostics/benchmarks).
  size_t node_count() const { return nodes_.size(); }

  uint64_t order_version() const {
    return order_version_.load(std::memory_order_relaxed);
  }

  // Bumped by every structural or value mutation. External caches keyed
  // on document content (the plugin's pure-listener memo cache) validate
  // against this — the same versioning scheme that guards the id cache
  // and the element-name index. Atomic so worker threads can validate
  // snapshots; mutation itself stays loop-thread-only.
  uint64_t mutation_version() const {
    return mutation_version_.load(std::memory_order_acquire);
  }

  // --- Name-granular invalidation ------------------------------------
  //
  // When enabled, every ATTACHED mutation additionally bumps a per-name
  // counter for each element/attribute name on the mutation site's
  // ancestor chain, plus the names inside any subtree the mutation
  // attaches or detaches. A cached result that recorded the counters of
  // every name it reads stays provably valid across mutations touching
  // disjoint names, even though mutation_version() moved. Detached
  // construction (worker-built update content) bumps only the global
  // version, never the per-name map, so the map stays loop-thread-only.
  void set_fine_grained_versions(bool on);
  bool fine_grained_versions() const { return fine_grained_; }
  // Mutation counter for one interned name: 0 until the first attached
  // mutation touches the name. Same read discipline as the name index
  // (loop thread, or barriered workers).
  uint64_t name_version(const InternedName* token) const {
    auto it = name_versions_.find(token);
    return it == name_versions_.end() ? 0 : it->second;
  }
  // Globally-stale ElementsByName lookups served from a per-name bucket
  // whose name counter did not move (tests/benchmarks).
  uint64_t name_index_fine_hits() const { return name_index_fine_hits_; }

 private:
  friend class Node;

  Node* NewNode(NodeKind kind);
  void InvalidateOrder() {
    order_version_.fetch_add(1, std::memory_order_relaxed);
  }
  void NotifyMutation(Node* target);
  // True when `n`'s parent chain reaches this document's root node.
  bool AttachedToRoot(const Node* n) const;
  // Bumps the name counters of `site` and every ancestor (element and
  // attribute names) when the site is attached; no-op otherwise or when
  // fine-grained mode is off.
  void BumpAncestorNames(const Node* site);
  // Bumps every element/attribute name inside `subtree` (inclusive) when
  // the subtree hangs off the attached tree. Call BEFORE detaching a
  // subtree and AFTER attaching one.
  void BumpTreeNames(const Node* subtree);
  // Bumps a single name counter when `site` is attached (e.g. the old
  // name of a rename, an attribute name on its owner's mutation).
  void BumpNameIfAttached(const Node* site, const InternedName* token);
  void RecomputeOrder() const;
  void AssignDetachedKeys(const Node* detached_root) const;
  static void AssignKeysDfs(const Node* root, uint64_t next,
                            uint64_t version);

  std::deque<std::unique_ptr<Node>> nodes_;
  Node* root_;
  std::string uri_;
  mutable std::atomic<uint64_t> order_version_{1};
  mutable uint64_t computed_version_ = 0;
  std::atomic<uint64_t> next_tree_id_{1};
  std::vector<MutationHook> mutation_hooks_;

  // Guards nodes_ (and the id-cache scan over it): staged updating
  // listeners allocate detached update content into the page document
  // from pool workers concurrently. Node FIELDS need no lock — a
  // worker's fresh nodes are unreachable from the attached tree, and
  // the only whole-pool scan (GetElementById) can only run concurrently
  // from a listener whose read set is ⊤, which the interference gate
  // keeps out of any staged run containing an updater.
  mutable std::mutex alloc_mu_;

  // Per-name mutation counters (fine-grained mode; see accessors).
  bool fine_grained_ = false;
  std::unordered_map<const InternedName*, uint64_t> name_versions_;
  // Snapshot of name_versions_ taken when name_index_ was last rebuilt:
  // a globally-stale bucket whose name counter matches the snapshot is
  // still exact and can be served without a rebuild.
  mutable std::unordered_map<const InternedName*, uint64_t>
      index_name_versions_;
  // True once a full rebuild has snapshotted under the current mode;
  // cleared on mode toggles so per-name survival is never trusted across
  // a window where counters were not being maintained.
  mutable bool index_names_snapshot_ = false;
  mutable base::RelaxedCounter name_index_fine_hits_;

  // Serializes the lazy rebuilds (order keys, id cache, name index) when
  // several pool workers race to be the first reader after a mutation.
  // Each rebuild publishes with a release store on its version counter;
  // readers that acquire-load a matching version then use the cache
  // without the lock — mutation is loop-thread-only and the loop thread
  // is barriered while workers read, so a validated cache cannot change
  // underneath them.
  mutable std::mutex lazy_mu_;

  // id -> element cache; valid while mutation_version_ matches.
  std::atomic<uint64_t> mutation_version_{1};
  mutable std::atomic<uint64_t> id_cache_version_{0};
  mutable std::unordered_map<std::string, Node*> id_cache_;
  // Interned name token -> attached elements in doc order; same validity
  // rule. Token keys make each rebuild insertion a pointer hash — no
  // Clark-notation string is built per element.
  mutable std::atomic<uint64_t> name_index_version_{0};
  mutable base::RelaxedCounter name_index_builds_;
  mutable std::unordered_map<const InternedName*, std::vector<Node*>>
      name_index_;
};

// Visits `node` and all descendants (attributes excluded) in doc order.
void VisitSubtree(Node* node, const std::function<void(Node*)>& fn);

}  // namespace xqib::xml

#endif  // XQIB_XML_DOM_H_
