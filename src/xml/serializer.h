// XML serialization of DOM nodes (the inverse of xml_parser).

#ifndef XQIB_XML_SERIALIZER_H_
#define XQIB_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace xqib::xml {

struct SerializeOptions {
  bool indent = false;
  // When true, text content of <script> and <style> elements is emitted
  // verbatim (HTML-style), not entity-escaped.
  bool html_script_mode = false;
};

// Serializes a node (document: children; element: the element itself).
std::string Serialize(const Node* node, const SerializeOptions& options);
std::string Serialize(const Node* node);

// Escapes text content (&, <, >) for element content.
std::string EscapeText(std::string_view text);
// Escapes attribute values (&, <, ").
std::string EscapeAttribute(std::string_view value);

}  // namespace xqib::xml

#endif  // XQIB_XML_SERIALIZER_H_
