// Process-wide interning pool for namespace URIs, local names, prefixes
// and (namespace, local) QName identities.
//
// Every string handed out is address-stable for the life of the process,
// so two interned strings are equal iff their pointers are equal, and two
// QNames are equal iff their InternedName pointers are equal. This turns
// the hot name comparisons in the evaluator (node tests, name-index
// lookups, variable/function keys) into single pointer compares and
// removes the per-comparison string copies the old value-type QName paid.
//
// The pool is guarded by a shared mutex: lookups of already-interned
// names (the steady state once a page is parsed) take a shared lock only.

#ifndef XQIB_XML_INTERNING_H_
#define XQIB_XML_INTERNING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xqib::xml {

// One interned (namespace URI, local name) identity. The pointer itself
// is the token: equal QNames share one InternedName per process.
struct InternedName {
  const std::string* ns;
  const std::string* local;
};

// Interns `s`, returning the stable pointer shared by all equal strings.
const std::string* InternString(std::string_view s);

// Interns the (ns, local) identity of a QName.
const InternedName* InternName(std::string_view ns, std::string_view local);

// Cumulative, process-wide pool statistics. hits/misses are monotone
// counters (benchmarks and EventStats report per-window deltas).
struct InternPoolStats {
  uint64_t hits = 0;     // lookups that found an existing entry
  uint64_t misses = 0;   // lookups that had to insert
  uint64_t strings = 0;  // distinct strings currently held
  uint64_t names = 0;    // distinct (ns, local) pairs currently held
};
InternPoolStats GetInternStats();

}  // namespace xqib::xml

#endif  // XQIB_XML_INTERNING_H_
