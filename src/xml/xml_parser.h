// A namespace-aware XML / XHTML parser producing xqib::xml::Document.
//
// The parser is strict about well-formedness (the paper targets XHTML
// pages) but offers two browser-flavoured options:
//   * ie_tag_folding — uppercases HTML element names, reproducing the
//     Internet Explorer behaviour reported in Section 5.1 of the paper
//     ("IE transforms all HTML tags to upper-case, so XPath expressions
//     have to contain upper-case names").
//   * keep_whitespace_text — whether whitespace-only text nodes between
//     elements are kept (default: dropped, the data-oriented behaviour).

#ifndef XQIB_XML_XML_PARSER_H_
#define XQIB_XML_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "base/result.h"
#include "xml/dom.h"

namespace xqib::xml {

struct ParseOptions {
  bool ie_tag_folding = false;
  bool keep_whitespace_text = false;
  // Base URI recorded on the resulting document.
  std::string document_uri;
};

// Parses a complete XML document. Errors carry code FODC0006.
Result<std::unique_ptr<Document>> ParseDocument(std::string_view input,
                                                const ParseOptions& options);
Result<std::unique_ptr<Document>> ParseDocument(std::string_view input);

// Parses a fragment (sequence of content items) into children of `parent`
// within parent's document. Used by element constructors and innerHTML.
Status ParseFragmentInto(std::string_view input, Node* parent,
                         const ParseOptions& options);

// Decodes the five predefined entities plus numeric character references.
Result<std::string> DecodeEntities(std::string_view text);

}  // namespace xqib::xml

#endif  // XQIB_XML_XML_PARSER_H_
